#include "store/run_store.hpp"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string_view>

#include "metrics/frame.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "resil/fault.hpp"
#include "store/wal_frame.hpp"

namespace maestro::store {

namespace fs = std::filesystem;

util::Json flow_result_to_json(const flow::FlowResult& r) {
  util::JsonObject o;
  o["completed"] = util::Json{r.completed};
  o["timing_met"] = util::Json{r.timing_met};
  o["drc_clean"] = util::Json{r.drc_clean};
  o["constraints_met"] = util::Json{r.constraints_met};
  o["area_um2"] = util::Json{r.area_um2};
  o["wns_ps"] = util::Json{r.wns_ps};
  o["whs_ps"] = util::Json{r.whs_ps};
  o["tns_ps"] = util::Json{r.tns_ps};
  o["power_mw"] = util::Json{r.power_mw};
  o["final_drvs"] = util::Json{r.final_drvs};
  o["route_difficulty"] = util::Json{r.route_difficulty};
  o["hpwl_dbu"] = util::Json{r.hpwl_dbu};
  o["clock_skew_ps"] = util::Json{r.clock_skew_ps};
  o["ir_drop_v"] = util::Json{r.ir_drop_v};
  o["tat_minutes"] = util::Json{r.tat_minutes};
  if (!r.failed_step.empty()) o["failed_step"] = util::Json{r.failed_step};
  return util::Json{std::move(o)};
}

flow::FlowResult flow_result_from_json(const util::Json& j) {
  flow::FlowResult r;
  r.completed = j.at("completed").as_bool();
  r.timing_met = j.at("timing_met").as_bool();
  r.drc_clean = j.at("drc_clean").as_bool();
  r.constraints_met = j.at("constraints_met").as_bool();
  r.area_um2 = j.at("area_um2").as_number();
  r.wns_ps = j.at("wns_ps").as_number();
  r.whs_ps = j.at("whs_ps").as_number();
  r.tns_ps = j.at("tns_ps").as_number();
  r.power_mw = j.at("power_mw").as_number();
  r.final_drvs = j.at("final_drvs").as_number();
  r.route_difficulty = j.at("route_difficulty").as_number();
  r.hpwl_dbu = j.at("hpwl_dbu").as_number();
  r.clock_skew_ps = j.at("clock_skew_ps").as_number();
  r.ir_drop_v = j.at("ir_drop_v").as_number();
  r.tat_minutes = j.at("tat_minutes").as_number();
  r.failed_step = j.at("failed_step").as_string();
  return r;
}

util::Json run_key_to_json(const RunKey& key) {
  util::JsonObject o;
  o["design"] = util::Json{key.design};
  o["step"] = util::Json{key.step};
  // 64-bit values do not round-trip through a JSON double; use strings.
  o["seed"] = util::Json{std::to_string(key.seed)};
  util::JsonObject knobs;
  for (const auto& [name, value] : key.knobs) knobs[name] = util::Json{value};
  o["knobs"] = util::Json{std::move(knobs)};
  return util::Json{std::move(o)};
}

RunKey run_key_from_json(const util::Json& j) {
  RunKey key;
  key.design = j.at("design").as_string();
  key.step = j.at("step").as_string();
  key.seed = std::strtoull(j.at("seed").as_string().c_str(), nullptr, 10);
  for (const auto& [name, value] : j.at("knobs").as_object()) key.knobs[name] = value.as_string();
  return key;
}

util::Json rng_state_to_json(const util::Rng& rng) {
  util::JsonArray words;
  for (const std::uint64_t w : rng.save_state()) {
    words.push_back(util::Json{std::to_string(w)});
  }
  return util::Json{std::move(words)};
}

bool rng_state_from_json(util::Rng& rng, const util::Json& j) {
  const auto& words = j.as_array();
  if (words.size() != 6) return false;
  std::array<std::uint64_t, 6> s{};
  for (std::size_t i = 0; i < 6; ++i) {
    s[i] = std::strtoull(words[i].as_string().c_str(), nullptr, 10);
  }
  rng.restore_state(s);
  return true;
}

namespace {

util::Json run_to_entry(const StoredRun& run) {
  util::JsonObject o;
  o["t"] = util::Json{"run"};
  o["fp"] = util::Json{std::to_string(run.fingerprint)};
  o["key"] = run_key_to_json(run.key);
  o["result"] = flow_result_to_json(run.result);
  return util::Json{std::move(o)};
}

util::Json metric_to_entry(const metrics::Record& rec) {
  util::JsonObject o;
  o["t"] = util::Json{"metric"};
  o["rec"] = rec.to_json();
  return util::Json{std::move(o)};
}

util::Json state_to_entry(const std::string& key, const util::Json& value) {
  util::JsonObject o;
  o["t"] = util::Json{"state"};
  o["key"] = util::Json{key};
  o["value"] = value;
  return util::Json{std::move(o)};
}

std::uint64_t fnv1a64(std::string_view data) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Full write to a plain file fd (frame::write_all is socket-only: it uses
/// send(MSG_NOSIGNAL), which files reject with ENOTSOCK).
bool file_write_all(int fd, const char* data, std::size_t n) {
  while (n > 0) {
    const ssize_t w = ::write(fd, data, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

int flock_retry(int fd, int op) {
  int r;
  do {
    r = ::flock(fd, op);
  } while (r != 0 && errno == EINTR);
  return r;
}

bool fsync_counted(int fd) {
  obs::Registry::global().counter("store.fsyncs").add();
  return ::fsync(fd) == 0;
}

bool fsync_dir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) return false;
  const bool ok = fsync_counted(fd);
  ::close(fd);
  return ok;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  return std::string((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
}

FsyncMode fsync_mode_from_env() {
  const char* v = std::getenv("MAESTRO_STORE_FSYNC");
  if (!v || !*v) return FsyncMode::Batch;
  const std::string_view s{v};
  if (s == "always") return FsyncMode::Always;
  if (s == "off") return FsyncMode::Off;
  return FsyncMode::Batch;
}

std::size_t shards_from_env() {
  const char* v = std::getenv("MAESTRO_STORE_SHARDS");
  if (!v || !*v) return 8;
  const unsigned long n = std::strtoul(v, nullptr, 10);
  return (n >= 1 && n <= 256) ? static_cast<std::size_t>(n) : 8;
}

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n && p < 256) p <<= 1;
  return p;
}

}  // namespace

struct RunStore::Shard {
  std::size_t index = 0;
  std::string wal_path;
  std::string snapshot_path;
  std::string site;  ///< fault site "store.wal.<index>"
  mutable std::mutex mu;
  int fd = -1;                ///< WAL fd (O_RDWR|O_APPEND); the flock lease target
  std::uint64_t offset = 0;   ///< WAL bytes already mirrored in memory
  std::vector<StoredRun> runs;
  std::vector<metrics::Record> metrics;
  std::map<std::string, util::Json> state;
  std::size_t wal_entries = 0;  ///< appended by this process since open
  std::size_t recovered = 0;
  std::size_t dropped_tail = 0;
  std::size_t corrupt = 0;
  std::size_t seq = 0;       ///< append attempts; seeds the WAL fault site
  std::size_t unsynced = 0;  ///< appends since the last fsync (Batch mode)
  bool degraded = false;
};

RunStore::RunStore(const std::string& dir, RunStoreOptions options)
    : dir_(dir), opt_(std::move(options)) {
  fs::create_directories(dir_);
  fsync_mode_ = opt_.fsync ? *opt_.fsync : fsync_mode_from_env();
  if (opt_.fsync_batch == 0) opt_.fsync_batch = 1;
  std::size_t requested = opt_.shards != 0 ? opt_.shards : shards_from_env();
  const std::size_t n = negotiate_shards(round_up_pow2(requested));
  shard_bits_ = 0;
  while ((std::size_t{1} << shard_bits_) < n) ++shard_bits_;

  obs::Span span("store_recover", "store");
  ReplayStats totals;
  for (std::size_t i = 0; i < n; ++i) {
    auto s = std::make_unique<Shard>();
    s->index = i;
    char name[32];
    std::snprintf(name, sizeof(name), "wal-%02zu.jsonl", i);
    s->wal_path = (fs::path(dir_) / name).string();
    std::snprintf(name, sizeof(name), "snapshot-%02zu.jsonl", i);
    s->snapshot_path = (fs::path(dir_) / name).string();
    s->site = "store.wal." + std::to_string(i);
    s->fd = ::open(s->wal_path.c_str(), O_RDWR | O_CREAT | O_APPEND, 0644);
    if (s->fd >= 0 && flock_retry(s->fd, LOCK_EX) == 0) {
      const ReplayStats st = load_shard_locked(*s);
      s->recovered = st.recovered;
      s->dropped_tail = st.dropped;
      totals.recovered += st.recovered;
      totals.corrupt += st.corrupt;
      totals.dropped += st.dropped;
      flock_retry(s->fd, LOCK_UN);
    }
    shards_.push_back(std::move(s));
  }
  span.arg("shards", static_cast<double>(n))
      .arg("recovered", static_cast<double>(totals.recovered))
      .arg("corrupt_lines", static_cast<double>(totals.corrupt))
      .arg("dropped_tail_bytes", static_cast<double>(totals.dropped));
  obs::Registry::global().counter("store.opens").add();
}

RunStore::~RunStore() {
  for (auto& sp : shards_) {
    Shard& s = *sp;
    const std::lock_guard<std::mutex> lock(s.mu);
    if (s.fd < 0) continue;
    if (fsync_mode_ == FsyncMode::Batch && s.unsynced > 0) fsync_counted(s.fd);
    ::close(s.fd);
    s.fd = -1;
  }
}

std::unique_ptr<RunStore> RunStore::open_from_env() {
  const char* dir = std::getenv("MAESTRO_STORE");
  if (!dir || !*dir) return nullptr;
  return std::make_unique<RunStore>(dir);
}

std::size_t RunStore::negotiate_shards(std::size_t requested) {
  // First opener writes store.meta; everyone after reads it. The flock on
  // store.lock makes the "first" race well defined across processes.
  const std::string lock_path = (fs::path(dir_) / "store.lock").string();
  const std::string meta_path = (fs::path(dir_) / "store.meta").string();
  const int lfd = ::open(lock_path.c_str(), O_RDWR | O_CREAT, 0644);
  if (lfd >= 0) flock_retry(lfd, LOCK_EX);
  std::size_t n = requested;
  bool have_meta = false;
  if (const std::string text = slurp(meta_path); !text.empty()) {
    if (const auto j = util::Json::parse(text); j && j->is_object()) {
      const double v = j->at("shards").as_number();
      if (v >= 1.0 && v <= 256.0) {
        n = static_cast<std::size_t>(v);
        have_meta = true;
      }
    }
  }
  if (!have_meta) {
    util::JsonObject o;
    o["shards"] = util::Json{static_cast<double>(n)};
    const std::string tmp = meta_path + ".tmp";
    std::ofstream out(tmp, std::ios::trunc);
    out << util::Json{std::move(o)}.dump() << '\n';
    out.flush();
    std::error_code ec;
    if (out) fs::rename(tmp, meta_path, ec);
  }
  if (lfd >= 0) {
    flock_retry(lfd, LOCK_UN);
    ::close(lfd);
  }
  return n;
}

RunStore::Shard& RunStore::shard_for_fp(std::uint64_t fp) const {
  if (shard_bits_ == 0) return *shards_[0];
  return *shards_[fp >> (64 - shard_bits_)];
}

RunStore::Shard& RunStore::shard_for_key(const std::string& key) const {
  return shard_for_fp(fnv1a64(key));
}

void RunStore::record_corrupt(Shard& s, std::size_t n) {
  if (n == 0) return;
  s.corrupt += n;
  obs::Registry::global().counter("store.corrupt_lines").add(n);
  const std::lock_guard<std::mutex> lock(warn_mu_);
  if (!warned_corrupt_) {
    warned_corrupt_ = true;
    std::fprintf(stderr,
                 "[maestro::store] WARNING: skipped %zu corrupt WAL/snapshot "
                 "line(s) in %s (CRC or parse failure); replay continued — "
                 "complete neighbours are intact\n",
                 n, dir_.c_str());
  }
}

RunStore::ReplayStats RunStore::load_shard_locked(Shard& s) {
  ReplayStats st;
  s.runs.clear();
  s.metrics.clear();
  s.state.clear();
  std::error_code ec;
  // A compactor that died before its atomic rename leaves a temp file; it
  // is unreferenced by definition, so recovery discards it.
  fs::remove(s.snapshot_path + ".tmp", ec);

  // Dedup ledger: a crash between compaction's rename and WAL truncate
  // leaves every pre-compaction entry in both files. Byte-identical WAL
  // entries cancel against snapshot occurrences, one for one, so legitimate
  // duplicate appends still survive.
  std::map<std::uint64_t, std::size_t> snapshot_hashes;

  const auto process = [&](std::string_view line, bool from_snapshot) {
    if (line.empty()) return;
    const auto payload = wal_frame::decode(line);
    if (!payload) {
      ++st.corrupt;
      return;
    }
    if (!from_snapshot) {
      const auto it = snapshot_hashes.find(fnv1a64(*payload));
      if (it != snapshot_hashes.end() && it->second > 0) {
        --it->second;
        return;
      }
    }
    const auto entry = util::Json::parse(*payload);
    if (!entry || !ingest_locked(s, *entry)) {
      ++st.corrupt;
      return;
    }
    ++st.recovered;
    if (from_snapshot) ++snapshot_hashes[fnv1a64(*payload)];
  };

  // Snapshot: renamed into place whole, so any bad line is corruption, not
  // a tear — skip and keep going.
  {
    const std::string data = slurp(s.snapshot_path);
    std::size_t pos = 0;
    while (pos < data.size()) {
      const std::size_t nl = data.find('\n', pos);
      if (nl == std::string::npos) {
        process(std::string_view(data).substr(pos), /*from_snapshot=*/true);
        break;
      }
      process(std::string_view(data).substr(pos, nl - pos), /*from_snapshot=*/true);
      pos = nl + 1;
    }
  }

  // WAL: complete lines replay (corrupt ones skipped and counted); the
  // unterminated tail is a torn append — drop it and truncate so the next
  // append starts on a clean boundary.
  {
    const std::string data = slurp(s.wal_path);
    std::size_t pos = 0;
    while (true) {
      const std::size_t nl = data.find('\n', pos);
      if (nl == std::string::npos) break;
      process(std::string_view(data).substr(pos, nl - pos), /*from_snapshot=*/false);
      pos = nl + 1;
    }
    if (pos < data.size()) {
      st.dropped += data.size() - pos;
      if (s.fd >= 0) ::ftruncate(s.fd, static_cast<off_t>(pos));
    }
    s.offset = pos;
  }
  record_corrupt(s, st.corrupt);
  return st;
}

bool RunStore::ingest_locked(Shard& s, const util::Json& entry) {
  if (!entry.is_object()) return false;
  const std::string& t = entry.at("t").as_string();
  if (t == "run") {
    StoredRun run;
    run.fingerprint = std::strtoull(entry.at("fp").as_string().c_str(), nullptr, 10);
    run.key = run_key_from_json(entry.at("key"));
    run.result = flow_result_from_json(entry.at("result"));
    s.runs.push_back(std::move(run));
    return true;
  }
  if (t == "metric") {
    auto rec = metrics::Record::from_json(entry.at("rec"));
    if (!rec) return false;
    s.metrics.push_back(std::move(*rec));
    return true;
  }
  if (t == "state") {
    const std::string& key = entry.at("key").as_string();
    if (key.empty()) return false;
    s.state[key] = entry.at("value");
    return true;
  }
  return false;
}

std::size_t RunStore::catch_up_locked(Shard& s, bool holding_lease) {
  if (s.fd < 0) return 0;
  struct stat stbuf {};
  if (::fstat(s.fd, &stbuf) != 0) return 0;
  const auto size = static_cast<std::uint64_t>(stbuf.st_size);
  if (size <= s.offset) return 0;
  // Another process appended [offset, size); mirror the complete lines.
  std::string gap(size - s.offset, '\0');
  std::size_t got = 0;
  while (got < gap.size()) {
    const ssize_t r = ::pread(s.fd, gap.data() + got, gap.size() - got,
                              static_cast<off_t>(s.offset + got));
    if (r < 0 && errno == EINTR) continue;
    if (r <= 0) break;
    got += static_cast<std::size_t>(r);
  }
  gap.resize(got);
  std::size_t ingested = 0;
  std::size_t corrupt = 0;
  std::size_t pos = 0;
  while (true) {
    const std::size_t nl = gap.find('\n', pos);
    if (nl == std::string::npos) break;
    const std::string_view line = std::string_view(gap).substr(pos, nl - pos);
    pos = nl + 1;
    if (line.empty()) continue;
    const auto payload = wal_frame::decode(line);
    if (!payload) {
      ++corrupt;
      continue;
    }
    const auto entry = util::Json::parse(*payload);
    if (!entry || !ingest_locked(s, *entry)) {
      ++corrupt;
      continue;
    }
    ++ingested;
  }
  record_corrupt(s, corrupt);
  if (pos < gap.size() && holding_lease) {
    // Unterminated tail while we hold the lease: a writer died mid-append
    // (live writers complete their write before releasing the flock). Drop
    // the torn bytes so our next append starts on a clean boundary.
    s.dropped_tail += gap.size() - pos;
    ::ftruncate(s.fd, static_cast<off_t>(s.offset + pos));
  }
  s.offset += pos;
  return ingested;
}

void RunStore::degrade_locked(Shard& s, const char* why) {
  if (!s.degraded) {
    std::fprintf(stderr,
                 "[maestro::store] WARNING: WAL append failed (%s) on shard "
                 "%zu in %s; degrading to in-memory operation — results are "
                 "served from memory but will not survive this process until "
                 "compact() succeeds\n",
                 why, s.index, dir_.c_str());
    s.degraded = true;
    degraded_shards_.fetch_add(1, std::memory_order_relaxed);
    obs::Registry::global().gauge("store.degraded").set(1.0);
  }
  obs::Registry::global().counter("store.wal_errors").add();
}

void RunStore::fsync_policy_locked(Shard& s) {
  switch (fsync_mode_) {
    case FsyncMode::Always:
      fsync_counted(s.fd);
      s.unsynced = 0;
      break;
    case FsyncMode::Batch:
      if (s.unsynced >= opt_.fsync_batch) {
        fsync_counted(s.fd);
        s.unsynced = 0;
      }
      break;
    case FsyncMode::Off:
      break;
  }
}

void RunStore::append_line_locked(Shard& s, const std::string& payload) {
  // The fault site is seeded by the shard append sequence number, so a
  // chaos test kills the writer at a deterministic entry regardless of
  // thread count or shard interleaving.
  const auto fault = resil::FaultInjector::decide(s.site.c_str(), s.seq++);
  if (s.degraded) return;  // in-memory only until compact() recovers the WAL
  if (fault == resil::FaultKind::Crash) {
    // Injected EIO: the write never reaches the disk.
    degrade_locked(s, "injected EIO");
    return;
  }
  if (s.fd < 0) {
    degrade_locked(s, "no WAL fd");
    return;
  }
  const std::string line = wal_frame::encode(payload);
  if (flock_retry(s.fd, LOCK_EX) != 0) {
    degrade_locked(s, "lease acquisition failed");
    return;
  }
  catch_up_locked(s, /*holding_lease=*/true);
  bool ok = false;
  if (fault == resil::FaultKind::CorruptResult) {
    // Injected short write: half a record lands, then the device dies. The
    // torn tail is exactly what the recovery path truncates on next open.
    file_write_all(s.fd, line.data(), line.size() / 2);
    degrade_locked(s, "injected short write");
  } else {
    ok = file_write_all(s.fd, line.data(), line.size());
    if (!ok) degrade_locked(s, "write error");
  }
  struct stat stbuf {};
  if (::fstat(s.fd, &stbuf) == 0) s.offset = static_cast<std::uint64_t>(stbuf.st_size);
  if (ok) {
    ++s.unsynced;
    fsync_policy_locked(s);
  }
  flock_retry(s.fd, LOCK_UN);
  if (!ok) return;
  ++s.wal_entries;
  obs::Registry::global().counter("store.wal_appends").add();
}

void RunStore::append_run(StoredRun run) {
  run.result.logs.clear();  // logs are not persisted (see StoredRun)
  const std::string payload = run_to_entry(run).dump();
  Shard& s = shard_for_fp(run.fingerprint);
  const std::lock_guard<std::mutex> lock(s.mu);
  append_line_locked(s, payload);
  s.runs.push_back(std::move(run));
}

void RunStore::append_metric(const metrics::Record& rec) {
  const std::string payload = metric_to_entry(rec).dump();
  // Metrics have no fingerprint; hash the serialized entry so the load
  // spreads across shards deterministically.
  Shard& s = shard_for_fp(fnv1a64(payload));
  const std::lock_guard<std::mutex> lock(s.mu);
  append_line_locked(s, payload);
  s.metrics.push_back(rec);
}

void RunStore::put_state(const std::string& key, util::Json value) {
  const std::string payload = state_to_entry(key, value).dump();
  // A state key always lands in one shard, so last-write-wins replay order
  // is well defined.
  Shard& s = shard_for_key(key);
  const std::lock_guard<std::mutex> lock(s.mu);
  append_line_locked(s, payload);
  s.state[key] = std::move(value);
}

std::vector<StoredRun> RunStore::runs() const {
  std::vector<StoredRun> out;
  for (const auto& sp : shards_) {
    const std::lock_guard<std::mutex> lock(sp->mu);
    out.insert(out.end(), sp->runs.begin(), sp->runs.end());
  }
  return out;
}

std::vector<metrics::Record> RunStore::metric_records() const {
  std::vector<metrics::Record> out;
  for (const auto& sp : shards_) {
    const std::lock_guard<std::mutex> lock(sp->mu);
    out.insert(out.end(), sp->metrics.begin(), sp->metrics.end());
  }
  return out;
}

std::optional<util::Json> RunStore::get_state(const std::string& key) const {
  const Shard& s = shard_for_key(key);
  const std::lock_guard<std::mutex> lock(s.mu);
  const auto it = s.state.find(key);
  if (it == s.state.end()) return std::nullopt;
  return it->second;
}

std::size_t RunStore::run_count() const {
  std::size_t n = 0;
  for (const auto& sp : shards_) {
    const std::lock_guard<std::mutex> lock(sp->mu);
    n += sp->runs.size();
  }
  return n;
}

std::size_t RunStore::metric_count() const {
  std::size_t n = 0;
  for (const auto& sp : shards_) {
    const std::lock_guard<std::mutex> lock(sp->mu);
    n += sp->metrics.size();
  }
  return n;
}

std::size_t RunStore::wal_entries() const {
  std::size_t n = 0;
  for (const auto& sp : shards_) {
    const std::lock_guard<std::mutex> lock(sp->mu);
    n += sp->wal_entries;
  }
  return n;
}

std::size_t RunStore::recovered_entries() const {
  std::size_t n = 0;
  for (const auto& sp : shards_) {
    const std::lock_guard<std::mutex> lock(sp->mu);
    n += sp->recovered;
  }
  return n;
}

std::size_t RunStore::dropped_tail_bytes() const {
  std::size_t n = 0;
  for (const auto& sp : shards_) {
    const std::lock_guard<std::mutex> lock(sp->mu);
    n += sp->dropped_tail;
  }
  return n;
}

std::size_t RunStore::corrupt_lines() const {
  std::size_t n = 0;
  for (const auto& sp : shards_) {
    const std::lock_guard<std::mutex> lock(sp->mu);
    n += sp->corrupt;
  }
  return n;
}

bool RunStore::degraded() const {
  return degraded_shards_.load(std::memory_order_relaxed) > 0;
}

std::size_t RunStore::refresh() {
  std::size_t total = 0;
  for (auto& sp : shards_) {
    Shard& s = *sp;
    const std::lock_guard<std::mutex> lock(s.mu);
    if (s.fd < 0) continue;
    struct stat stbuf {};
    if (::fstat(s.fd, &stbuf) != 0) continue;
    const auto size = static_cast<std::uint64_t>(stbuf.st_size);
    if (size < s.offset) {
      // Another process compacted the shard out from under us: the WAL
      // shrank. Reload from the (new) snapshot + WAL under the lease.
      if (flock_retry(s.fd, LOCK_EX) != 0) continue;
      const std::size_t before = s.runs.size() + s.metrics.size() + s.state.size();
      load_shard_locked(s);
      const std::size_t after = s.runs.size() + s.metrics.size() + s.state.size();
      if (after > before) total += after - before;
      flock_retry(s.fd, LOCK_UN);
    } else if (size > s.offset) {
      // Complete new lines ingest without the lease; a torn in-flight tail
      // is left for the writer (or the next refresh) to resolve.
      total += catch_up_locked(s, /*holding_lease=*/false);
    }
  }
  return total;
}

bool RunStore::compact_shard_locked(Shard& s, std::size_t* entries) {
  if (s.fd < 0) return false;
  if (flock_retry(s.fd, LOCK_EX) != 0) return false;
  bool ok = false;
  // Final catch-up under the lease: the snapshot must fold in every other
  // writer's entries, because the WAL truncate below discards them.
  catch_up_locked(s, /*holding_lease=*/true);
  const std::string tmp = s.snapshot_path + ".tmp";
  do {
    const int tfd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (tfd < 0) break;
    bool wrote = true;
    const auto emit = [&](const util::Json& entry) {
      if (!wrote) return;
      const std::string line = wal_frame::encode(entry.dump());
      wrote = file_write_all(tfd, line.data(), line.size());
    };
    for (const auto& run : s.runs) emit(run_to_entry(run));
    for (const auto& rec : s.metrics) emit(metric_to_entry(rec));
    for (const auto& [key, value] : s.state) emit(state_to_entry(key, value));
    wrote = wrote && fsync_counted(tfd);
    ::close(tfd);
    if (!wrote) break;
    if (opt_.compact_hook) opt_.compact_hook("pre_rename", s.index);
    std::error_code ec;
    fs::rename(tmp, s.snapshot_path, ec);  // atomic within the store directory
    if (ec) break;
    // The rename is only durable once the directory entry is; fsync it.
    fsync_dir(dir_);
    if (opt_.compact_hook) opt_.compact_hook("pre_truncate", s.index);
    if (::ftruncate(s.fd, 0) != 0) break;
    s.offset = 0;
    s.wal_entries = 0;
    s.unsynced = 0;
    *entries += s.runs.size() + s.metrics.size() + s.state.size();
    if (s.degraded) {
      // The snapshot just persisted the full mirror and the WAL is fresh:
      // the degradation is healed.
      s.degraded = false;
      if (degraded_shards_.fetch_sub(1, std::memory_order_relaxed) == 1) {
        obs::Registry::global().gauge("store.degraded").set(0.0);
      }
      std::fprintf(stderr, "[maestro::store] shard %zu WAL recovered by compaction in %s\n",
                   s.index, dir_.c_str());
    }
    ok = true;
  } while (false);
  flock_retry(s.fd, LOCK_UN);
  return ok;
}

bool RunStore::compact() {
  obs::Span span("store_compact", "store");
  bool ok = true;
  std::size_t entries = 0;
  for (auto& sp : shards_) {
    Shard& s = *sp;
    const std::lock_guard<std::mutex> lock(s.mu);
    ok = compact_shard_locked(s, &entries) && ok;
  }
  span.arg("entries", static_cast<double>(entries));
  obs::Registry::global().counter("store.compactions").add();
  return ok;
}

void bind_metrics_sink(metrics::Server& server, RunStore& store) {
  server.set_sink([&store](const metrics::Record& rec) { store.append_metric(rec); });
}

}  // namespace maestro::store
