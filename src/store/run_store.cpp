#include "store/run_store.hpp"

#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "resil/fault.hpp"

namespace maestro::store {

namespace fs = std::filesystem;

util::Json flow_result_to_json(const flow::FlowResult& r) {
  util::JsonObject o;
  o["completed"] = util::Json{r.completed};
  o["timing_met"] = util::Json{r.timing_met};
  o["drc_clean"] = util::Json{r.drc_clean};
  o["constraints_met"] = util::Json{r.constraints_met};
  o["area_um2"] = util::Json{r.area_um2};
  o["wns_ps"] = util::Json{r.wns_ps};
  o["whs_ps"] = util::Json{r.whs_ps};
  o["tns_ps"] = util::Json{r.tns_ps};
  o["power_mw"] = util::Json{r.power_mw};
  o["final_drvs"] = util::Json{r.final_drvs};
  o["route_difficulty"] = util::Json{r.route_difficulty};
  o["hpwl_dbu"] = util::Json{r.hpwl_dbu};
  o["clock_skew_ps"] = util::Json{r.clock_skew_ps};
  o["ir_drop_v"] = util::Json{r.ir_drop_v};
  o["tat_minutes"] = util::Json{r.tat_minutes};
  if (!r.failed_step.empty()) o["failed_step"] = util::Json{r.failed_step};
  return util::Json{std::move(o)};
}

flow::FlowResult flow_result_from_json(const util::Json& j) {
  flow::FlowResult r;
  r.completed = j.at("completed").as_bool();
  r.timing_met = j.at("timing_met").as_bool();
  r.drc_clean = j.at("drc_clean").as_bool();
  r.constraints_met = j.at("constraints_met").as_bool();
  r.area_um2 = j.at("area_um2").as_number();
  r.wns_ps = j.at("wns_ps").as_number();
  r.whs_ps = j.at("whs_ps").as_number();
  r.tns_ps = j.at("tns_ps").as_number();
  r.power_mw = j.at("power_mw").as_number();
  r.final_drvs = j.at("final_drvs").as_number();
  r.route_difficulty = j.at("route_difficulty").as_number();
  r.hpwl_dbu = j.at("hpwl_dbu").as_number();
  r.clock_skew_ps = j.at("clock_skew_ps").as_number();
  r.ir_drop_v = j.at("ir_drop_v").as_number();
  r.tat_minutes = j.at("tat_minutes").as_number();
  r.failed_step = j.at("failed_step").as_string();
  return r;
}

util::Json run_key_to_json(const RunKey& key) {
  util::JsonObject o;
  o["design"] = util::Json{key.design};
  o["step"] = util::Json{key.step};
  // 64-bit values do not round-trip through a JSON double; use strings.
  o["seed"] = util::Json{std::to_string(key.seed)};
  util::JsonObject knobs;
  for (const auto& [name, value] : key.knobs) knobs[name] = util::Json{value};
  o["knobs"] = util::Json{std::move(knobs)};
  return util::Json{std::move(o)};
}

RunKey run_key_from_json(const util::Json& j) {
  RunKey key;
  key.design = j.at("design").as_string();
  key.step = j.at("step").as_string();
  key.seed = std::strtoull(j.at("seed").as_string().c_str(), nullptr, 10);
  for (const auto& [name, value] : j.at("knobs").as_object()) key.knobs[name] = value.as_string();
  return key;
}

util::Json rng_state_to_json(const util::Rng& rng) {
  util::JsonArray words;
  for (const std::uint64_t w : rng.save_state()) {
    words.push_back(util::Json{std::to_string(w)});
  }
  return util::Json{std::move(words)};
}

bool rng_state_from_json(util::Rng& rng, const util::Json& j) {
  const auto& words = j.as_array();
  if (words.size() != 6) return false;
  std::array<std::uint64_t, 6> s{};
  for (std::size_t i = 0; i < 6; ++i) {
    s[i] = std::strtoull(words[i].as_string().c_str(), nullptr, 10);
  }
  rng.restore_state(s);
  return true;
}

namespace {

util::Json run_to_entry(const StoredRun& run) {
  util::JsonObject o;
  o["t"] = util::Json{"run"};
  o["fp"] = util::Json{std::to_string(run.fingerprint)};
  o["key"] = run_key_to_json(run.key);
  o["result"] = flow_result_to_json(run.result);
  return util::Json{std::move(o)};
}

util::Json metric_to_entry(const metrics::Record& rec) {
  util::JsonObject o;
  o["t"] = util::Json{"metric"};
  o["rec"] = rec.to_json();
  return util::Json{std::move(o)};
}

util::Json state_to_entry(const std::string& key, const util::Json& value) {
  util::JsonObject o;
  o["t"] = util::Json{"state"};
  o["key"] = util::Json{key};
  o["value"] = value;
  return util::Json{std::move(o)};
}

}  // namespace

RunStore::RunStore(const std::string& dir)
    : dir_(dir),
      wal_path_((fs::path(dir) / "wal.jsonl").string()),
      snapshot_path_((fs::path(dir) / "snapshot.jsonl").string()) {
  fs::create_directories(dir_);
  {
    obs::Span span("store_recover", "store");
    recovered_entries_ += replay_file(snapshot_path_, /*tolerate_torn_tail=*/false);
    recovered_entries_ += replay_file(wal_path_, /*tolerate_torn_tail=*/true);
    span.arg("recovered", static_cast<double>(recovered_entries_))
        .arg("dropped_tail_bytes", static_cast<double>(dropped_tail_bytes_));
  }
  obs::Registry::global().counter("store.opens").add();
  wal_.open(wal_path_, std::ios::app);
}

std::unique_ptr<RunStore> RunStore::open_from_env() {
  const char* dir = std::getenv("MAESTRO_STORE");
  if (!dir || !*dir) return nullptr;
  return std::make_unique<RunStore>(dir);
}

std::size_t RunStore::replay_file(const std::string& path, bool tolerate_torn_tail) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return 0;
  std::size_t replayed = 0;
  std::size_t valid_bytes = 0;
  std::string line;
  bool torn = false;
  while (std::getline(in, line)) {
    // getline strips the '\n'; eof without a trailing newline means the last
    // append never completed — that line is the torn tail.
    const bool complete = !in.eof();
    if (!complete && tolerate_torn_tail) {
      torn = true;
      break;
    }
    if (line.empty()) {
      valid_bytes += 1;
      continue;
    }
    const auto entry = util::Json::parse(line);
    if (!entry || !ingest_locked(*entry)) {
      // A terminated but unparseable line can only come from a tear that a
      // later writer appended past; everything from here on is suspect.
      if (tolerate_torn_tail) {
        torn = true;
        break;
      }
      continue;  // snapshot: skip the bad line, keep the rest
    }
    ++replayed;
    valid_bytes += line.size() + (complete ? 1 : 0);
  }
  if (torn) {
    std::error_code ec;
    const auto total = fs::file_size(path, ec);
    if (!ec && total > valid_bytes) {
      dropped_tail_bytes_ += static_cast<std::size_t>(total) - valid_bytes;
      // Truncate so the next append starts on a clean line boundary instead
      // of concatenating into the torn record.
      fs::resize_file(path, valid_bytes, ec);
    }
  }
  return replayed;
}

bool RunStore::ingest_locked(const util::Json& entry) {
  if (!entry.is_object()) return false;
  const std::string& t = entry.at("t").as_string();
  if (t == "run") {
    StoredRun run;
    run.fingerprint = std::strtoull(entry.at("fp").as_string().c_str(), nullptr, 10);
    run.key = run_key_from_json(entry.at("key"));
    run.result = flow_result_from_json(entry.at("result"));
    runs_.push_back(std::move(run));
    return true;
  }
  if (t == "metric") {
    auto rec = metrics::Record::from_json(entry.at("rec"));
    if (!rec) return false;
    metrics_.push_back(std::move(*rec));
    return true;
  }
  if (t == "state") {
    const std::string& key = entry.at("key").as_string();
    if (key.empty()) return false;
    state_[key] = entry.at("value");
    return true;
  }
  return false;
}

void RunStore::degrade_locked(const char* why) {
  if (!degraded_) {
    std::fprintf(stderr,
                 "[maestro::store] WARNING: WAL append failed (%s) in %s; "
                 "degrading to in-memory operation — results are served from "
                 "memory but will not survive this process until compact() "
                 "succeeds\n",
                 why, dir_.c_str());
  }
  degraded_ = true;
  obs::Registry::global().counter("store.wal_errors").add();
  obs::Registry::global().gauge("store.degraded").set(1.0);
}

void RunStore::append_line_locked(const util::Json& entry) {
  // The fault site is seeded by the append sequence number, so a chaos test
  // kills the writer at a deterministic entry regardless of thread count.
  const auto fault = resil::FaultInjector::decide("store.wal", wal_seq_++);
  if (degraded_) return;  // in-memory only until compact() recovers the WAL
  if (fault == resil::FaultKind::Crash) {
    // Injected EIO: the write never reaches the disk.
    degrade_locked("injected EIO");
    return;
  }
  const std::string line = entry.dump();
  if (fault == resil::FaultKind::CorruptResult) {
    // Injected short write: half a record lands, then the device dies. The
    // torn tail is exactly what the recovery path truncates on next open.
    wal_ << line.substr(0, line.size() / 2);
    wal_.flush();
    degrade_locked("injected short write");
    return;
  }
  wal_ << line << '\n';
  wal_.flush();
  if (!wal_.good()) {
    degrade_locked("stream error");
    return;
  }
  ++wal_entries_;
  obs::Registry::global().counter("store.wal_appends").add();
}

void RunStore::append_run(StoredRun run) {
  run.result.logs.clear();  // logs are not persisted (see StoredRun)
  const std::lock_guard<std::mutex> lock(mu_);
  append_line_locked(run_to_entry(run));
  runs_.push_back(std::move(run));
}

void RunStore::append_metric(const metrics::Record& rec) {
  const std::lock_guard<std::mutex> lock(mu_);
  append_line_locked(metric_to_entry(rec));
  metrics_.push_back(rec);
}

void RunStore::put_state(const std::string& key, util::Json value) {
  const std::lock_guard<std::mutex> lock(mu_);
  append_line_locked(state_to_entry(key, value));
  state_[key] = std::move(value);
}

std::vector<StoredRun> RunStore::runs() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return runs_;
}

std::vector<metrics::Record> RunStore::metric_records() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return metrics_;
}

std::optional<util::Json> RunStore::get_state(const std::string& key) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = state_.find(key);
  if (it == state_.end()) return std::nullopt;
  return it->second;
}

std::size_t RunStore::run_count() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return runs_.size();
}

std::size_t RunStore::metric_count() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return metrics_.size();
}

std::size_t RunStore::wal_entries() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return wal_entries_;
}

std::size_t RunStore::recovered_entries() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return recovered_entries_;
}

std::size_t RunStore::dropped_tail_bytes() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return dropped_tail_bytes_;
}

bool RunStore::degraded() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return degraded_;
}

bool RunStore::compact() {
  obs::Span span("store_compact", "store");
  const std::lock_guard<std::mutex> lock(mu_);
  const std::string tmp = snapshot_path_ + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return false;
    for (const auto& run : runs_) out << run_to_entry(run).dump() << '\n';
    for (const auto& rec : metrics_) out << metric_to_entry(rec).dump() << '\n';
    for (const auto& [key, value] : state_) out << state_to_entry(key, value).dump() << '\n';
    out.flush();
    if (!out) return false;
  }
  std::error_code ec;
  fs::rename(tmp, snapshot_path_, ec);  // atomic within the store directory
  if (ec) return false;
  wal_.close();
  wal_.open(wal_path_, std::ios::trunc);
  wal_entries_ = 0;
  span.arg("entries",
           static_cast<double>(runs_.size() + metrics_.size() + state_.size()));
  obs::Registry::global().counter("store.compactions").add();
  if (wal_ && degraded_) {
    // The snapshot just persisted the full mirror and the WAL is fresh:
    // the degradation is healed.
    degraded_ = false;
    obs::Registry::global().gauge("store.degraded").set(0.0);
    std::fprintf(stderr, "[maestro::store] WAL recovered by compaction in %s\n", dir_.c_str());
  }
  return static_cast<bool>(wal_);
}

void bind_metrics_sink(metrics::Server& server, RunStore& store) {
  server.set_sink([&store](const metrics::Record& rec) { store.append_metric(rec); });
}

}  // namespace maestro::store
