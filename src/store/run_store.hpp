#pragma once
// RunStore — the durable half of the METRICS vision (paper Section 3.3 /
// Fig. 11): a crash-safe, append-only store of every tool run, every
// transmitted metrics record, and every campaign checkpoint, so that
// flow-trajectory search, MAB scheduling and doomed-run guards can learn
// from (and avoid repeating) past work across process restarts.
//
// On-disk layout (one directory per store, MAESTRO_STORE=<dir> activates it
// in the examples):
//
//   <dir>/snapshot.jsonl   last compaction, written whole then atomically
//                          renamed into place — always a complete file
//   <dir>/wal.jsonl        append-only JSONL write-ahead log since the last
//                          compaction; flushed per entry
//
// Entry grammar (one JSON object per line): {"t":"run",...} a memoized tool
// run, {"t":"metric",...} a metrics::Record, {"t":"state","key":...,
// "value":...} a campaign-checkpoint blob (last write per key wins).
//
// Recovery contract (the kill-the-writer test in tests/test_store.cpp): a
// writer that dies mid-append leaves a torn final line; open() replays the
// snapshot, then the WAL up to the last complete line, drops only the torn
// tail, and truncates the file to the recovered length so later appends
// start on a clean line boundary. Every complete record survives.

#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "metrics/record.hpp"
#include "metrics/server.hpp"
#include "store/fingerprint.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace maestro::store {

/// One memoized run: its content address, the key it was computed from, and
/// the result. Step logs are dropped on persist (they are bulky and nothing
/// downstream of the cache consumes them; FlowResult::logs comes back empty
/// from the store).
struct StoredRun {
  std::uint64_t fingerprint = 0;
  RunKey key;
  flow::FlowResult result;
};

/// FlowResult <-> JSON (logs dropped; see StoredRun).
util::Json flow_result_to_json(const flow::FlowResult& r);
flow::FlowResult flow_result_from_json(const util::Json& j);
util::Json run_key_to_json(const RunKey& key);
RunKey run_key_from_json(const util::Json& j);
/// Rng state <-> JSON (six decimal-string words — 64-bit values do not
/// survive a JSON double). The campaign checkpoints use this so a resumed
/// search continues the identical random stream.
util::Json rng_state_to_json(const util::Rng& rng);
bool rng_state_from_json(util::Rng& rng, const util::Json& j);

class RunStore {
 public:
  /// Opens (creating the directory if needed) and recovers: snapshot first,
  /// then the WAL with torn-tail tolerance.
  explicit RunStore(const std::string& dir);

  /// A store at $MAESTRO_STORE, or nullptr when the variable is unset.
  static std::unique_ptr<RunStore> open_from_env();

  RunStore(const RunStore&) = delete;
  RunStore& operator=(const RunStore&) = delete;

  const std::string& dir() const { return dir_; }

  /// Appends are thread-safe and flushed per entry.
  void append_run(StoredRun run);
  void append_metric(const metrics::Record& rec);
  /// Campaign checkpoint: last write per key wins on recovery.
  void put_state(const std::string& key, util::Json value);

  /// Snapshot copies of the in-memory mirror.
  std::vector<StoredRun> runs() const;
  std::vector<metrics::Record> metric_records() const;
  std::optional<util::Json> get_state(const std::string& key) const;

  std::size_t run_count() const;
  std::size_t metric_count() const;
  /// WAL entries appended since open (excludes recovered ones).
  std::size_t wal_entries() const;
  /// Complete entries replayed at open (snapshot + WAL).
  std::size_t recovered_entries() const;
  /// Bytes of torn WAL tail dropped (and truncated away) at open.
  std::size_t dropped_tail_bytes() const;

  /// Fold everything into snapshot.jsonl (write-temp + atomic rename), then
  /// truncate the WAL. False on I/O failure (store stays usable). A
  /// successful compaction also recovers a degraded store: the snapshot
  /// persists the full in-memory mirror and the WAL reopens fresh.
  bool compact();

  /// True once a WAL write failed (real stream error or injected EIO /
  /// short write at fault site "store.wal"). A degraded store keeps full
  /// in-memory service — lookups, caches and campaigns continue — but stops
  /// appending to disk until compact() succeeds; the first failure logs a
  /// warning to stderr.
  bool degraded() const;

 private:
  void degrade_locked(const char* why);
  void append_line_locked(const util::Json& entry);
  bool ingest_locked(const util::Json& entry);
  std::size_t replay_file(const std::string& path, bool tolerate_torn_tail);

  std::string dir_;
  std::string wal_path_;
  std::string snapshot_path_;

  mutable std::mutex mu_;
  std::ofstream wal_;
  std::vector<StoredRun> runs_;
  std::vector<metrics::Record> metrics_;
  std::map<std::string, util::Json> state_;
  std::size_t wal_entries_ = 0;
  std::size_t recovered_entries_ = 0;
  std::size_t dropped_tail_bytes_ = 0;
  std::size_t wal_seq_ = 0;  ///< append attempts; seeds the WAL fault site
  bool degraded_ = false;
};

/// Bridge the in-memory METRICS server into a durable store: every record
/// submitted to `server` from now on is also appended to `store`. The store
/// must outlive the server (or a later set_sink(nullptr)).
void bind_metrics_sink(metrics::Server& server, RunStore& store);

}  // namespace maestro::store
