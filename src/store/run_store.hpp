#pragma once
// RunStore — the durable half of the METRICS vision (paper Section 3.3 /
// Fig. 11): a crash-safe, append-only store of every tool run, every
// transmitted metrics record, and every campaign checkpoint, so that
// flow-trajectory search, MAB scheduling and doomed-run guards can learn
// from (and avoid repeating) past work across process restarts — and so
// that *many processes* can share one corpus without trampling each other.
//
// On-disk layout (one directory per store, MAESTRO_STORE=<dir> activates it
// in the examples). The store is sharded by fingerprint range into a
// power-of-two number of shards (MAESTRO_STORE_SHARDS, default 8), fixed at
// directory creation and recorded in store.meta so every opener agrees:
//
//   <dir>/store.meta          {"shards":N} — negotiated under store.lock
//   <dir>/store.lock          flock target for meta negotiation
//   <dir>/wal-NN.jsonl        per-shard append-only WAL since last compaction
//   <dir>/snapshot-NN.jsonl   per-shard compaction output, written whole to
//                             a .tmp then atomically renamed into place
//
// Entry grammar: each line is CRC32/length framed (see store/wal_frame.hpp)
// around one JSON object: {"t":"run",...} a memoized tool run, {"t":
// "metric",...} a metrics::Record, {"t":"state","key":...,"value":...} a
// campaign-checkpoint blob (last write per key wins; a key always lands in
// one shard, so LWW order is well defined).
//
// Multi-process coordination: every append takes an exclusive flock on the
// shard's WAL fd for the duration of one write. The kernel releases the
// lock when a process dies — even kill -9 — so stale-lease takeover is
// automatic and a crashed writer can never wedge the fleet. Before writing,
// the lease holder ingests any bytes other processes appended since it last
// looked (catch-up), so its in-memory mirror tracks the shared file.
// Readers that do not want the lease call refresh(), which ingests complete
// new entries from a consistent prefix without blocking writers.
//
// Recovery contract (tests/test_store.cpp, tests/test_store_fleet.cpp): a
// writer that dies mid-append leaves a torn final line — open() replays
// each snapshot, then each WAL up to the last complete line, drops only the
// torn tail and truncates to a clean boundary. A flipped byte *mid-file*
// fails that entry's CRC: the line is skipped and counted in
// store.corrupt_lines, replay continues, and no complete neighbour is ever
// lost. A crash between compaction's rename and WAL truncate replays some
// entries from both files; byte-identical WAL entries already present in
// the snapshot are deduplicated during replay.
//
// Durability policy (MAESTRO_STORE_FSYNC): "always" fsyncs the shard WAL
// after every append, "batch" (default) every fsync_batch appends, "off"
// never — entries still survive process death in all modes (the page cache
// outlives the writer); the policy only decides power-loss durability.
// compact() always fsyncs the snapshot temp file before the atomic rename
// and the directory after it.

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "metrics/record.hpp"
#include "metrics/server.hpp"
#include "store/fingerprint.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace maestro::store {

/// One memoized run: its content address, the key it was computed from, and
/// the result. Step logs are dropped on persist (they are bulky and nothing
/// downstream of the cache consumes them; FlowResult::logs comes back empty
/// from the store).
struct StoredRun {
  std::uint64_t fingerprint = 0;
  RunKey key;
  flow::FlowResult result;
};

/// FlowResult <-> JSON (logs dropped; see StoredRun).
util::Json flow_result_to_json(const flow::FlowResult& r);
flow::FlowResult flow_result_from_json(const util::Json& j);
util::Json run_key_to_json(const RunKey& key);
RunKey run_key_from_json(const util::Json& j);
/// Rng state <-> JSON (six decimal-string words — 64-bit values do not
/// survive a JSON double). The campaign checkpoints use this so a resumed
/// search continues the identical random stream.
util::Json rng_state_to_json(const util::Rng& rng);
bool rng_state_from_json(util::Rng& rng, const util::Json& j);

/// When appends hit the disk. See the header comment for semantics.
enum class FsyncMode { Always, Batch, Off };

struct RunStoreOptions {
  /// Requested shard count, rounded up to a power of two. 0 means
  /// $MAESTRO_STORE_SHARDS, else 8. An existing directory's store.meta
  /// always wins so every opener agrees on the layout.
  std::size_t shards = 0;
  /// Unset means $MAESTRO_STORE_FSYNC (always|batch|off), else Batch.
  std::optional<FsyncMode> fsync;
  /// Appends between fsyncs in Batch mode.
  std::size_t fsync_batch = 64;
  /// Test seam: called from compact() per shard at "pre_rename" (snapshot
  /// temp durable, not yet visible) and "pre_truncate" (snapshot renamed,
  /// WAL not yet reset). The crash-during-compaction chaos tests _exit()
  /// here to freeze the store between those steps.
  std::function<void(const char* phase, std::size_t shard)> compact_hook;
};

class RunStore {
 public:
  /// Opens (creating the directory if needed) and recovers every shard:
  /// snapshot first, then the WAL with corrupt-line skipping and torn-tail
  /// truncation.
  explicit RunStore(const std::string& dir) : RunStore(dir, RunStoreOptions{}) {}
  RunStore(const std::string& dir, RunStoreOptions options);
  ~RunStore();

  /// A store at $MAESTRO_STORE, or nullptr when the variable is unset.
  static std::unique_ptr<RunStore> open_from_env();

  RunStore(const RunStore&) = delete;
  RunStore& operator=(const RunStore&) = delete;

  const std::string& dir() const { return dir_; }
  std::size_t shard_count() const { return shards_.size(); }

  /// Appends are thread-safe, framed, written under the shard lease and
  /// fsynced per the store's FsyncMode.
  void append_run(StoredRun run);
  void append_metric(const metrics::Record& rec);
  /// Campaign checkpoint: last write per key wins on recovery.
  void put_state(const std::string& key, util::Json value);

  /// Snapshot copies of the in-memory mirror (shards concatenated in index
  /// order — position is not append order across shards; look entries up by
  /// fingerprint or key).
  std::vector<StoredRun> runs() const;
  std::vector<metrics::Record> metric_records() const;
  std::optional<util::Json> get_state(const std::string& key) const;

  std::size_t run_count() const;
  std::size_t metric_count() const;
  /// WAL entries appended by this process since open (excludes recovered
  /// and catch-up-ingested ones).
  std::size_t wal_entries() const;
  /// Complete entries replayed at open (snapshots + WALs, after dedup).
  std::size_t recovered_entries() const;
  /// Bytes of torn WAL tails dropped (and truncated away) at open or while
  /// holding the append lease.
  std::size_t dropped_tail_bytes() const;
  /// Framed-but-invalid lines skipped during replay (CRC or JSON failure).
  std::size_t corrupt_lines() const;

  /// Read-mostly path for processes that share the directory with other
  /// writers: ingest complete entries appended by them since open (or the
  /// last refresh/append) without taking the lease. Returns the number of
  /// entries ingested.
  std::size_t refresh();

  /// Fold every shard into its snapshot (write-temp + fsync + atomic
  /// rename + directory fsync), then truncate its WAL — all under the
  /// shard lease, after a final catch-up so no other writer's entries are
  /// dropped. False if any shard failed (store stays usable). A successful
  /// compaction also recovers degraded shards: the snapshot persists the
  /// full mirror and the WAL restarts fresh.
  bool compact();

  /// True once any shard's WAL write failed (real I/O error or injected
  /// EIO / short write at fault site "store.wal.<shard>"). A degraded
  /// shard keeps full in-memory service — lookups, caches and campaigns
  /// continue — but stops appending to disk until compact() succeeds; the
  /// first failure logs a warning to stderr.
  bool degraded() const;

 private:
  struct Shard;
  struct ReplayStats {
    std::size_t recovered = 0;
    std::size_t corrupt = 0;
    std::size_t dropped = 0;
  };

  Shard& shard_for_fp(std::uint64_t fp) const;
  Shard& shard_for_key(const std::string& key) const;
  void degrade_locked(Shard& s, const char* why);
  /// Appends one framed payload under the shard lease; mirrors are the
  /// caller's job. No-op when the shard is degraded.
  void append_line_locked(Shard& s, const std::string& payload);
  bool ingest_locked(Shard& s, const util::Json& entry);
  /// Clears the shard mirror and replays snapshot then WAL, truncating the
  /// torn tail. Caller holds the shard mutex and the flock lease.
  ReplayStats load_shard_locked(Shard& s);
  /// Ingest [offset, EOF) — other processes' appends. Holding the lease
  /// additionally truncates a dead writer's torn tail.
  std::size_t catch_up_locked(Shard& s, bool holding_lease);
  bool compact_shard_locked(Shard& s, std::size_t* entries);
  void fsync_policy_locked(Shard& s);
  void record_corrupt(Shard& s, std::size_t n);
  std::size_t negotiate_shards(std::size_t requested);

  std::string dir_;
  RunStoreOptions opt_;
  FsyncMode fsync_mode_ = FsyncMode::Batch;
  std::size_t shard_bits_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::size_t> degraded_shards_{0};
  mutable std::mutex warn_mu_;
  bool warned_corrupt_ = false;
};

/// Bridge the in-memory METRICS server into a durable store: every record
/// submitted to `server` from now on is also appended to `store`. The store
/// must outlive the server (or a later set_sink(nullptr)).
void bind_metrics_sink(metrics::Server& server, RunStore& store);

}  // namespace maestro::store
