#include "store/wal_frame.hpp"

#include <array>
#include <cstdio>

namespace maestro::store::wal_frame {

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(std::string_view data) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (const char ch : data) {
    c = table[(c ^ static_cast<unsigned char>(ch)) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::string encode(std::string_view payload) {
  char header[32];
  const int n = std::snprintf(header, sizeof(header), "%08x %zu ", crc32(payload),
                              payload.size());
  std::string line;
  line.reserve(static_cast<std::size_t>(n) + payload.size() + 1);
  line.append(header, static_cast<std::size_t>(n));
  line.append(payload);
  line.push_back('\n');
  return line;
}

std::optional<std::string_view> decode(std::string_view line) {
  // "<8 hex> <digits> <payload>" — header is at least 8 + 1 + 1 + 1 bytes.
  if (line.size() < 11 || line[8] != ' ') return std::nullopt;
  std::uint32_t want = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    const char c = line[i];
    std::uint32_t nibble = 0;
    if (c >= '0' && c <= '9') {
      nibble = static_cast<std::uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      nibble = static_cast<std::uint32_t>(c - 'a') + 10;
    } else {
      return std::nullopt;
    }
    want = (want << 4) | nibble;
  }
  std::size_t pos = 9;
  std::size_t len = 0;
  bool any_digit = false;
  while (pos < line.size() && line[pos] >= '0' && line[pos] <= '9') {
    if (len > (line.size() >> 1)) return std::nullopt;  // overflow guard
    len = len * 10 + static_cast<std::size_t>(line[pos] - '0');
    any_digit = true;
    ++pos;
  }
  if (!any_digit || pos >= line.size() || line[pos] != ' ') return std::nullopt;
  ++pos;
  if (line.size() - pos != len) return std::nullopt;
  const std::string_view payload = line.substr(pos);
  if (crc32(payload) != want) return std::nullopt;
  return payload;
}

}  // namespace maestro::store::wal_frame
