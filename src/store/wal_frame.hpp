#pragma once
// Checksummed line framing for the RunStore WAL and snapshots.
//
// Grammar (one entry per line):
//
//   <crc32-hex8> <len-dec> <payload>\n
//
// where <crc32-hex8> is the CRC-32 (IEEE, reflected, as in zip/zlib) of the
// payload bytes printed as exactly 8 lowercase hex digits, and <len-dec> is
// the payload byte count in decimal. The payload itself is one JSON object
// and never contains a newline.
//
// Why frame at all: a bare-JSONL WAL can only detect a torn *tail* (the file
// ends mid-line). It cannot detect a flipped bit in the middle of the file —
// the line still parses, or fails to parse in a way indistinguishable from a
// tear. With per-entry CRC+length, recovery classifies every line precisely:
// intact (crc matches), corrupt (framed but crc/len mismatch — skip it, count
// store.corrupt_lines, keep replaying), or torn (no trailing newline — drop
// and truncate). Zero complete records are ever lost to a bad neighbour.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace maestro::store::wal_frame {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over `data`.
std::uint32_t crc32(std::string_view data);

/// Frame one payload as a full line, including the trailing '\n'.
std::string encode(std::string_view payload);

/// Decode one line (without its trailing '\n'). Returns the payload view
/// into `line` when the frame is well-formed and the CRC matches; nullopt
/// for anything else (bad header, length mismatch, checksum mismatch).
std::optional<std::string_view> decode(std::string_view line);

}  // namespace maestro::store::wal_frame
