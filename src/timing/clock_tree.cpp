#include "timing/clock_tree.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace maestro::timing {

using netlist::InstanceId;

namespace {

struct Builder {
  const place::Placement& pl;
  const ClockTreeOptions& opt;
  util::Rng& rng;
  ClockTree& tree;

  /// Recursively split the flop set in alternating directions, accumulating
  /// insertion delay down the tree.
  void split(std::vector<InstanceId>& flops, std::size_t lo, std::size_t hi,
             geom::Point tap, double delay_ps, int depth, bool vertical) {
    const std::size_t n = hi - lo;
    if (n == 0) return;
    tree.levels = std::max(tree.levels, static_cast<std::size_t>(depth));
    if (n <= opt.leaf_fanout || depth >= opt.max_depth) {
      // Leaf buffer drives these flops directly.
      ++tree.buffers;
      const double leaf_noise = rng.gauss(0.0, opt.ocv_sigma_ps);
      for (std::size_t i = lo; i < hi; ++i) {
        const InstanceId ff = flops[i];
        const double dist_mm =
            static_cast<double>(geom::manhattan(tap, pl.pin_of(ff))) * 1e-6;
        tree.insertion_ps[ff] = delay_ps + opt.buffer_delay_ps + leaf_noise +
                                dist_mm * opt.wire_delay_per_mm_ps +
                                rng.gauss(0.0, opt.ocv_sigma_ps * 0.5);
      }
      return;
    }
    // Median split along the current direction.
    const auto mid_it = flops.begin() + static_cast<std::ptrdiff_t>(lo + n / 2);
    std::nth_element(flops.begin() + static_cast<std::ptrdiff_t>(lo), mid_it,
                     flops.begin() + static_cast<std::ptrdiff_t>(hi),
                     [&](InstanceId a, InstanceId b) {
                       return vertical ? pl.pin_of(a).y < pl.pin_of(b).y
                                       : pl.pin_of(a).x < pl.pin_of(b).x;
                     });
    const std::size_t mid = lo + n / 2;

    auto centroid = [&](std::size_t a, std::size_t b) {
      geom::Point c{0, 0};
      for (std::size_t i = a; i < b; ++i) {
        c.x += pl.pin_of(flops[i]).x;
        c.y += pl.pin_of(flops[i]).y;
      }
      const auto cnt = static_cast<geom::Dbu>(b - a);
      return geom::Point{c.x / cnt, c.y / cnt};
    };
    const geom::Point left_tap = centroid(lo, mid);
    const geom::Point right_tap = centroid(mid, hi);
    ++tree.buffers;

    // Each branch costs one buffer plus wire to the child tap; load imbalance
    // (different subtree sizes) perturbs the branch delay — the physical
    // source of skew.
    auto branch_delay = [&](const geom::Point& child_tap, std::size_t load) {
      const double dist_mm = static_cast<double>(geom::manhattan(tap, child_tap)) * 1e-6;
      const double load_term =
          0.15 * opt.buffer_delay_ps * std::log2(1.0 + static_cast<double>(load));
      return delay_ps + opt.buffer_delay_ps + load_term + dist_mm * opt.wire_delay_per_mm_ps +
             rng.gauss(0.0, opt.ocv_sigma_ps);
    };
    split(flops, lo, mid, left_tap, branch_delay(left_tap, mid - lo), depth + 1, !vertical);
    split(flops, mid, hi, right_tap, branch_delay(right_tap, hi - mid), depth + 1, !vertical);
  }
};

}  // namespace

ClockTree build_clock_tree(const place::Placement& pl, const ClockTreeOptions& opt,
                           util::Rng& rng) {
  ClockTree tree;
  tree.insertion_ps.assign(pl.netlist().instance_count(), 0.0);
  auto flops = pl.netlist().flops();
  if (flops.empty()) return tree;

  // Root tap at the flop centroid.
  geom::Point root{0, 0};
  for (const InstanceId ff : flops) {
    root.x += pl.pin_of(ff).x;
    root.y += pl.pin_of(ff).y;
  }
  root.x /= static_cast<geom::Dbu>(flops.size());
  root.y /= static_cast<geom::Dbu>(flops.size());

  Builder b{pl, opt, rng, tree};
  b.split(flops, 0, flops.size(), root, 0.0, 0, false);

  tree.max_insertion_ps = 0.0;
  tree.min_insertion_ps = std::numeric_limits<double>::infinity();
  for (const InstanceId ff : pl.netlist().flops()) {
    tree.max_insertion_ps = std::max(tree.max_insertion_ps, tree.insertion_ps[ff]);
    tree.min_insertion_ps = std::min(tree.min_insertion_ps, tree.insertion_ps[ff]);
  }
  if (!std::isfinite(tree.min_insertion_ps)) tree.min_insertion_ps = 0.0;
  return tree;
}

}  // namespace maestro::timing
