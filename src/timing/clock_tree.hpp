#pragma once
// Clock tree synthesis: a recursive H-tree over the flop population giving
// each flop an insertion delay. Imperfect balancing (load-dependent branch
// delays plus process noise) yields realistic skew, which the STA engines
// consume for launch/capture edge offsets.

#include <cstdint>
#include <vector>

#include "place/placement.hpp"
#include "util/rng.hpp"

namespace maestro::timing {

struct ClockTreeOptions {
  int max_depth = 8;              ///< H-tree recursion depth limit
  std::size_t leaf_fanout = 16;   ///< flops per leaf buffer
  double buffer_delay_ps = 18.0;  ///< nominal delay per tree level
  double wire_delay_per_mm_ps = 60.0;
  double ocv_sigma_ps = 1.5;      ///< per-buffer process noise
};

struct ClockTree {
  /// Insertion delay at each flop's clock pin (indexed by InstanceId;
  /// non-flop entries are 0).
  std::vector<double> insertion_ps;
  double max_insertion_ps = 0.0;
  double min_insertion_ps = 0.0;
  std::size_t levels = 0;
  std::size_t buffers = 0;

  double skew_ps() const { return max_insertion_ps - min_insertion_ps; }
  double insertion_of(netlist::InstanceId id) const {
    return id < insertion_ps.size() ? insertion_ps[id] : 0.0;
  }
};

/// Build an H-tree over the placed flops.
ClockTree build_clock_tree(const place::Placement& pl, const ClockTreeOptions& opt,
                           util::Rng& rng);

}  // namespace maestro::timing
