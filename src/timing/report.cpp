#include "timing/report.hpp"

#include <algorithm>
#include <sstream>

#include "timing/timing_graph.hpp"

namespace maestro::timing {

using netlist::CellFunction;
using netlist::InstanceId;
using netlist::NetId;

std::vector<TimingPath> report_timing(const place::Placement& pl, const ClockTree& clock,
                                      const StaOptions& opt, std::size_t n_paths,
                                      const route::GridGraph* routed) {
  const auto& nl = pl.netlist();

  // One kernel propagation supplies both the endpoint report and the
  // per-instance arrivals the backtracker walks — the seed engine's local
  // arrival recompute (a second full sweep) is gone.
  TimingGraph graph(pl, clock);
  const StaReport rep = graph.analyze(opt, routed);

  const bool pba = opt.mode == AnalysisMode::PathBased;
  const double derate = pba ? 1.0 : opt.gba_derate;
  const bool with_si = opt.with_si && routed != nullptr;
  SiMap si_map;
  if (with_si) si_map = build_si_map(*routed);

  // Stage wire delay for backtracking; mirrors the kernel model (including
  // the SI coupling term, which the seed recompute omitted).
  auto wire_delay = [&](NetId n, InstanceId sink_inst) {
    const auto& net = nl.net(n);
    const geom::Point a = pl.pin_of(net.driver);
    const geom::Point b = pl.pin_of(sink_inst);
    const double len = pba ? static_cast<double>(geom::manhattan(a, b))
                           : static_cast<double>(pl.net_hpwl(n));
    const double rw = opt.wire.res_per_nm_kohm * len;
    const double cw = opt.wire.cap_per_nm_ff * len;
    double d = rw * (0.5 * cw + nl.master_of(sink_inst).input_cap_ff) * opt.corner.wire_factor;
    if (with_si) {
      const auto [c0, r0] = routed->indexer().cell_of(a);
      const auto [c1, r1] = routed->indexer().cell_of(b);
      d *= 1.0 + opt.si_coupling_factor *
                     si_map.max_in_window(std::min(c0, c1), std::min(r0, r1),
                                          std::max(c0, c1), std::max(r0, r1));
    }
    return d;
  };

  auto arrival = [&](InstanceId id) { return graph.arrival_of(id); };

  // Pick the N worst endpoints.
  std::vector<const EndpointTiming*> sorted;
  for (const auto& ep : rep.endpoints) sorted.push_back(&ep);
  std::sort(sorted.begin(), sorted.end(),
            [](const EndpointTiming* a, const EndpointTiming* b) {
              return a->slack_ps < b->slack_ps;
            });
  if (sorted.size() > n_paths) sorted.resize(n_paths);

  std::vector<TimingPath> paths;
  for (const auto* ep : sorted) {
    TimingPath path;
    path.endpoint = ep->endpoint;
    path.is_flop = ep->is_flop;
    path.slack_ps = ep->slack_ps;
    path.arrival_ps = ep->arrival_ps;
    path.required_ps = ep->required_ps;

    // Backtrack from the endpoint's D/input pin to a path source, greedily
    // following the worst (arrival + wire) fanin at each stage.
    std::vector<PathStage> reversed;
    InstanceId cur = ep->endpoint;
    double cum = ep->arrival_ps;
    for (;;) {
      PathStage stage;
      stage.instance = cur;
      stage.arrival_ps = cum;
      reversed.push_back(stage);
      const auto& m = nl.master_of(cur);
      const bool is_source = m.function == CellFunction::Input ||
                             (m.function == CellFunction::Dff && cur != ep->endpoint);
      if (is_source) break;
      // Worst fanin.
      InstanceId best = netlist::kNoInstance;
      double best_arr = -1e300;
      for (const NetId in : nl.instance(cur).input_nets) {
        if (in == netlist::kNoNet) continue;
        const InstanceId drv = nl.net(in).driver;
        const double a = arrival(drv) + wire_delay(in, cur) * derate;
        if (a > best_arr) {
          best_arr = a;
          best = drv;
        }
      }
      if (best == netlist::kNoInstance) break;
      cum = arrival(best);
      cur = best;
      if (reversed.size() > nl.instance_count()) break;  // safety
    }
    std::reverse(reversed.begin(), reversed.end());
    for (std::size_t i = 0; i < reversed.size(); ++i) {
      reversed[i].incr_ps =
          i == 0 ? reversed[i].arrival_ps : reversed[i].arrival_ps - reversed[i - 1].arrival_ps;
    }
    path.stages = std::move(reversed);
    paths.push_back(std::move(path));
  }
  return paths;
}

std::string format_path(const TimingPath& path, const netlist::Netlist& nl) {
  std::ostringstream os;
  os << "Endpoint: " << nl.instance(path.endpoint).name << " ("
     << (path.is_flop ? "flop D" : "output") << ")\n";
  char buf[128];
  std::snprintf(buf, sizeof buf, "  arrival %10.1f ps   required %10.1f ps   slack %+9.1f ps\n",
                path.arrival_ps, path.required_ps, path.slack_ps);
  os << buf;
  os << "  ----------------------------------------------------------\n";
  os << "  instance             cell        incr(ps)    arrival(ps)\n";
  for (const auto& s : path.stages) {
    std::snprintf(buf, sizeof buf, "  %-20s %-10s %9.2f %13.2f\n",
                  nl.instance(s.instance).name.c_str(), nl.master_of(s.instance).name.c_str(),
                  s.incr_ps, s.arrival_ps);
    os << buf;
  }
  return os.str();
}

}  // namespace maestro::timing
