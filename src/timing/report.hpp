#pragma once
// Timing path reports: the report_timing view every STA user expects —
// the N worst endpoints with their critical paths traced stage by stage
// (instance, cell, incremental delay, cumulative arrival). Also the
// machine-readable structure the DoomedRunGuard-style predictors of
// Section 3.3 would mine ("prediction ... through placement, routing,
// optimization and IR drop-aware timing analysis").

#include <string>
#include <vector>

#include "timing/sta.hpp"

namespace maestro::timing {

/// One stage on a traced path.
struct PathStage {
  netlist::InstanceId instance = netlist::kNoInstance;
  double arrival_ps = 0.0;   ///< cumulative at this stage's output (or pin)
  double incr_ps = 0.0;      ///< gate + wire increment contributed here
};

/// A traced worst path to one endpoint.
struct TimingPath {
  netlist::InstanceId endpoint = netlist::kNoInstance;
  bool is_flop = false;
  double slack_ps = 0.0;
  double arrival_ps = 0.0;
  double required_ps = 0.0;
  /// Launch-to-capture stages, in arrival order (first = path start).
  std::vector<PathStage> stages;
};

/// Trace the `n_paths` worst endpoints' critical paths under `opt`.
std::vector<TimingPath> report_timing(const place::Placement& pl, const ClockTree& clock,
                                      const StaOptions& opt, std::size_t n_paths,
                                      const route::GridGraph* routed = nullptr);

/// Human-readable rendering of one path (classic report_timing layout).
std::string format_path(const TimingPath& path, const netlist::Netlist& nl);

}  // namespace maestro::timing
