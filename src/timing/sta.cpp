#include "timing/sta.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "timing/timing_graph.hpp"

namespace maestro::timing {

/// Aggregate usage/capacity of the (up to 4) edges at a GCell.
GCellStats gcell_stats(const route::GridGraph& g, std::size_t c, std::size_t r) {
  GCellStats s;
  double use = 0.0;
  double cap = 0.0;
  const route::GCell cell{static_cast<std::uint32_t>(c), static_cast<std::uint32_t>(r)};
  if (c + 1 < g.cols()) {
    const auto e = g.edge_id(cell, route::Dir::East);
    use += g.usage(e);
    cap += g.capacity(e);
  }
  if (r + 1 < g.rows()) {
    const auto e = g.edge_id(cell, route::Dir::North);
    use += g.usage(e);
    cap += g.capacity(e);
  }
  s.utilization = cap > 0.0 ? use / cap : 0.0;
  return s;
}

SiMap build_si_map(const route::GridGraph& g) {
  SiMap m;
  m.cols = g.cols();
  m.rows = g.rows();
  m.source = &g;
  m.revision = g.revision();
  m.utilization.resize(m.cols * m.rows);
  for (std::size_t r = 0; r < m.rows; ++r) {
    for (std::size_t c = 0; c < m.cols; ++c) {
      m.utilization[r * m.cols + c] = gcell_stats(g, c, r).utilization;
    }
  }
  return m;
}

const std::vector<Corner>& standard_corners() {
  // Slow silicon is disproportionately slow on gates (device-dominated);
  // wire RC varies less; setup requirements grow at the slow corner. The
  // fast corner compresses gate delay more than wire delay. These cross-term
  // differences are deliberately not a single scalar of TT.
  static const std::vector<Corner> corners = {
      {"ss", 1.18, 1.08, 1.15},
      {"tt", 1.00, 1.00, 1.00},
      {"ff", 0.86, 0.95, 0.92},
  };
  return corners;
}

const Corner& corner_by_name(const std::string& name) {
  // The set is tiny and fixed, so "O(1)" is a two-character dispatch rather
  // than a hash map: no vector rebuild, no full string compares per lookup.
  const auto& corners = standard_corners();
  if (!name.empty()) {
    switch (name[0]) {
      case 's': if (name == "ss") return corners[0]; break;
      case 't': if (name == "tt") return corners[1]; break;
      case 'f': if (name == "ff") return corners[2]; break;
      default: break;
    }
  }
  assert(false && "unknown corner name");
  return corners[1];
}

const EndpointTiming* StaReport::endpoint_of(netlist::InstanceId id) const {
  for (const auto& ep : endpoints) {
    if (ep.endpoint == id) return &ep;
  }
  return nullptr;
}

StaReport run_sta(const place::Placement& pl, const ClockTree& clock, const StaOptions& opt,
                  const route::GridGraph* routed) {
  // Thin wrapper over the levelized kernel; reports are bit-identical to the
  // original per-call engine. Long-lived callers (sizing loops, ECO, corner
  // sweeps) should hold a TimingGraph instead and use reanalyze()/
  // analyze_corners() to amortize the build.
  TimingGraph graph(pl, clock);
  return graph.analyze(opt, routed);
}

}  // namespace maestro::timing
