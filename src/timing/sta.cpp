#include "timing/sta.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace maestro::timing {

using netlist::CellFunction;
using netlist::InstanceId;
using netlist::NetId;

namespace {

/// Per-instance propagated timing state.
struct NodeState {
  double arrival = 0.0;          ///< at the instance's output pin
  std::size_t stages = 0;
  double wire_delay = 0.0;       ///< accumulated on the worst path
  double gate_delay = 0.0;
  std::size_t max_fanout = 0;
};

/// SI coupling penalty for a net: proportional to wire delay scaled by the
/// utilization of the grid cells its bounding box crosses.
double si_utilization(const route::GridGraph& g, const geom::Point& a, const geom::Point& b) {
  const auto [c0, r0] = g.indexer().cell_of(a);
  const auto [c1, r1] = g.indexer().cell_of(b);
  const std::size_t clo = std::min(c0, c1);
  const std::size_t chi = std::max(c0, c1);
  const std::size_t rlo = std::min(r0, r1);
  const std::size_t rhi = std::max(r0, r1);
  double worst = 0.0;
  for (std::size_t c = clo; c <= chi; ++c) {
    for (std::size_t r = rlo; r <= rhi; ++r) {
      const GCellStats s = gcell_stats(g, c, r);
      worst = std::max(worst, s.utilization);
    }
  }
  return worst;
}

}  // namespace

/// Aggregate usage/capacity of the (up to 4) edges at a GCell.
GCellStats gcell_stats(const route::GridGraph& g, std::size_t c, std::size_t r) {
  GCellStats s;
  double use = 0.0;
  double cap = 0.0;
  const route::GCell cell{static_cast<std::uint32_t>(c), static_cast<std::uint32_t>(r)};
  if (c + 1 < g.cols()) {
    const auto e = g.edge_id(cell, route::Dir::East);
    use += g.usage(e);
    cap += g.capacity(e);
  }
  if (r + 1 < g.rows()) {
    const auto e = g.edge_id(cell, route::Dir::North);
    use += g.usage(e);
    cap += g.capacity(e);
  }
  s.utilization = cap > 0.0 ? use / cap : 0.0;
  return s;
}

std::vector<Corner> standard_corners() {
  // Slow silicon is disproportionately slow on gates (device-dominated);
  // wire RC varies less; setup requirements grow at the slow corner. The
  // fast corner compresses gate delay more than wire delay. These cross-term
  // differences are deliberately not a single scalar of TT.
  return {
      {"ss", 1.18, 1.08, 1.15},
      {"tt", 1.00, 1.00, 1.00},
      {"ff", 0.86, 0.95, 0.92},
  };
}

Corner corner_by_name(const std::string& name) {
  for (const auto& c : standard_corners()) {
    if (c.name == name) return c;
  }
  assert(false && "unknown corner name");
  return {};
}

const EndpointTiming* StaReport::endpoint_of(netlist::InstanceId id) const {
  for (const auto& ep : endpoints) {
    if (ep.endpoint == id) return &ep;
  }
  return nullptr;
}

StaReport run_sta(const place::Placement& pl, const ClockTree& clock, const StaOptions& opt,
                  const route::GridGraph* routed) {
  const auto& nl = pl.netlist();
  StaReport report;
  const auto order = nl.topo_order();
  assert(!order.empty() || nl.instance_count() == 0);

  std::vector<NodeState> state(nl.instance_count());
  const bool pba = opt.mode == AnalysisMode::PathBased;
  const double derate = pba ? 1.0 : opt.gba_derate;
  double cost = 0.0;

  // Net loads: total capacitance seen by each driver.
  std::vector<double> net_load(nl.net_count(), 0.0);
  for (std::size_t n = 0; n < nl.net_count(); ++n) {
    const auto& net = nl.net(static_cast<NetId>(n));
    const double wire_len = static_cast<double>(pl.net_hpwl(static_cast<NetId>(n)));
    double load = opt.wire.cap_per_nm_ff * wire_len;
    for (const auto& sink : net.sinks) load += nl.master_of(sink.instance).input_cap_ff;
    net_load[n] = load;
  }

  // Wire delay from a net's driver to one sink. GBA uses the full net HPWL
  // for every sink (bbox pessimism); PBA uses the true driver->sink length.
  auto wire_delay = [&](NetId n, InstanceId sink_inst) {
    const auto& net = nl.net(n);
    const geom::Point a = pl.pin_of(net.driver);
    const geom::Point b = pl.pin_of(sink_inst);
    const double len = pba ? static_cast<double>(geom::manhattan(a, b))
                           : static_cast<double>(pl.net_hpwl(n));
    const double rw = opt.wire.res_per_nm_kohm * len;
    const double cw = opt.wire.cap_per_nm_ff * len;
    const double sink_cap = nl.master_of(sink_inst).input_cap_ff;
    double d = rw * (0.5 * cw + sink_cap) * opt.corner.wire_factor;
    if (opt.with_si && routed != nullptr) {
      d *= 1.0 + opt.si_coupling_factor * si_utilization(*routed, a, b);
      cost += 4.0;  // SI analysis visits the congestion map per sink
    }
    cost += pba ? 2.0 : 1.0;  // PBA computes per-sink geometry
    return d;
  };

  // Early (hold) wire delay: both engines use the direct driver->sink
  // distance — a route can never be shorter than that, so it is the safe
  // (pessimistic) bound for min-delay analysis.
  auto wire_delay_early = [&](NetId n, InstanceId sink_inst) {
    const auto& net = nl.net(n);
    const geom::Point a = pl.pin_of(net.driver);
    const geom::Point b = pl.pin_of(sink_inst);
    const double len = static_cast<double>(geom::manhattan(a, b));
    const double rw = opt.wire.res_per_nm_kohm * len;
    const double cw = opt.wire.cap_per_nm_ff * len;
    const double sink_cap = nl.master_of(sink_inst).input_cap_ff;
    cost += 1.0;
    return rw * (0.5 * cw + sink_cap) * opt.corner.wire_factor;
  };

  // Forward propagation in topological order.
  for (const InstanceId u : order) {
    const auto& m = nl.master_of(u);
    NodeState& su = state[u] = NodeState{};
    cost += 1.0;

    if (m.function == CellFunction::Input) {
      su.arrival = opt.io_input_delay_ps;
    } else if (m.function == CellFunction::Dff) {
      su.arrival = clock.insertion_of(u) + m.clk_to_q_ps * opt.corner.gate_factor;
    } else if (m.function == CellFunction::Output) {
      // Terminal; handled at endpoint collection below.
    } else {
      // Combinational: worst input arrival + own gate delay.
      double worst_in = 0.0;
      NodeState best_src{};
      for (const NetId in : nl.instance(u).input_nets) {
        if (in == netlist::kNoNet) continue;
        const auto& net = nl.net(in);
        const double wd = wire_delay(in, u);
        const double cand = state[net.driver].arrival + wd * derate;
        if (cand >= worst_in) {
          worst_in = cand;
          best_src = state[net.driver];
          best_src.wire_delay += wd;
          best_src.max_fanout = std::max(best_src.max_fanout, net.sinks.size());
        }
      }
      const NetId out = nl.instance(u).output_net;
      const double load = out != netlist::kNoNet ? net_load[out] : 0.0;
      const double gd = m.delay_ps(load) * derate * opt.corner.gate_factor;
      su = best_src;
      su.arrival = worst_in + gd;
      su.stages += 1;
      su.gate_delay += gd;
    }
  }

  // Endpoint collection: flop D pins and primary outputs.
  auto arrival_at_pin = [&](InstanceId inst, NetId in) {
    const auto& net = nl.net(in);
    const double wd = wire_delay(in, inst);
    NodeState s = state[net.driver];
    s.arrival += wd * derate;
    s.wire_delay += wd;
    s.max_fanout = std::max(s.max_fanout, net.sinks.size());
    return s;
  };

  // Optional min-delay (early) propagation for hold analysis. Early arrivals
  // use the min over inputs and the early derate; clock insertion delays are
  // shared with the late pass (a single-clock, same-edge hold check).
  std::vector<double> early(nl.instance_count(), 0.0);
  if (opt.with_hold) {
    const double early_derate = pba ? 1.0 : opt.gba_early_derate;
    for (const InstanceId u : order) {
      const auto& m = nl.master_of(u);
      cost += 1.0;
      if (m.function == CellFunction::Input) {
        // Input timing is referenced to the propagated clock: the upstream
        // logic launching this input sees (at least) the tree's minimum
        // insertion delay. Without this, every PI path would report a bogus
        // hold race against the capture tree.
        early[u] = opt.io_input_delay_ps + clock.min_insertion_ps;
      } else if (m.function == CellFunction::Dff) {
        early[u] = clock.insertion_of(u) + m.clk_to_q_ps * opt.corner.gate_factor;
      } else if (m.function == CellFunction::Output) {
        // terminal
      } else {
        double best_in = std::numeric_limits<double>::infinity();
        for (const NetId in : nl.instance(u).input_nets) {
          if (in == netlist::kNoNet) continue;
          const double wd = wire_delay_early(in, u);
          best_in = std::min(best_in, early[nl.net(in).driver] + wd * early_derate);
        }
        if (!std::isfinite(best_in)) best_in = 0.0;
        const NetId out_net = nl.instance(u).output_net;
        const double load = out_net != netlist::kNoNet ? net_load[out_net] : 0.0;
        early[u] = best_in + m.delay_ps(load) * early_derate * opt.corner.gate_factor;
      }
    }
  }

  double wns = std::numeric_limits<double>::infinity();
  double whs = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < nl.instance_count(); ++i) {
    const auto id = static_cast<InstanceId>(i);
    const auto& m = nl.master_of(id);
    EndpointTiming ep;
    if (m.function == CellFunction::Dff) {
      const NetId in = nl.instance(id).input_nets[0];
      if (in == netlist::kNoNet) continue;
      const NodeState s = arrival_at_pin(id, in);
      ep.endpoint = id;
      ep.is_flop = true;
      ep.arrival_ps = s.arrival;
      ep.required_ps =
          opt.clock_period_ps + clock.insertion_of(id) - m.setup_ps * opt.corner.setup_factor;
      ep.path_stages = s.stages;
      ep.path_wire_delay_ps = s.wire_delay;
      ep.path_gate_delay_ps = s.gate_delay;
      ep.max_fanout_on_path = s.max_fanout;
      if (opt.with_hold) {
        const double early_derate = pba ? 1.0 : opt.gba_early_derate;
        const double wd = wire_delay_early(in, id);
        const double early_at_d = early[nl.net(in).driver] + wd * early_derate;
        ep.hold_slack_ps = early_at_d -
                           (clock.insertion_of(id) + m.hold_ps * opt.corner.setup_factor);
        whs = std::min(whs, ep.hold_slack_ps);
        if (ep.hold_slack_ps < 0.0) ++report.hold_violations;
      }
    } else if (m.function == CellFunction::Output) {
      const NetId in = nl.instance(id).input_nets[0];
      if (in == netlist::kNoNet) continue;
      const NodeState s = arrival_at_pin(id, in);
      ep.endpoint = id;
      ep.is_flop = false;
      ep.arrival_ps = s.arrival;
      ep.required_ps = opt.clock_period_ps - opt.io_output_margin_ps;
      ep.path_stages = s.stages;
      ep.path_wire_delay_ps = s.wire_delay;
      ep.path_gate_delay_ps = s.gate_delay;
      ep.max_fanout_on_path = s.max_fanout;
    } else {
      continue;
    }
    ep.slack_ps = ep.required_ps - ep.arrival_ps;
    if (ep.slack_ps < 0.0) {
      report.tns_ps += ep.slack_ps;
      ++report.failing_endpoints;
    }
    wns = std::min(wns, ep.slack_ps);
    report.endpoints.push_back(ep);
  }
  report.wns_ps = report.endpoints.empty() ? 0.0 : wns;
  report.whs_ps = std::isfinite(whs) ? whs : 0.0;
  report.analysis_cost = cost;
  return report;
}

}  // namespace maestro::timing
