#pragma once
// Static timing analysis engines.
//
// Two engines with a *structured* miscorrelation, per Section 3.2 of the
// paper ("two different tools return different results for the same input
// data ... and laws of physics"):
//
//  * AnalysisMode::GraphBased  — the P&R tool's fast internal timer: net
//    bounding-box wire delays applied to every sink, a global derate for slew
//    pessimism. Cheap, pessimistic in structured ways (long/high-fanout nets).
//  * AnalysisMode::PathBased   — the signoff timer: exact per-sink Elmore
//    wire delays, no derate. More accurate, more computation.
//  * with_si = true            — adds signal-integrity coupling penalties on
//    nets in congested regions (needs a routed GridGraph), the paper's
//    "SI-mode timing slacks" [27].
//
// The CorrelationModel in maestro::core learns the GBA->PBA+SI divergence and
// shifts the accuracy-cost curve (Fig. 8).

#include <algorithm>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "place/placement.hpp"
#include "route/grid_graph.hpp"
#include "timing/clock_tree.hpp"

namespace maestro::timing {

enum class AnalysisMode : std::uint8_t {
  GraphBased,  ///< fast, derated, bbox wire model (P&R-internal)
  PathBased,   ///< exact per-sink wire model, no derate (signoff)
};

/// A PVT corner. Gate and wire delays scale differently across corners (gate
/// delay tracks device strength; wire delay tracks metal R/C and is much
/// flatter), and the slow corner adds setup pessimism — which is what makes
/// "missing corner" prediction (paper Section 3.2, extension (2)) a learning
/// problem rather than a single scale factor.
struct Corner {
  std::string name = "tt";
  double gate_factor = 1.0;
  double wire_factor = 1.0;
  double setup_factor = 1.0;
};

/// The standard three-corner set: slow (ss), typical (tt), fast (ff).
/// Built once; the reference stays valid for the process lifetime.
const std::vector<Corner>& standard_corners();
/// O(1) lookup by name; asserts the name exists in standard_corners().
const Corner& corner_by_name(const std::string& name);

struct WireModel {
  double cap_per_nm_ff = 2.0e-4;   ///< 0.2 fF/um
  double res_per_nm_kohm = 1.0e-5; ///< 10 Ohm/um — thin local/intermediate metal
};

struct StaOptions {
  AnalysisMode mode = AnalysisMode::GraphBased;
  bool with_si = false;            ///< add coupling penalties from congestion
  Corner corner;                   ///< PVT corner (default: typical)
  double clock_period_ps = 1000.0;
  double gba_derate = 1.10;        ///< GBA multiplies late (setup) delays by this
  double gba_early_derate = 0.94;  ///< ...and early (hold) delays by this
  bool with_hold = false;          ///< also run min-delay (hold) analysis
  double si_coupling_factor = 0.35;
  WireModel wire;
  double io_input_delay_ps = 50.0; ///< arrival at primary inputs
  double io_output_margin_ps = 50.0;
};

/// Timing at one endpoint (a flop D pin or a primary output).
struct EndpointTiming {
  netlist::InstanceId endpoint = netlist::kNoInstance;
  bool is_flop = false;
  double arrival_ps = 0.0;
  double required_ps = 0.0;
  double slack_ps = 0.0;
  /// Worst-path statistics, features for ML correlation models.
  std::size_t path_stages = 0;
  double path_wire_delay_ps = 0.0;
  double path_gate_delay_ps = 0.0;
  std::size_t max_fanout_on_path = 0;
  /// Hold analysis (flop endpoints, when StaOptions::with_hold is set):
  /// min-arrival at D minus (capture insertion + hold requirement).
  double hold_slack_ps = 0.0;
};

struct StaReport {
  std::vector<EndpointTiming> endpoints;
  double wns_ps = 0.0;  ///< worst negative slack (min slack over endpoints)
  double tns_ps = 0.0;  ///< total negative slack (sum of negative slacks)
  double whs_ps = 0.0;  ///< worst hold slack (with_hold only)
  std::size_t failing_endpoints = 0;
  std::size_t hold_violations = 0;
  double analysis_cost = 0.0;  ///< abstract compute units consumed (Fig. 8 x-axis)

  const EndpointTiming* endpoint_of(netlist::InstanceId id) const;
};

/// Run STA over a placed (and optionally routed) design. `clock` supplies
/// per-flop insertion delays (pass a default-constructed tree for ideal
/// clocks); `routed` enables SI analysis when with_si is set.
StaReport run_sta(const place::Placement& pl, const ClockTree& clock, const StaOptions& opt,
                  const route::GridGraph* routed = nullptr);

/// Aggregate routing utilization at one GCell (used by SI analysis).
struct GCellStats {
  double utilization = 0.0;
};
GCellStats gcell_stats(const route::GridGraph& g, std::size_t c, std::size_t r);

/// Precomputed per-GCell utilization of one routed graph snapshot. SI
/// analysis takes the max over the GCell window a net's bounding box
/// crosses; building this map once per routed graph replaces the seed
/// engine's O(window) gcell_stats() re-scan per sink. Validity is tied to
/// GridGraph::revision(): any usage change invalidates the snapshot.
struct SiMap {
  std::size_t cols = 0;
  std::size_t rows = 0;
  std::vector<double> utilization;  ///< row-major [r * cols + c]
  const route::GridGraph* source = nullptr;
  std::uint64_t revision = 0;

  double at(std::size_t c, std::size_t r) const { return utilization[r * cols + c]; }
  /// Max utilization over the closed window [c0, c1] x [r0, r1]; identical
  /// value (max is order-independent) to the seed's nested gcell_stats scan.
  double max_in_window(std::size_t c0, std::size_t r0, std::size_t c1, std::size_t r1) const {
    double worst = 0.0;
    for (std::size_t c = c0; c <= c1; ++c) {
      for (std::size_t r = r0; r <= r1; ++r) worst = std::max(worst, at(c, r));
    }
    return worst;
  }
};

/// Snapshot the per-GCell utilization of a routed graph.
SiMap build_si_map(const route::GridGraph& g);

}  // namespace maestro::timing
