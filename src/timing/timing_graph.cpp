#include "timing/timing_graph.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "exec/executor.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace maestro::timing {

using netlist::CellFunction;
using netlist::InstanceId;
using netlist::NetId;

namespace {

constexpr std::size_t kNoEdge = std::numeric_limits<std::size_t>::max();
/// Minimum nodes per worker chunk in level-parallel propagation.
constexpr std::size_t kParallelGrain = 64;

bool corner_equal(const Corner& a, const Corner& b) {
  return a.gate_factor == b.gate_factor && a.wire_factor == b.wire_factor &&
         a.setup_factor == b.setup_factor && a.name == b.name;
}

bool options_equal(const StaOptions& a, const StaOptions& b) {
  return a.mode == b.mode && a.with_si == b.with_si && corner_equal(a.corner, b.corner) &&
         a.clock_period_ps == b.clock_period_ps && a.gba_derate == b.gba_derate &&
         a.gba_early_derate == b.gba_early_derate && a.with_hold == b.with_hold &&
         a.si_coupling_factor == b.si_coupling_factor &&
         a.wire.cap_per_nm_ff == b.wire.cap_per_nm_ff &&
         a.wire.res_per_nm_kohm == b.wire.res_per_nm_kohm &&
         a.io_input_delay_ps == b.io_input_delay_ps &&
         a.io_output_margin_ps == b.io_output_margin_ps;
}

struct KernelCounters {
  obs::Counter& full_props;
  obs::Counter& incr_props;
  obs::Counter& nodes_repropagated;
};

KernelCounters& counters() {
  static KernelCounters c{obs::Registry::global().counter("timing.full_props"),
                          obs::Registry::global().counter("timing.incr_props"),
                          obs::Registry::global().counter("timing.nodes_repropagated")};
  return c;
}

}  // namespace

TimingGraph::TimingGraph(const netlist::Netlist& nl) : nl_(&nl) { build(); }

TimingGraph::TimingGraph(const place::Placement& pl, const ClockTree& clock,
                         const netlist::DesignView* view)
    : nl_(&pl.netlist()), pl_(&pl), clock_(&clock), view_(view) { build(); }

TimingGraph::~TimingGraph() = default;

void TimingGraph::sync() { build(); }

// ---------------------------------------------------------------------------
// Structure
// ---------------------------------------------------------------------------

void TimingGraph::build() {
  obs::Span span("sta_build", "timing");
  const auto& nl = *nl_;
  n_ = nl.instance_count();
  nets_n_ = nl.net_count();

  // Levelize the combinational DAG: IOs and flops are level-0 sources, a
  // combinational node sits one past its deepest connected fanin. topo_order
  // guarantees drivers precede combinational sinks, so one pass suffices.
  // (An empty order on a cyclic netlist mirrors the seed engine: nothing
  // propagates, endpoints are still collected from zeroed state.)
  const auto topo = nl.topo_order();
  level_of_.assign(n_, 0);
  std::uint32_t max_level = 0;
  for (const InstanceId u : topo) {
    const CellFunction f = nl.master_of(u).function;
    if (f == CellFunction::Input || f == CellFunction::Dff || f == CellFunction::Output) {
      continue;  // level 0
    }
    std::uint32_t lvl = 0;
    for (const NetId in : nl.instance(u).input_nets) {
      if (in == netlist::kNoNet) continue;
      lvl = std::max(lvl, level_of_[nl.net(in).driver] + 1);
    }
    level_of_[u] = lvl;
    max_level = std::max(max_level, lvl);
  }
  level_range_.assign(static_cast<std::size_t>(max_level) + 2, 0);
  for (const InstanceId u : topo) ++level_range_[level_of_[u] + 1];
  for (std::size_t l = 1; l < level_range_.size(); ++l) level_range_[l] += level_range_[l - 1];
  order_.assign(topo.size(), 0);
  {
    std::vector<std::size_t> cursor(level_range_.begin(), level_range_.end() - 1);
    for (const InstanceId u : topo) order_[cursor[level_of_[u]]++] = u;
  }

  // Fanin CSR over connected input pins, preserving pin order (the seed's
  // worst-input tie break iterates pins in declaration order).
  fanin_begin_.assign(n_ + 1, 0);
  for (std::size_t u = 0; u < n_; ++u) {
    for (const NetId in : nl.instance(static_cast<InstanceId>(u)).input_nets) {
      if (in != netlist::kNoNet) ++fanin_begin_[u + 1];
    }
  }
  for (std::size_t u = 0; u < n_; ++u) fanin_begin_[u + 1] += fanin_begin_[u];
  const std::size_t edges = fanin_begin_[n_];
  fanin_net_.resize(edges);
  fanin_driver_.resize(edges);
  fanin_sink_.resize(edges);
  {
    std::size_t e = 0;
    for (std::size_t u = 0; u < n_; ++u) {
      for (const NetId in : nl.instance(static_cast<InstanceId>(u)).input_nets) {
        if (in == netlist::kNoNet) continue;
        fanin_net_[e] = in;
        fanin_driver_[e] = nl.net(in).driver;
        fanin_sink_[e] = static_cast<InstanceId>(u);
        ++e;
      }
    }
  }

  // Fanout CSR: combinational sinks of each instance's output net. Only
  // these carry node-state dependencies forward (flop/PO endpoints are
  // re-timed through the endpoint cache instead).
  out_net_.assign(n_, netlist::kNoNet);
  fanout_begin_.assign(n_ + 1, 0);
  for (std::size_t u = 0; u < n_; ++u) {
    const NetId out = nl.instance(static_cast<InstanceId>(u)).output_net;
    out_net_[u] = out;
    if (out == netlist::kNoNet) continue;
    for (const auto& s : nl.net(out).sinks) {
      const CellFunction f = nl.master_of(s.instance).function;
      if (f != CellFunction::Dff && f != CellFunction::Output && f != CellFunction::Input) {
        ++fanout_begin_[u + 1];
      }
    }
  }
  for (std::size_t u = 0; u < n_; ++u) fanout_begin_[u + 1] += fanout_begin_[u];
  fanout_inst_.resize(fanout_begin_[n_]);
  {
    std::vector<std::size_t> cursor(fanout_begin_.begin(), fanout_begin_.end() - 1);
    for (std::size_t u = 0; u < n_; ++u) {
      const NetId out = out_net_[u];
      if (out == netlist::kNoNet) continue;
      for (const auto& s : nl.net(out).sinks) {
        const CellFunction f = nl.master_of(s.instance).function;
        if (f != CellFunction::Dff && f != CellFunction::Output && f != CellFunction::Input) {
          fanout_inst_[cursor[u]++] = s.instance;
        }
      }
    }
  }

  // Net -> fanin-edge CSR, so a net refresh can re-derive the geometry of
  // exactly its edges.
  net_edge_begin_.assign(nets_n_ + 1, 0);
  for (std::size_t e = 0; e < edges; ++e) ++net_edge_begin_[fanin_net_[e] + 1];
  for (std::size_t ni = 0; ni < nets_n_; ++ni) net_edge_begin_[ni + 1] += net_edge_begin_[ni];
  net_edge_.resize(edges);
  {
    std::vector<std::size_t> cursor(net_edge_begin_.begin(), net_edge_begin_.end() - 1);
    for (std::size_t e = 0; e < edges; ++e) net_edge_[cursor[fanin_net_[e]]++] = e;
  }

  // Derived per-instance / per-net caches.
  func_.resize(n_);
  input_cap_.resize(n_);
  intrinsic_.resize(n_);
  drive_res_.resize(n_);
  setup_.resize(n_);
  hold_req_.resize(n_);
  clk_to_q_.resize(n_);
  insertion_.resize(n_);
  pin_.resize(n_);
  for (std::size_t u = 0; u < n_; ++u) refresh_instance(static_cast<InstanceId>(u));

  net_driver_.resize(nets_n_);
  net_sink_cap_.resize(nets_n_);
  net_hpwl_.resize(nets_n_);
  net_fanout_.resize(nets_n_);
  net_load_.resize(nets_n_);
  edge_manh_.resize(edges);
  for (std::size_t ni = 0; ni < nets_n_; ++ni) refresh_net(static_cast<NetId>(ni));

  // Endpoint cache: flop D pins and primary outputs with a connected input,
  // in ascending instance id (the seed's endpoint/tns iteration order).
  // Preserve surviving rows across a sync() so a following reanalyze() only
  // re-times endpoints inside the ECO cone.
  std::vector<InstanceId> old_ids = std::move(ep_ids_);
  std::vector<NetId> old_nets = std::move(ep_net_);
  std::vector<EndpointTiming> old_rows = std::move(ep_cache_);
  ep_ids_.clear();
  ep_net_.clear();
  for (std::size_t i = 0; i < n_; ++i) {
    const auto id = static_cast<InstanceId>(i);
    const CellFunction f = func_[id];
    if (f != CellFunction::Dff && f != CellFunction::Output) continue;
    const NetId in = nl.instance(id).input_nets[0];
    if (in == netlist::kNoNet) continue;
    ep_ids_.push_back(id);
    ep_net_.push_back(in);
  }
  ep_cache_.assign(ep_ids_.size() * stride_, EndpointTiming{});
  if (!old_rows.empty()) {
    // Both id lists ascend: merge-copy rows whose endpoint survived with the
    // same input net (a rewired endpoint is re-timed via its net mark).
    std::size_t oj = 0;
    for (std::size_t j = 0; j < ep_ids_.size(); ++j) {
      while (oj < old_ids.size() && old_ids[oj] < ep_ids_[j]) ++oj;
      if (oj < old_ids.size() && old_ids[oj] == ep_ids_[j] && old_nets[oj] == ep_net_[j]) {
        for (std::size_t k = 0; k < stride_; ++k) {
          ep_cache_[j * stride_ + k] = old_rows[oj * stride_ + k];
        }
      }
    }
  }

  // Wireload endpoint edges (endpoint id order; connected inputs only).
  wl_ep_inst_.clear();
  wl_ep_net_.clear();
  for (std::size_t i = 0; i < n_; ++i) {
    const auto id = static_cast<InstanceId>(i);
    if (func_[id] != CellFunction::Dff && func_[id] != CellFunction::Output) continue;
    for (const NetId in : nl.instance(id).input_nets) {
      if (in == netlist::kNoNet) continue;
      wl_ep_inst_.push_back(id);
      wl_ep_net_.push_back(in);
    }
  }

  // Grow state and scratch to the (possibly larger) instance count,
  // preserving surviving node state — ids are stable and only appended.
  arr_.resize(n_ * stride_, 0.0);
  wire_acc_.resize(n_ * stride_, 0.0);
  gate_acc_.resize(n_ * stride_, 0.0);
  early_.resize(n_ * stride_, 0.0);
  stages_.resize(n_ * stride_, 0);
  fanout_acc_.resize(n_ * stride_, 0);
  wl_arrival_.resize(n_, 0.0);
  node_mark_.resize(n_, 0);
  node_changed_.resize(n_, 0);
  net_mark_.resize(nets_n_, 0);
  frontier_.resize(level_range_.size());
}

void TimingGraph::refresh_instance(InstanceId id) {
  const auto& m = nl_->master_of(id);
  func_[id] = m.function;
  input_cap_[id] = m.input_cap_ff;
  intrinsic_[id] = m.intrinsic_delay_ps;
  drive_res_[id] = m.drive_res_kohm;
  setup_[id] = m.setup_ps;
  hold_req_[id] = m.hold_ps;
  clk_to_q_[id] = m.clk_to_q_ps;
  insertion_[id] = clock_ != nullptr ? clock_->insertion_of(id) : 0.0;
  if (pl_ != nullptr) {
    // A shared in_sync DesignView holds the identical pin position without
    // the per-pin master/library indirections.
    pin_[id] = (view_ != nullptr && view_->in_sync(nl_->revision(), pl_->revision()))
                   ? view_->pin(id)
                   : pl_->pin_of(id);
  }
}

void TimingGraph::refresh_net(NetId id) {
  const auto& net = nl_->net(id);
  net_driver_[id] = net.driver;
  net_fanout_[id] = net.sinks.size();
  double sc = 0.0;  // seed accumulation order: sinks in declaration order
  for (const auto& s : net.sinks) sc += input_cap_[s.instance];
  net_sink_cap_[id] = sc;
  if (pl_ != nullptr) {
    net_hpwl_[id] = static_cast<double>(
        view_ != nullptr && view_->in_sync(nl_->revision(), pl_->revision())
            ? view_->net_hpwl(id)
            : pl_->net_hpwl(id));
    for (std::size_t i = net_edge_begin_[id]; i < net_edge_begin_[id + 1]; ++i) {
      const std::size_t e = net_edge_[i];
      edge_manh_[e] =
          static_cast<double>(geom::manhattan(pin_[fanin_driver_[e]], pin_[fanin_sink_[e]]));
    }
  }
}

void TimingGraph::refresh_net_load(NetId id) {
  // Seed association: start from the bbox wire cap, then add sink caps in
  // declaration order — caching a pre-added sink sum would change rounding.
  const auto& net = nl_->net(id);
  double load = cached_opt_.wire.cap_per_nm_ff * net_hpwl_[id];
  for (const auto& s : net.sinks) load += input_cap_[s.instance];
  net_load_[id] = load;
}

void TimingGraph::compute_net_loads() {
  for (std::size_t ni = 0; ni < nets_n_; ++ni) refresh_net_load(static_cast<NetId>(ni));
}

void TimingGraph::prepare_si(const StaOptions& opt, const route::GridGraph* routed) {
  si_active_ = opt.with_si && routed != nullptr;
  if (!si_active_) return;
  if (si_.source != routed || si_.revision != routed->revision() || si_.cols != routed->cols() ||
      si_.rows != routed->rows()) {
    si_ = build_si_map(*routed);
  }
}

double TimingGraph::si_of_edge(std::size_t e) const {
  const auto& idx = cached_routed_->indexer();
  const auto [c0, r0] = idx.cell_of(pin_[fanin_driver_[e]]);
  const auto [c1, r1] = idx.cell_of(pin_[fanin_sink_[e]]);
  return si_.max_in_window(std::min(c0, c1), std::min(r0, r1), std::max(c0, c1),
                           std::max(r0, r1));
}

// ---------------------------------------------------------------------------
// Propagation
// ---------------------------------------------------------------------------

void TimingGraph::ensure_state(std::size_t corners, bool hold) {
  stride_ = corners;
  cached_hold_ = hold;
  arr_.assign(n_ * stride_, 0.0);
  wire_acc_.assign(n_ * stride_, 0.0);
  gate_acc_.assign(n_ * stride_, 0.0);
  early_.assign(n_ * stride_, 0.0);
  stages_.assign(n_ * stride_, 0);
  fanout_acc_.assign(n_ * stride_, 0);
  ep_cache_.assign(ep_ids_.size() * stride_, EndpointTiming{});
}

bool TimingGraph::propagate_node(std::size_t u, double& cost) {
  const std::size_t K = stride_;
  assert(K <= kMaxCorners);
  const bool pba = cached_opt_.mode == AnalysisMode::PathBased;
  const double derate = pba ? 1.0 : cached_opt_.gba_derate;
  const double early_derate = pba ? 1.0 : cached_opt_.gba_early_derate;
  const bool hold = cached_hold_;
  const CellFunction f = func_[u];

  double new_arr[kMaxCorners];
  double new_wire[kMaxCorners];
  double new_gate[kMaxCorners];
  double new_early[kMaxCorners];
  std::size_t new_stages[kMaxCorners];
  std::size_t new_fan[kMaxCorners];

  cost += 1.0;             // late-pass node visit (seed parity)
  if (hold) cost += 1.0;   // early-pass node visit

  if (f == CellFunction::Input) {
    for (std::size_t k = 0; k < K; ++k) {
      new_arr[k] = cached_opt_.io_input_delay_ps;
      new_wire[k] = new_gate[k] = 0.0;
      new_stages[k] = new_fan[k] = 0;
      new_early[k] = hold ? cached_opt_.io_input_delay_ps + clock_->min_insertion_ps : 0.0;
    }
  } else if (f == CellFunction::Dff) {
    for (std::size_t k = 0; k < K; ++k) {
      const double v = insertion_[u] + clk_to_q_[u] * corner_gf_[k];
      new_arr[k] = v;
      new_wire[k] = new_gate[k] = 0.0;
      new_stages[k] = new_fan[k] = 0;
      new_early[k] = hold ? v : 0.0;
    }
  } else if (f == CellFunction::Output) {
    for (std::size_t k = 0; k < K; ++k) {
      new_arr[k] = new_wire[k] = new_gate[k] = new_early[k] = 0.0;
      new_stages[k] = new_fan[k] = 0;
    }
  } else {
    double worst_in[kMaxCorners];
    double sel_wd[kMaxCorners];
    double best_early[kMaxCorners];
    std::size_t sel[kMaxCorners];
    for (std::size_t k = 0; k < K; ++k) {
      worst_in[k] = 0.0;
      sel[k] = kNoEdge;
      sel_wd[k] = 0.0;
      best_early[k] = std::numeric_limits<double>::infinity();
    }
    const double res = cached_opt_.wire.res_per_nm_kohm;
    const double cap = cached_opt_.wire.cap_per_nm_ff;
    const double sink_cap = input_cap_[u];
    for (std::size_t e = fanin_begin_[u]; e < fanin_begin_[u + 1]; ++e) {
      const NetId in = fanin_net_[e];
      const InstanceId drv = fanin_driver_[e];
      // Late (setup) wire delay: GBA bbox length for every sink, PBA the
      // true driver->sink length. Same association as the seed lambda.
      const double len = pba ? edge_manh_[e] : net_hpwl_[in];
      const double rw = res * len;
      const double cw = cap * len;
      const double base = rw * (0.5 * cw + sink_cap);
      double simult = 1.0;
      if (si_active_) {
        simult = 1.0 + cached_opt_.si_coupling_factor * si_of_edge(e);
        cost += 4.0;  // SI analysis visits the congestion map per sink
      }
      cost += pba ? 2.0 : 1.0;  // PBA computes per-sink geometry
      for (std::size_t k = 0; k < K; ++k) {
        double wd = base * corner_wf_[k];
        if (si_active_) wd *= simult;
        const double cand = arr_[drv * K + k] + wd * derate;
        if (cand >= worst_in[k]) {  // >= : the seed's last-fanin tie break
          worst_in[k] = cand;
          sel[k] = e;
          sel_wd[k] = wd;
        }
      }
      if (hold) {
        // Early wire delay always uses the direct driver->sink distance.
        const double rw_e = res * edge_manh_[e];
        const double cw_e = cap * edge_manh_[e];
        const double base_e = rw_e * (0.5 * cw_e + sink_cap);
        cost += 1.0;
        for (std::size_t k = 0; k < K; ++k) {
          const double wd_e = base_e * corner_wf_[k];
          best_early[k] = std::min(best_early[k], early_[drv * K + k] + wd_e * early_derate);
        }
      }
    }
    const NetId out = out_net_[u];
    const double load = out != netlist::kNoNet ? net_load_[out] : 0.0;
    const double raw_delay = intrinsic_[u] + drive_res_[u] * load;
    for (std::size_t k = 0; k < K; ++k) {
      const double gd = raw_delay * derate * corner_gf_[k];
      if (sel[k] != kNoEdge) {
        const std::size_t drv = fanin_driver_[sel[k]];
        new_wire[k] = wire_acc_[drv * K + k] + sel_wd[k];
        new_gate[k] = gate_acc_[drv * K + k] + gd;
        new_stages[k] = stages_[drv * K + k] + 1;
        new_fan[k] = std::max(fanout_acc_[drv * K + k], net_fanout_[fanin_net_[sel[k]]]);
      } else {
        new_wire[k] = 0.0;
        new_gate[k] = gd;
        new_stages[k] = 1;
        new_fan[k] = 0;
      }
      new_arr[k] = worst_in[k] + gd;
      if (hold) {
        const double b = std::isfinite(best_early[k]) ? best_early[k] : 0.0;
        new_early[k] = b + raw_delay * early_derate * corner_gf_[k];
      } else {
        new_early[k] = 0.0;
      }
    }
  }

  bool changed = false;
  for (std::size_t k = 0; k < K; ++k) {
    const std::size_t i = u * K + k;
    changed = changed || arr_[i] != new_arr[k] || wire_acc_[i] != new_wire[k] ||
              gate_acc_[i] != new_gate[k] || early_[i] != new_early[k] ||
              stages_[i] != new_stages[k] || fanout_acc_[i] != new_fan[k];
    arr_[i] = new_arr[k];
    wire_acc_[i] = new_wire[k];
    gate_acc_[i] = new_gate[k];
    early_[i] = new_early[k];
    stages_[i] = new_stages[k];
    fanout_acc_[i] = new_fan[k];
  }
  return changed;
}

void TimingGraph::propagate_level_range(std::size_t begin, std::size_t end, double& cost) {
  for (std::size_t i = begin; i < end; ++i) propagate_node(order_[i], cost);
}

void TimingGraph::propagate_full(double& cost) {
  const bool parallel = pool_ != nullptr && n_ >= parallel_min_nodes_;
  for (std::size_t l = 0; l + 1 < level_range_.size(); ++l) {
    const std::size_t b = level_range_[l];
    const std::size_t e = level_range_[l + 1];
    if (parallel && e - b >= 2 * kParallelGrain) {
      // Nodes within a level are independent (every fanin sits at a lower
      // level), so chunks write disjoint state. Chunk cost subtotals are
      // sums of small integers — exact — so adding them in chunk order
      // reproduces the serial total bitwise.
      const std::size_t chunks =
          std::min((e - b + kParallelGrain - 1) / kParallelGrain, pool_->threads() * 4);
      const std::size_t per = (e - b + chunks - 1) / chunks;
      const auto costs = pool_->map("sta_level", 0, chunks, [&](std::size_t i, exec::RunContext&) {
        double c = 0.0;
        const std::size_t cb = b + i * per;
        const std::size_t ce = std::min(cb + per, e);
        if (cb < ce) propagate_level_range(cb, ce, c);
        return c;
      });
      for (const double c : costs) cost += c;
    } else {
      propagate_level_range(b, e, cost);
    }
  }
}

void TimingGraph::compute_endpoint(std::size_t j, double& cost) {
  const std::size_t K = stride_;
  const InstanceId id = ep_ids_[j];
  const NetId in = ep_net_[j];
  const std::size_t e = fanin_begin_[id];  // pin 0 is the D/input pin
  assert(e < fanin_begin_[id + 1] && fanin_net_[e] == in);
  const InstanceId drv = fanin_driver_[e];
  const bool pba = cached_opt_.mode == AnalysisMode::PathBased;
  const double derate = pba ? 1.0 : cached_opt_.gba_derate;
  const bool flop = func_[id] == CellFunction::Dff;

  const double res = cached_opt_.wire.res_per_nm_kohm;
  const double cap = cached_opt_.wire.cap_per_nm_ff;
  const double len = pba ? edge_manh_[e] : net_hpwl_[in];
  const double rw = res * len;
  const double cw = cap * len;
  const double base = rw * (0.5 * cw + input_cap_[id]);
  double simult = 1.0;
  if (si_active_) {
    simult = 1.0 + cached_opt_.si_coupling_factor * si_of_edge(e);
    cost += 4.0;
  }
  cost += pba ? 2.0 : 1.0;

  double base_e = 0.0;
  const bool hold_ep = cached_hold_ && flop;
  if (hold_ep) {
    const double rw_e = res * edge_manh_[e];
    const double cw_e = cap * edge_manh_[e];
    base_e = rw_e * (0.5 * cw_e + input_cap_[id]);
    cost += 1.0;
  }
  const double early_derate = pba ? 1.0 : cached_opt_.gba_early_derate;

  for (std::size_t k = 0; k < K; ++k) {
    double wd = base * corner_wf_[k];
    if (si_active_) wd *= simult;
    EndpointTiming& ep = ep_cache_[j * K + k];
    ep.endpoint = id;
    ep.is_flop = flop;
    ep.arrival_ps = arr_[drv * K + k] + wd * derate;
    ep.path_stages = stages_[drv * K + k];
    ep.path_wire_delay_ps = wire_acc_[drv * K + k] + wd;
    ep.path_gate_delay_ps = gate_acc_[drv * K + k];
    ep.max_fanout_on_path = std::max(fanout_acc_[drv * K + k], net_fanout_[in]);
    ep.required_ps = flop ? cached_opt_.clock_period_ps + insertion_[id] -
                                setup_[id] * corner_sf_[k]
                          : cached_opt_.clock_period_ps - cached_opt_.io_output_margin_ps;
    ep.slack_ps = ep.required_ps - ep.arrival_ps;
    if (hold_ep) {
      const double wd_e = base_e * corner_wf_[k];
      const double early_at_d = early_[drv * K + k] + wd_e * early_derate;
      ep.hold_slack_ps = early_at_d - (insertion_[id] + hold_req_[id] * corner_sf_[k]);
    } else {
      ep.hold_slack_ps = 0.0;
    }
  }
}

StaReport TimingGraph::assemble_report(std::size_t k) const {
  StaReport r;
  r.endpoints.reserve(ep_ids_.size());
  double wns = std::numeric_limits<double>::infinity();
  double whs = std::numeric_limits<double>::infinity();
  for (std::size_t j = 0; j < ep_ids_.size(); ++j) {
    const EndpointTiming& ep = ep_cache_[j * stride_ + k];
    if (cached_hold_ && ep.is_flop) {
      whs = std::min(whs, ep.hold_slack_ps);
      if (ep.hold_slack_ps < 0.0) ++r.hold_violations;
    }
    if (ep.slack_ps < 0.0) {
      r.tns_ps += ep.slack_ps;  // endpoint-id order, as the seed sums it
      ++r.failing_endpoints;
    }
    wns = std::min(wns, ep.slack_ps);
    r.endpoints.push_back(ep);
  }
  r.wns_ps = r.endpoints.empty() ? 0.0 : wns;
  r.whs_ps = std::isfinite(whs) ? whs : 0.0;
  return r;
}

bool TimingGraph::options_match(const StaOptions& opt, const route::GridGraph* routed) const {
  if (!options_equal(opt, cached_opt_)) return false;
  const bool want_si = opt.with_si && routed != nullptr;
  if (want_si != si_active_) return false;
  if (want_si &&
      (routed != cached_routed_ || routed->revision() != cached_routed_rev_)) {
    return false;
  }
  return true;
}

StaReport TimingGraph::analyze(const StaOptions& opt, const route::GridGraph* routed) {
  auto reports = analyze_corners(opt, {opt.corner}, routed);
  return std::move(reports.front());
}

std::vector<StaReport> TimingGraph::analyze_corners(const StaOptions& base,
                                                    const std::vector<Corner>& corners,
                                                    const route::GridGraph* routed) {
  assert(pl_ != nullptr && clock_ != nullptr && "analyze requires placed mode");
  assert(!corners.empty() && corners.size() <= kMaxCorners);
  obs::Span span("sta_propagate", "timing");
  span.arg("nodes", static_cast<double>(n_)).arg("corners", static_cast<double>(corners.size()));

  cached_opt_ = base;
  cached_opt_.corner = corners.front();
  cached_corners_ = corners;
  cached_routed_ = routed;
  cached_routed_rev_ = routed != nullptr ? routed->revision() : 0;
  prepare_si(base, routed);
  compute_net_loads();
  ensure_state(corners.size(), base.with_hold);
  corner_gf_.resize(corners.size());
  corner_wf_.resize(corners.size());
  corner_sf_.resize(corners.size());
  for (std::size_t k = 0; k < corners.size(); ++k) {
    corner_gf_[k] = corners[k].gate_factor;
    corner_wf_[k] = corners[k].wire_factor;
    corner_sf_[k] = corners[k].setup_factor;
  }

  double cost = 0.0;
  propagate_full(cost);
  for (std::size_t j = 0; j < ep_ids_.size(); ++j) compute_endpoint(j, cost);
  cached_cost_ = cost;
  cache_valid_ = true;
  counters().full_props.add();

  // Each report carries the modeled cost of a *standalone* run at its
  // corner — the per-node/per-edge charges are corner-independent, so one
  // count serves every corner. Batching saves wall clock, not modeled cost
  // (Fig. 8's x-axis stays comparable).
  std::vector<StaReport> reports;
  reports.reserve(corners.size());
  for (std::size_t k = 0; k < corners.size(); ++k) {
    StaReport r = assemble_report(k);
    r.analysis_cost = cost;
    reports.push_back(std::move(r));
  }
  return reports;
}

StaReport TimingGraph::reanalyze(const std::vector<InstanceId>& dirty, const StaOptions& opt,
                                 const route::GridGraph* routed) {
  if (!cache_valid_ || stride_ != 1 || !options_match(opt, routed)) {
    // No compatible cached propagation: refresh the dirty closure (analyze()
    // recomputes loads from the cached per-instance/per-net arrays, so those
    // must be brought current first), then run a full analysis.
    for (const InstanceId id : dirty) refresh_instance(id);
    for (const InstanceId id : dirty) {
      if (out_net_[id] != netlist::kNoNet) refresh_net(out_net_[id]);
      for (const NetId in : nl_->instance(id).input_nets) {
        if (in != netlist::kNoNet) refresh_net(in);
      }
    }
    return analyze(opt, routed);
  }
  obs::Span span("sta_incremental", "timing");
  if (++epoch_ == 0) {
    std::fill(node_mark_.begin(), node_mark_.end(), 0);
    std::fill(node_changed_.begin(), node_changed_.end(), 0);
    std::fill(net_mark_.begin(), net_mark_.end(), 0);
    epoch_ = 1;
  }
  double cost = 0.0;

  // Refresh the dirty closure: instance parameters first (net refreshes read
  // them), then every incident net's geometry and load.
  for (const InstanceId id : dirty) refresh_instance(id);
  auto enqueue = [&](InstanceId v) {
    if (node_mark_[v] == epoch_) return;
    node_mark_[v] = epoch_;
    frontier_[level_of_[v]].push_back(v);
  };
  auto touch_net = [&](NetId in) {
    if (in == netlist::kNoNet || net_mark_[in] == epoch_) return;
    net_mark_[in] = epoch_;
    refresh_net(in);
    refresh_net_load(in);
    // The driver's load and every sink's wire delay may have changed.
    enqueue(net_driver_[in]);
    for (const auto& s : nl_->net(in).sinks) {
      const CellFunction f = func_[s.instance];
      if (f != CellFunction::Dff && f != CellFunction::Output && f != CellFunction::Input) {
        enqueue(s.instance);
      }
    }
  };
  for (const InstanceId id : dirty) {
    enqueue(id);
    touch_net(out_net_[id]);
    for (const NetId in : nl_->instance(id).input_nets) touch_net(in);
  }

  // Re-propagate the forward cone level by level with bitwise early cut-off;
  // fanout pushes only ever target higher levels.
  last_repropagated_ = 0;
  for (std::size_t l = 0; l + 1 < level_range_.size(); ++l) {
    auto& bucket = frontier_[l];
    for (const InstanceId v : bucket) {
      ++last_repropagated_;
      if (propagate_node(v, cost)) {
        node_changed_[v] = epoch_;
        for (std::size_t i = fanout_begin_[v]; i < fanout_begin_[v + 1]; ++i) {
          enqueue(fanout_inst_[i]);
        }
      }
    }
    bucket.clear();
  }

  // Re-time endpoints whose input net was refreshed or whose driver's state
  // changed; everything else keeps its cached row.
  for (std::size_t j = 0; j < ep_ids_.size(); ++j) {
    const NetId in = ep_net_[j];
    if (net_mark_[in] == epoch_ || node_changed_[net_driver_[in]] == epoch_) {
      compute_endpoint(j, cost);
    }
  }

  counters().incr_props.add();
  counters().nodes_repropagated.add(last_repropagated_);
  span.arg("repropagated", static_cast<double>(last_repropagated_));

  StaReport r = assemble_report(0);
  r.analysis_cost = cost;  // only the work actually redone
  return r;
}

// ---------------------------------------------------------------------------
// Wireload mode
// ---------------------------------------------------------------------------

double TimingGraph::wireload_node(std::size_t u, double factor, double margin) const {
  const CellFunction f = func_[u];
  if (f == CellFunction::Input || f == CellFunction::Output) return 0.0;
  if (f == CellFunction::Dff) return clk_to_q_[u] + margin;
  double worst = 0.0;
  for (std::size_t e = fanin_begin_[u]; e < fanin_begin_[u + 1]; ++e) {
    worst = std::max(worst, wl_arrival_[fanin_driver_[e]]);
  }
  const NetId out = out_net_[u];
  const double load = out != netlist::kNoNet ? net_sink_cap_[out] : 0.0;
  return worst + (intrinsic_[u] + drive_res_[u] * (load * factor));
}

double TimingGraph::wireload_critical() const {
  double cp = 0.0;
  for (std::size_t j = 0; j < wl_ep_inst_.size(); ++j) {
    const InstanceId id = wl_ep_inst_[j];
    const double setup = func_[id] == CellFunction::Dff ? setup_[id] : 0.0;
    cp = std::max(cp, wl_arrival_[net_driver_[wl_ep_net_[j]]] + setup);
  }
  return cp;
}

double TimingGraph::wireload_propagate(double wireload_factor, double clk_to_q_margin_ps) {
  std::fill(wl_arrival_.begin(), wl_arrival_.end(), 0.0);
  for (const InstanceId u : order_) {
    wl_arrival_[u] = wireload_node(u, wireload_factor, clk_to_q_margin_ps);
  }
  wl_critical_ = wireload_critical();
  wl_factor_ = wireload_factor;
  wl_margin_ = clk_to_q_margin_ps;
  wl_valid_ = true;
  counters().full_props.add();
  return wl_critical_;
}

double TimingGraph::wireload_repropagate(const std::vector<InstanceId>& dirty,
                                         double wireload_factor, double clk_to_q_margin_ps) {
  if (!wl_valid_ || wireload_factor != wl_factor_ || clk_to_q_margin_ps != wl_margin_) {
    return wireload_propagate(wireload_factor, clk_to_q_margin_ps);
  }
  if (++epoch_ == 0) {
    std::fill(node_mark_.begin(), node_mark_.end(), 0);
    std::fill(node_changed_.begin(), node_changed_.end(), 0);
    std::fill(net_mark_.begin(), net_mark_.end(), 0);
    epoch_ = 1;
  }
  auto enqueue = [&](InstanceId v) {
    if (node_mark_[v] == epoch_) return;
    node_mark_[v] = epoch_;
    frontier_[level_of_[v]].push_back(v);
  };
  // A resize changes the dirty instance's own delay parameters and, through
  // its input capacitance, the load of every net it sinks — so those nets'
  // drivers re-evaluate too. (No wires in this mode: fanout loads of the
  // dirty instance's output net are unaffected.)
  for (const InstanceId id : dirty) refresh_instance(id);
  for (const InstanceId id : dirty) {
    enqueue(id);
    for (const NetId in : nl_->instance(id).input_nets) {
      if (in == netlist::kNoNet || net_mark_[in] == epoch_) continue;
      net_mark_[in] = epoch_;
      refresh_net(in);
      enqueue(net_driver_[in]);
    }
  }
  last_repropagated_ = 0;
  for (std::size_t l = 0; l + 1 < level_range_.size(); ++l) {
    auto& bucket = frontier_[l];
    for (const InstanceId v : bucket) {
      ++last_repropagated_;
      const double a = wireload_node(v, wl_factor_, wl_margin_);
      if (a != wl_arrival_[v]) {
        wl_arrival_[v] = a;
        for (std::size_t i = fanout_begin_[v]; i < fanout_begin_[v + 1]; ++i) {
          enqueue(fanout_inst_[i]);
        }
      }
    }
    bucket.clear();
  }
  wl_critical_ = wireload_critical();
  counters().incr_props.add();
  counters().nodes_repropagated.add(last_repropagated_);
  return wl_critical_;
}

// ---------------------------------------------------------------------------
// Level parallelism
// ---------------------------------------------------------------------------

void TimingGraph::enable_parallel(std::size_t min_nodes) {
  parallel_min_nodes_ = min_nodes;
  if (pool_ == nullptr) {
    // A dedicated pool: level propagation blocks on chunk futures, and doing
    // that from inside a shared campaign executor's worker can deadlock the
    // pool (every worker waiting on chunks queued behind other STA runs).
    pool_ = std::make_unique<exec::RunExecutor>();
  }
}

void TimingGraph::disable_parallel() { pool_.reset(); }

}  // namespace maestro::timing
