#pragma once
// timing::TimingGraph — the reusable evaluation kernel under every STA query.
//
// Every orchestrator in this repo (MAB scheduling, GWTW/flow-tree search, the
// Fig. 8 accuracy-cost sweeps, hold ECO, gate sizing) bottoms out in
// thousands of timing queries, and the seed engine rebuilt topological order,
// net loads and per-node state on every call. TimingGraph is constructed
// once per netlist revision and amortizes that work across queries:
//
//  * Levelized structure-of-arrays storage — a flat level-major node order
//    with per-level ranges, CSR fanin/fanout adjacency, and flat per-node /
//    per-net / per-edge arrays (master delay parameters, pin positions, net
//    HPWL, per-sink Manhattan lengths). No per-call allocation or
//    topo_order() recomputation.
//  * Multi-corner batched propagation — analyze_corners() sweeps the graph
//    once with corner-factor arrays in the inner loop, sharing all geometry,
//    load and SI work across ss/tt/ff (and any custom corner set).
//  * Incremental re-propagation — reanalyze() takes a dirty set (resized or
//    moved instances; ECO-inserted cells after sync()) and re-propagates only
//    the affected forward cone, with bitwise early cut-off. Results are
//    bit-identical to a full propagation.
//  * Optional level-parallel propagation — enable_parallel() fans each wide
//    level out over a dedicated exec::RunExecutor; results stay bitwise
//    identical to the serial sweep (disjoint writes, exact cost reduction).
//
// run_sta() is a thin wrapper (construct + analyze) preserving the seed
// engine's signature and bit-identical reports; long-lived callers hold a
// TimingGraph and reuse it.
//
// Contracts:
//  * Structure (instances/nets/connectivity) changed => call sync() before
//    the next query. sync() rebuilds structure and derived caches but keeps
//    surviving per-node timing state, so the next reanalyze() is incremental.
//  * Non-structural changes (resize_instance, set_loc) => pass the touched
//    instance ids as the dirty set of reanalyze(); the graph refreshes the
//    derived caches (master parameters, pin, incident-net geometry/loads)
//    for exactly that closure.
//  * reanalyze() is valid relative to the last analyze()/reanalyze() with
//    equal StaOptions and the same routed-graph revision; on any mismatch it
//    transparently falls back to a full propagation.
//  * analysis_cost of full / batched reports reproduces the seed engine's
//    per-report accounting (batching shares wall-clock work, not modeled
//    cost); incremental reports charge only the work actually redone.

#include <cstdint>
#include <memory>
#include <vector>

#include "timing/sta.hpp"

namespace maestro::exec {
class RunExecutor;
}

namespace maestro::timing {

class TimingGraph {
 public:
  /// Wireload mode: netlist only (synthesis-time sizing; no placement). Only
  /// the wireload_* queries are valid.
  explicit TimingGraph(const netlist::Netlist& nl);

  /// Placed mode: full STA over a placement and clock tree. An optional
  /// in_sync netlist::DesignView supplies cached pin positions / net HPWLs
  /// to the build (see attach_view); values are bit-identical either way.
  TimingGraph(const place::Placement& pl, const ClockTree& clock,
              const netlist::DesignView* view = nullptr);

  ~TimingGraph();
  TimingGraph(const TimingGraph&) = delete;
  TimingGraph& operator=(const TimingGraph&) = delete;

  /// Rebuild structure and every derived cache from the bound netlist /
  /// placement / clock (after ECO transforms added instances or nets, or
  /// after bulk mutations outside the dirty-set protocol). Per-node timing
  /// state of surviving instances is preserved so a following reanalyze()
  /// re-propagates only the ECO cone.
  void sync();

  /// Full propagation; report is bit-identical to the seed run_sta engine.
  StaReport analyze(const StaOptions& opt, const route::GridGraph* routed = nullptr);

  /// Batched multi-corner propagation: one sweep over the graph evaluating
  /// every corner at once (geometry, loads and SI shared; corner factors in
  /// the inner loop). reports[i] is bit-identical to analyze() with
  /// base.corner = corners[i], including analysis_cost (the modeled cost of
  /// a standalone run — wall-clock savings are real, modeled cost is not
  /// discounted). base.corner itself is ignored.
  std::vector<StaReport> analyze_corners(const StaOptions& base,
                                         const std::vector<Corner>& corners,
                                         const route::GridGraph* routed = nullptr);

  /// Incremental re-propagation after the instances in `dirty` were resized
  /// or moved (or inserted, following sync()). Refreshes derived caches for
  /// the dirty closure, re-propagates the affected forward cone with bitwise
  /// early cut-off, and returns a report whose timing fields are
  /// bit-identical to a full analyze(); analysis_cost charges only the
  /// re-propagated work. Falls back to a full analyze() when no compatible
  /// cached propagation exists (different options, different routed-graph
  /// revision, or the last query was multi-corner).
  StaReport reanalyze(const std::vector<netlist::InstanceId>& dirty, const StaOptions& opt,
                      const route::GridGraph* routed = nullptr);

  // ---- wireload mode -------------------------------------------------------
  /// Full wireload propagation (bit-identical to flow::wireload_timing).
  /// Returns the critical path delay; per-node arrivals via
  /// wireload_arrivals().
  double wireload_propagate(double wireload_factor, double clk_to_q_margin_ps = 0.0);
  /// Incremental wireload re-propagation over the dirty instances' forward
  /// cone; bit-identical to a full wireload_propagate with the same factors.
  double wireload_repropagate(const std::vector<netlist::InstanceId>& dirty,
                              double wireload_factor, double clk_to_q_margin_ps = 0.0);
  const std::vector<double>& wireload_arrivals() const { return wl_arrival_; }
  double wireload_critical_path() const { return wl_critical_; }

  // ---- observability / introspection --------------------------------------
  /// Late (setup) arrival at an instance's output pin from the last
  /// single-corner propagation (corner 0 of a batched one).
  double arrival_of(netlist::InstanceId id) const { return arr_[id * stride_]; }
  std::size_t node_count() const { return n_; }
  std::size_t level_count() const { return level_range_.empty() ? 0 : level_range_.size() - 1; }
  /// Nodes whose state was recomputed by the last reanalyze().
  std::size_t last_repropagated() const { return last_repropagated_; }

  /// Share a netlist::DesignView as the geometry source for build / refresh:
  /// whenever the view is in_sync with the bound netlist and placement
  /// revisions, pin positions and net HPWLs are read from its caches
  /// (bit-identical values) instead of being recomputed per pin via
  /// Placement::pin_of / net_hpwl; a stale or null view falls back to the
  /// direct path. The view must outlive this graph or be detached
  /// (attach_view(nullptr)) first. Placed mode only.
  void attach_view(const netlist::DesignView* view) { view_ = view; }

  /// Enable level-parallel propagation for graphs with at least `min_nodes`
  /// instances. Spawns a dedicated exec::RunExecutor sized from
  /// MAESTRO_THREADS (never share the campaign executor here: a pooled run
  /// blocking on nested level futures can deadlock the pool). Results are
  /// bitwise identical to the serial sweep.
  void enable_parallel(std::size_t min_nodes = 4096);
  void disable_parallel();

  /// Upper bound on corners in one batched propagation (sized for stack
  /// scratch in the inner loop; the standard set is 3).
  static constexpr std::size_t kMaxCorners = 16;

 private:
  void build();
  void refresh_instance(netlist::InstanceId id);
  void refresh_net(netlist::NetId id);
  void refresh_net_load(netlist::NetId id);
  void compute_net_loads();
  void ensure_state(std::size_t corners, bool hold);
  double si_of_edge(std::size_t e) const;
  void prepare_si(const StaOptions& opt, const route::GridGraph* routed);

  /// Recompute node u's state for all cached corners; returns true when any
  /// field changed bitwise. `cost` accrues the seed engine's per-node and
  /// per-edge charges.
  bool propagate_node(std::size_t u, double& cost);
  void propagate_level_range(std::size_t begin, std::size_t end, double& cost);
  void propagate_full(double& cost);
  /// Re-time endpoint slot j (all cached corners) from cached node state.
  void compute_endpoint(std::size_t j, double& cost);
  StaReport assemble_report(std::size_t corner) const;
  bool options_match(const StaOptions& opt, const route::GridGraph* routed) const;

  double wireload_node(std::size_t u, double factor, double margin) const;
  double wireload_critical() const;

  // Bound design state.
  const netlist::Netlist* nl_ = nullptr;
  const place::Placement* pl_ = nullptr;  ///< null in wireload mode
  const ClockTree* clock_ = nullptr;      ///< null in wireload mode
  const netlist::DesignView* view_ = nullptr;  ///< optional shared geometry

  // ---- structure (valid per netlist revision) ----
  std::size_t n_ = 0;
  std::size_t nets_n_ = 0;
  std::vector<netlist::InstanceId> order_;   ///< level-major node order
  std::vector<std::size_t> level_range_;     ///< level L = order_[range[L], range[L+1])
  std::vector<std::uint32_t> level_of_;
  std::vector<std::size_t> fanin_begin_;     ///< CSR over connected input pins
  std::vector<netlist::NetId> fanin_net_;
  std::vector<netlist::InstanceId> fanin_driver_;
  std::vector<netlist::InstanceId> fanin_sink_;
  std::vector<netlist::NetId> out_net_;
  std::vector<std::size_t> fanout_begin_;    ///< CSR: combinational sinks only
  std::vector<netlist::InstanceId> fanout_inst_;
  std::vector<std::size_t> net_edge_begin_;  ///< CSR: net -> its fanin-edge ids
  std::vector<std::size_t> net_edge_;

  // ---- per-instance derived caches ----
  std::vector<netlist::CellFunction> func_;
  std::vector<double> input_cap_;
  std::vector<double> intrinsic_;
  std::vector<double> drive_res_;
  std::vector<double> setup_;
  std::vector<double> hold_req_;
  std::vector<double> clk_to_q_;
  std::vector<double> insertion_;
  std::vector<geom::Point> pin_;

  // ---- per-net derived caches ----
  std::vector<netlist::InstanceId> net_driver_;
  std::vector<double> net_sink_cap_;   ///< sum of sink input caps, in sink order
  std::vector<double> net_hpwl_;       ///< dbu, as double (placed mode)
  std::vector<std::size_t> net_fanout_;  ///< sinks.size()
  std::vector<double> net_load_;       ///< per the cached analysis' wire model

  // ---- per-fanin-edge derived caches ----
  std::vector<double> edge_manh_;  ///< manhattan(driver pin, sink pin), dbu

  // ---- propagated state (cached across queries) ----
  std::size_t stride_ = 1;  ///< corners in the cached propagation
  bool cached_hold_ = false;
  bool cache_valid_ = false;
  StaOptions cached_opt_;
  std::vector<Corner> cached_corners_;
  const route::GridGraph* cached_routed_ = nullptr;
  std::uint64_t cached_routed_rev_ = 0;
  std::vector<double> corner_gf_, corner_wf_, corner_sf_;  ///< factor arrays
  std::vector<double> arr_, wire_acc_, gate_acc_, early_;
  std::vector<std::size_t> stages_, fanout_acc_;
  double cached_cost_ = 0.0;  ///< standalone-equivalent cost of the cached run

  // ---- endpoint cache ----
  std::vector<netlist::InstanceId> ep_ids_;  ///< ascending instance id
  std::vector<netlist::NetId> ep_net_;       ///< the endpoint's D/input net
  std::vector<EndpointTiming> ep_cache_;     ///< ep_ids_.size() * stride_

  // ---- SI map cache ----
  SiMap si_;
  bool si_active_ = false;

  // ---- wireload state ----
  bool wl_valid_ = false;
  double wl_factor_ = 0.0;
  double wl_margin_ = 0.0;
  std::vector<double> wl_arrival_;
  double wl_critical_ = 0.0;
  std::vector<netlist::InstanceId> wl_ep_inst_;  ///< endpoint-id order
  std::vector<netlist::NetId> wl_ep_net_;

  // ---- incremental scratch ----
  std::vector<std::uint32_t> node_mark_;     ///< epoch stamps, per instance
  std::vector<std::uint32_t> node_changed_;  ///< stamped when state changed
  std::vector<std::uint32_t> net_mark_;
  std::uint32_t epoch_ = 0;
  std::vector<std::vector<netlist::InstanceId>> frontier_;  ///< per level
  std::size_t last_repropagated_ = 0;

  // ---- level parallelism ----
  std::unique_ptr<exec::RunExecutor> pool_;
  std::size_t parallel_min_nodes_ = 0;
};

}  // namespace maestro::timing
