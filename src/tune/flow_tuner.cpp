#include "tune/flow_tuner.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_set>
#include <utility>

#include "exec/cancel.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "store/fingerprint.hpp"
#include "util/json.hpp"

namespace maestro::tune {

namespace {

constexpr const char* kScoreMetric = "tune_score";

util::Json u64_json(std::uint64_t v) { return util::Json{std::to_string(v)}; }
std::uint64_t u64_from(const util::Json& j) {
  return std::strtoull(j.as_string().c_str(), nullptr, 10);
}

/// Everything needed to continue (or short-circuit) a tuning campaign.
struct TuneCampaignState {
  std::uint64_t base_seed = 0;
  std::size_t next_round = 0;
  double best_score = -std::numeric_limits<double>::infinity();
  std::vector<std::size_t> best_choice;
  std::vector<TuneSample> samples;
  std::vector<double> best_per_round;
  std::vector<std::vector<ml::ArmStats>> policy;  ///< per dimension
  ml::Dataset dataset;                            ///< surrogate training set
  std::vector<bool> active;
  std::vector<std::size_t> frozen;
  std::vector<double> importance;
  std::vector<std::size_t> focus;
  std::vector<std::uint64_t> distinct;
  std::size_t mined_rows = 0;
  util::Json rng_state;
};

util::Json choice_json(const std::vector<std::size_t>& choice) {
  util::JsonArray a;
  for (const std::size_t c : choice) a.push_back(util::Json{c});
  return util::Json{std::move(a)};
}

std::vector<std::size_t> choice_from(const util::Json& j) {
  std::vector<std::size_t> out;
  for (const auto& c : j.as_array()) out.push_back(static_cast<std::size_t>(c.as_number()));
  return out;
}

util::Json tune_state_json(const TuneCampaignState& st, const TuneOptions& opt,
                           const std::vector<flow::KnobDim>& dims) {
  util::JsonObject o;
  // Campaign identity, validated on resume: a checkpoint written under a
  // different knob space or schedule must not be continued.
  o["design"] = util::Json{opt.design};
  util::JsonArray dim_ids;
  for (const auto& d : dims) {
    util::JsonObject di;
    di["name"] = util::Json{d.qualified()};
    di["arms"] = util::Json{d.values.size()};
    dim_ids.push_back(util::Json{std::move(di)});
  }
  o["dims"] = util::Json{std::move(dim_ids)};
  // `rounds` is deliberately NOT identity: resuming with a larger budget
  // continues the campaign (that is the point of a checkpoint). `batch` is —
  // seed indices and the refit cadence depend on the batch width.
  o["batch"] = util::Json{opt.batch};
  o["policy"] = util::Json{to_string(opt.policy)};
  o["epsilon"] = util::Json{opt.epsilon};
  o["tau"] = util::Json{opt.tau};
  o["warmup"] = util::Json{opt.warmup_rounds};
  o["focus_dims"] = util::Json{opt.focus_dims};
  o["refit_every"] = util::Json{opt.refit_every};
  o["min_rows"] = util::Json{opt.min_surrogate_rows};
  util::JsonObject fo;
  fo["trees"] = util::Json{opt.forest.trees};
  fo["depth"] = util::Json{opt.forest.max_depth};
  fo["min_leaf"] = util::Json{opt.forest.min_leaf};
  fo["fps"] = util::Json{opt.forest.features_per_split};
  fo["thr"] = util::Json{opt.forest.max_thresholds};
  o["forest"] = util::Json{std::move(fo)};

  o["base_seed"] = u64_json(st.base_seed);
  o["next_round"] = util::Json{st.next_round};
  o["best_score"] = util::Json{st.best_score};
  o["best_choice"] = choice_json(st.best_choice);
  o["rng"] = st.rng_state;
  o["mined_rows"] = util::Json{st.mined_rows};
  util::JsonArray samples;
  for (const auto& s : st.samples) {
    util::JsonObject so;
    so["r"] = util::Json{s.round};
    so["c"] = choice_json(s.choice);
    so["s"] = util::Json{s.score};
    so["ok"] = util::Json{s.success};
    samples.push_back(util::Json{std::move(so)});
  }
  o["samples"] = util::Json{std::move(samples)};
  util::JsonArray bests;
  for (const double b : st.best_per_round) bests.push_back(util::Json{b});
  o["best_per_round"] = util::Json{std::move(bests)};
  util::JsonArray policy;
  for (const auto& dim_stats : st.policy) {
    util::JsonArray arms;
    for (const auto& a : dim_stats) {
      util::JsonObject ao;
      ao["pulls"] = util::Json{a.pulls};
      ao["rsum"] = util::Json{a.reward_sum};
      ao["rsq"] = util::Json{a.reward_sq_sum};
      arms.push_back(util::Json{std::move(ao)});
    }
    policy.push_back(util::Json{std::move(arms)});
  }
  o["policy_stats"] = util::Json{std::move(policy)};
  util::JsonArray rows;
  for (std::size_t i = 0; i < st.dataset.size(); ++i) {
    util::JsonObject ro;
    util::JsonArray x;
    for (const double v : st.dataset.x[i]) x.push_back(util::Json{v});
    ro["x"] = util::Json{std::move(x)};
    ro["y"] = util::Json{st.dataset.y[i]};
    rows.push_back(util::Json{std::move(ro)});
  }
  o["dataset"] = util::Json{std::move(rows)};
  util::JsonArray active;
  for (const bool a : st.active) active.push_back(util::Json{a});
  o["active"] = util::Json{std::move(active)};
  o["frozen"] = choice_json(st.frozen);
  util::JsonArray imp;
  for (const double v : st.importance) imp.push_back(util::Json{v});
  o["importance"] = util::Json{std::move(imp)};
  o["focus"] = choice_json(st.focus);
  util::JsonArray distinct;
  for (const std::uint64_t f : st.distinct) distinct.push_back(u64_json(f));
  o["distinct"] = util::Json{std::move(distinct)};
  return util::Json{std::move(o)};
}

std::optional<TuneCampaignState> tune_state_from_json(const util::Json& j,
                                                      const TuneOptions& opt,
                                                      const std::vector<flow::KnobDim>& dims) {
  if (!j.is_object()) return std::nullopt;
  if (j.at("design").as_string() != opt.design) return std::nullopt;
  const auto& dim_ids = j.at("dims").as_array();
  if (dim_ids.size() != dims.size()) return std::nullopt;
  for (std::size_t i = 0; i < dims.size(); ++i) {
    if (dim_ids[i].at("name").as_string() != dims[i].qualified()) return std::nullopt;
    if (static_cast<std::size_t>(dim_ids[i].at("arms").as_number()) != dims[i].values.size()) {
      return std::nullopt;
    }
  }
  if (static_cast<std::size_t>(j.at("batch").as_number()) != opt.batch) return std::nullopt;
  if (j.at("policy").as_string() != to_string(opt.policy)) return std::nullopt;
  if (j.at("epsilon").as_number() != opt.epsilon) return std::nullopt;
  if (j.at("tau").as_number() != opt.tau) return std::nullopt;
  if (static_cast<std::size_t>(j.at("warmup").as_number()) != opt.warmup_rounds) {
    return std::nullopt;
  }
  if (static_cast<std::size_t>(j.at("focus_dims").as_number()) != opt.focus_dims) {
    return std::nullopt;
  }
  if (static_cast<std::size_t>(j.at("refit_every").as_number()) != opt.refit_every) {
    return std::nullopt;
  }
  if (static_cast<std::size_t>(j.at("min_rows").as_number()) != opt.min_surrogate_rows) {
    return std::nullopt;
  }
  const auto& fo = j.at("forest");
  if (static_cast<std::size_t>(fo.at("trees").as_number()) != opt.forest.trees ||
      static_cast<std::size_t>(fo.at("depth").as_number()) != opt.forest.max_depth ||
      static_cast<std::size_t>(fo.at("min_leaf").as_number()) != opt.forest.min_leaf ||
      static_cast<std::size_t>(fo.at("fps").as_number()) != opt.forest.features_per_split ||
      static_cast<std::size_t>(fo.at("thr").as_number()) != opt.forest.max_thresholds) {
    return std::nullopt;
  }

  TuneCampaignState st;
  st.base_seed = u64_from(j.at("base_seed"));
  st.next_round = static_cast<std::size_t>(j.at("next_round").as_number());
  st.best_score = j.at("best_score").as_number();
  st.best_choice = choice_from(j.at("best_choice"));
  st.rng_state = j.at("rng");
  if (st.rng_state.as_array().size() != 6) return std::nullopt;
  st.mined_rows = static_cast<std::size_t>(j.at("mined_rows").as_number());
  for (const auto& s : j.at("samples").as_array()) {
    TuneSample sample;
    sample.round = static_cast<std::size_t>(s.at("r").as_number());
    sample.choice = choice_from(s.at("c"));
    sample.score = s.at("s").as_number();
    sample.success = s.at("ok").as_bool();
    st.samples.push_back(std::move(sample));
  }
  for (const auto& b : j.at("best_per_round").as_array()) {
    st.best_per_round.push_back(b.as_number());
  }
  for (const auto& dim_stats : j.at("policy_stats").as_array()) {
    std::vector<ml::ArmStats> arms;
    for (const auto& a : dim_stats.as_array()) {
      ml::ArmStats stats;
      stats.pulls = static_cast<std::size_t>(a.at("pulls").as_number());
      stats.reward_sum = a.at("rsum").as_number();
      stats.reward_sq_sum = a.at("rsq").as_number();
      arms.push_back(stats);
    }
    st.policy.push_back(std::move(arms));
  }
  if (st.policy.size() != dims.size()) return std::nullopt;
  for (std::size_t d = 0; d < dims.size(); ++d) {
    if (st.policy[d].size() != dims[d].values.size()) return std::nullopt;
  }
  for (const auto& row : j.at("dataset").as_array()) {
    std::vector<double> x;
    for (const auto& v : row.at("x").as_array()) x.push_back(v.as_number());
    st.dataset.add(std::move(x), row.at("y").as_number());
  }
  for (const auto& a : j.at("active").as_array()) st.active.push_back(a.as_bool());
  st.frozen = choice_from(j.at("frozen"));
  for (const auto& v : j.at("importance").as_array()) st.importance.push_back(v.as_number());
  st.focus = choice_from(j.at("focus"));
  for (const auto& f : j.at("distinct").as_array()) st.distinct.push_back(u64_from(f));
  if (st.active.size() != dims.size() || st.frozen.size() != dims.size()) return std::nullopt;
  return st;
}

/// The run key of one tuned trajectory: design, "flow", the flattened knob
/// assignment, the trajectory-derived seed. Matches store::run_key_for's
/// vocabulary so cross-tool history (flow runs, other campaigns) shares
/// fingerprints with the tuner when design + knobs + seed agree.
store::RunKey trajectory_key(const std::string& design, const flow::FlowTrajectory& t,
                             std::uint64_t seed) {
  store::RunKey key;
  key.design = design;
  key.step = "flow";
  for (auto& [name, value] : flow::flatten(t)) key.knobs[name] = value;
  key.seed = seed;
  return key;
}

metrics::Record tune_record(const std::string& design, const flow::FlowTrajectory& t,
                            std::uint64_t seed, const flow::FlowResult& fr, double score) {
  metrics::Record rec;
  rec.design = design;
  rec.step = "tune";
  rec.seed = seed;
  for (auto& [name, value] : flow::flatten(t)) rec.knobs[name] = value;
  rec.values[kScoreMetric] = score;
  rec.values[metrics::names::kSuccess] = fr.success() ? 1.0 : 0.0;
  rec.values[metrics::names::kAreaUm2] = fr.area_um2;
  rec.values[metrics::names::kWnsPs] = fr.wns_ps;
  rec.values[metrics::names::kPowerMw] = fr.power_mw;
  return rec;
}

}  // namespace

const char* to_string(TunePolicy p) {
  switch (p) {
    case TunePolicy::Thompson: return "thompson";
    case TunePolicy::Softmax: return "softmax";
    case TunePolicy::EpsilonGreedy: return "eps_greedy";
    case TunePolicy::Ucb1: return "ucb1";
  }
  return "?";
}

TuneOracle make_flow_tune_oracle(const flow::FlowManager& manager,
                                 const flow::DesignSpec& design, double target_ghz,
                                 const flow::FlowConstraints& constraints) {
  return [&manager, design, target_ghz, constraints](const flow::FlowTrajectory& knobs,
                                                     std::uint64_t seed) {
    flow::FlowRecipe recipe;
    recipe.design = design;
    recipe.target_ghz = target_ghz;
    recipe.knobs = knobs;
    recipe.seed = seed;
    return manager.run(recipe, constraints);
  };
}

double default_objective(const flow::FlowResult& r) {
  if (!r.success()) return 0.0;
  return 1.0 + 1.0 / (1.0 + r.area_um2 / 1e4);
}

std::uint64_t trajectory_seed(std::uint64_t base_seed, const std::vector<std::size_t>& choice) {
  // Chained SplitMix: purely a function of (base_seed, the choice indices),
  // never of round or batch position — the property that makes a repeat
  // trajectory a repeat fingerprint.
  std::uint64_t seed = exec::derive_run_seed(base_seed, choice.size());
  for (const std::size_t c : choice) seed = exec::derive_run_seed(seed, c);
  return seed;
}

FlowTuner::FlowTuner(TuneOptions options) : options_(std::move(options)) {
  if (options_.spaces.empty()) options_.spaces = flow::default_knob_spaces();
  dims_ = flow::enumerate_dimensions(options_.spaces);
  assert(!dims_.empty());
}

std::unique_ptr<ml::BanditPolicy> FlowTuner::make_policy(std::size_t arms) const {
  switch (options_.policy) {
    case TunePolicy::Thompson: return std::make_unique<ml::ThompsonGaussian>(arms);
    case TunePolicy::Softmax: return std::make_unique<ml::Softmax>(arms, options_.tau);
    case TunePolicy::EpsilonGreedy:
      return std::make_unique<ml::EpsilonGreedy>(arms, options_.epsilon);
    case TunePolicy::Ucb1: return std::make_unique<ml::Ucb1>(arms);
  }
  return std::make_unique<ml::ThompsonGaussian>(arms);
}

TuneResult FlowTuner::run(const TuneOracle& oracle, util::Rng& rng) const {
  exec::RunExecutor pool;
  return run(oracle, rng, pool);
}

TuneResult FlowTuner::run(const TuneOracle& oracle, util::Rng& rng,
                          exec::RunExecutor& pool) const {
  const std::size_t n_dims = dims_.size();
  const auto objective =
      options_.objective ? options_.objective : std::function<double(const flow::FlowResult&)>(
                                                    default_objective);

  TuneResult res;
  std::vector<std::unique_ptr<ml::BanditPolicy>> policies;
  policies.reserve(n_dims);
  for (const auto& d : dims_) policies.push_back(make_policy(d.values.size()));

  obs::Span run_span("tune_run", "tune");
  run_span.arg("policy", to_string(options_.policy))
      .arg("dims", static_cast<double>(n_dims))
      .arg("rounds", static_cast<double>(options_.rounds));

  ml::Dataset dataset;
  std::vector<bool> active(n_dims, true);
  std::vector<std::size_t> frozen(n_dims, 0);
  std::unordered_set<std::uint64_t> distinct;
  std::uint64_t base_seed = 0;
  std::size_t start_round = 0;
  const std::string state_key = "tune:" + options_.campaign_id;

  // Resume: restore posteriors, the surrogate training set, the focus state
  // and the RNG from the last persisted round — bitwise identical to the
  // uninterrupted campaign. A checkpoint written under different options
  // (other knob spaces, schedule or policy) is ignored.
  bool resumed = false;
  if (options_.checkpoint) {
    if (const auto saved = options_.checkpoint->get_state(state_key)) {
      if (auto st = tune_state_from_json(*saved, options_, dims_)) {
        base_seed = st->base_seed;
        start_round = st->next_round;
        res.best_score = st->best_score;
        res.best_choice = std::move(st->best_choice);
        res.samples = std::move(st->samples);
        res.best_per_round = std::move(st->best_per_round);
        res.total_runs = res.samples.size();
        res.mined_rows = st->mined_rows;
        res.importance = std::move(st->importance);
        res.focus = std::move(st->focus);
        dataset = std::move(st->dataset);
        active = std::move(st->active);
        frozen = std::move(st->frozen);
        distinct.insert(st->distinct.begin(), st->distinct.end());
        for (std::size_t d = 0; d < n_dims; ++d) policies[d]->restore_stats(st->policy[d]);
        store::rng_state_from_json(rng, st->rng_state);
        resumed = true;
        res.resumed = true;
        obs::Registry::global().counter("store.campaign_resumed").add();
      }
    }
  }
  if (!resumed) {
    base_seed = rng.next();
    // Warm start: mine the METRICS server's existing history through a
    // subscriber. Past step="tune" records of this design seed both the
    // per-dimension posteriors and the surrogate training set, so a new
    // campaign starts where earlier ones (possibly in earlier processes,
    // rehydrated from the store) left off. Resumed campaigns skip this —
    // their mined rows are already in the checkpointed dataset.
    if (options_.metrics) {
      const std::uint64_t sub = options_.metrics->subscribe(/*from_start=*/true);
      for (;;) {
        metrics::Poll p = options_.metrics->poll_since(sub);
        if (p.records.empty()) break;
        for (const auto& rec : p.records) {
          if (rec.step != "tune" || rec.design != options_.design) continue;
          const auto score = rec.value(kScoreMetric);
          if (!score || !std::isfinite(*score)) continue;
          flow::FlowTrajectory t;
          for (const auto& [name, value] : rec.knobs) {
            const auto dot = name.find('.');
            if (dot == std::string::npos) continue;
            const auto step = flow::step_from_string(name.substr(0, dot));
            if (!step) continue;
            t.set(*step, name.substr(dot + 1), value);
          }
          const auto choice = flow::indices_from_trajectory(dims_, t);
          if (!choice) continue;  // foreign knob space: unusable as a row
          std::vector<double> row(n_dims);
          for (std::size_t d = 0; d < n_dims; ++d) {
            row[d] = static_cast<double>((*choice)[d]);
            policies[d]->update((*choice)[d], *score);
          }
          dataset.add(std::move(row), *score);
          ++res.mined_rows;
        }
      }
      options_.metrics->unsubscribe(sub);
      if (res.mined_rows > 0) {
        obs::Registry::global().counter("tune.mined_rows").add(res.mined_rows);
      }
    }
  }
  run_span.arg("start_round", static_cast<double>(start_round));

  const auto save_checkpoint = [&](std::size_t next_round) {
    if (!options_.checkpoint) return;
    TuneCampaignState st;
    st.base_seed = base_seed;
    st.next_round = next_round;
    st.best_score = res.best_score;
    st.best_choice = res.best_choice;
    st.samples = res.samples;
    st.best_per_round = res.best_per_round;
    for (const auto& p : policies) st.policy.push_back(p->export_stats());
    st.dataset = dataset;
    st.active = active;
    st.frozen = frozen;
    st.importance = res.importance;
    st.focus = res.focus;
    st.distinct.assign(distinct.begin(), distinct.end());
    std::sort(st.distinct.begin(), st.distinct.end());
    st.mined_rows = res.mined_rows;
    st.rng_state = store::rng_state_to_json(rng);
    options_.checkpoint->put_state(state_key, tune_state_json(st, options_, dims_));
  };

  for (std::size_t r = start_round; r < options_.rounds; ++r) {
    obs::Span round_span("tune_round", "tune");
    round_span.arg("round", static_cast<double>(r))
        .arg("free_dims",
             static_cast<double>(std::count(active.begin(), active.end(), true)));

    // Serial: pick every free dimension in dimension order, consuming the
    // shared Rng; frozen dimensions replay their best empirical arm without
    // touching the Rng (the active mask is itself deterministic, so the
    // stream stays aligned). Warm-up rounds sample uniformly instead of from
    // the posterior: FIST's importance fit needs variance in *every*
    // dimension, and a bandit concentrates fastest on exactly the dimensions
    // that matter most — leaving them near-constant in the surrogate's
    // training rows and ranked as unimportant.
    const bool explore = r < options_.warmup_rounds;
    std::vector<std::vector<std::size_t>> choices(options_.batch,
                                                  std::vector<std::size_t>(n_dims));
    for (std::size_t b = 0; b < options_.batch; ++b) {
      for (std::size_t d = 0; d < n_dims; ++d) {
        if (!active[d]) {
          choices[b][d] = frozen[d];
        } else if (explore) {
          choices[b][d] = static_cast<std::size_t>(rng.below(dims_[d].values.size()));
        } else {
          choices[b][d] = policies[d]->select(rng);
        }
      }
    }
    obs::Registry::global().counter("tune.trajectories").add(options_.batch);

    // Parallel: dispatch the batch. Seeds (and so run-key fingerprints)
    // derive purely from (base_seed, choice indices) — a repeat trajectory
    // is a repeat fingerprint, served by the cache or joined in flight.
    std::vector<std::future<flow::FlowResult>> futures;
    std::vector<flow::FlowTrajectory> trajectories;
    std::vector<std::uint64_t> seeds;
    futures.reserve(options_.batch);
    trajectories.reserve(options_.batch);
    seeds.reserve(options_.batch);
    for (std::size_t b = 0; b < options_.batch; ++b) {
      const std::uint64_t seed = trajectory_seed(base_seed, choices[b]);
      flow::FlowTrajectory traj = flow::trajectory_from_indices(dims_, choices[b]);
      const std::string label = "tune#" + std::to_string(r * options_.batch + b);
      auto body = [&oracle, traj, seed](exec::RunContext&) { return oracle(traj, seed); };
      if (options_.cache) {
        store::KeyedRunCache keyed{*options_.cache,
                                   trajectory_key(options_.design, traj, seed)};
        distinct.insert(keyed.fingerprint());
        futures.push_back(
            pool.submit_memo(label, seed, keyed.fingerprint(), keyed, std::move(body)));
      } else {
        distinct.insert(trajectory_key(options_.design, traj, seed).fingerprint());
        futures.push_back(pool.submit(label, seed, std::move(body)));
      }
      trajectories.push_back(std::move(traj));
      seeds.push_back(seed);
    }

    // Barrier, then serial: observe in submission order, share each run's
    // objective into every dimension's posterior (FlowTune's end-to-end
    // credit assignment) and grow the surrogate training set.
    for (std::size_t b = 0; b < options_.batch; ++b) {
      const flow::FlowResult fr = futures[b].get();
      const double score = objective(fr);
      std::vector<double> row(n_dims);
      for (std::size_t d = 0; d < n_dims; ++d) {
        policies[d]->update(choices[b][d], score);
        row[d] = static_cast<double>(choices[b][d]);
      }
      dataset.add(std::move(row), score);
      if (options_.metrics) {
        options_.metrics->submit(
            tune_record(options_.design, trajectories[b], seeds[b], fr, score));
      }
      TuneSample s;
      s.round = r;
      s.choice = choices[b];
      s.score = score;
      s.success = fr.success();
      res.samples.push_back(std::move(s));
      ++res.total_runs;
      if (score > res.best_score) {
        res.best_score = score;
        res.best_choice = choices[b];
      }
    }
    res.best_per_round.push_back(res.best_score);
    round_span.arg("best_score", res.best_score);

    // FIST refit: fit the forest surrogate on the mined history, rank the
    // dimensions by importance, keep the top `focus_dims` free and freeze
    // the rest at their best empirical arm. The forest seed derives from
    // (base_seed, round), so refits are deterministic and resumable.
    const std::size_t done = r + 1;
    if (done >= options_.warmup_rounds && options_.focus_dims < n_dims &&
        dataset.size() >= options_.min_surrogate_rows &&
        (done - options_.warmup_rounds) % options_.refit_every == 0) {
      ml::RandomForest::Options fopt = options_.forest;
      fopt.seed = exec::derive_run_seed(base_seed ^ 0x9e3779b97f4a7c15ULL, r);
      ml::RandomForest forest{fopt};
      forest.fit(dataset);
      const auto& imp = forest.feature_importances();
      double total = 0.0;
      for (const double v : imp) total += v;
      if (total > 0.0) {
        std::vector<std::size_t> order(n_dims);
        for (std::size_t d = 0; d < n_dims; ++d) order[d] = d;
        std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b2) {
          return imp[a] > imp[b2];  // stable: ties keep lower index first
        });
        res.importance = imp;
        res.focus.assign(order.begin(),
                         order.begin() + static_cast<std::ptrdiff_t>(options_.focus_dims));
        std::sort(res.focus.begin(), res.focus.end());
        std::fill(active.begin(), active.end(), false);
        for (const std::size_t d : res.focus) active[d] = true;
        for (std::size_t d = 0; d < n_dims; ++d) {
          if (!active[d]) frozen[d] = policies[d]->best_empirical_arm();
        }
        obs::Registry::global().counter("tune.refits").add();
        round_span.arg("frozen_dims",
                       static_cast<double>(n_dims - options_.focus_dims));
      }
    }
    save_checkpoint(r + 1);
  }

  res.distinct_runs = distinct.size();
  if (!res.best_choice.empty()) {
    res.best_trajectory = flow::trajectory_from_indices(dims_, res.best_choice);
  }
  run_span.arg("best_score", res.best_score)
      .arg("total_runs", static_cast<double>(res.total_runs))
      .arg("distinct_runs", static_cast<double>(res.distinct_runs));
  return res;
}

}  // namespace maestro::tune
