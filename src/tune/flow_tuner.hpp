#pragma once
// FlowTuner — multi-stage flow tuning over the full knob space (paper
// Section 3.2, Fig. 5).
//
// Two published ideas compose here:
//
//  * FlowTune (arXiv 2202.07721): each flow stage's knobs are bandit arms,
//    and per-stage decisions chain end-to-end into one FlowTrajectory. The
//    tuner keeps one ml::BanditPolicy per flattened (step, knob) dimension;
//    a round samples every dimension, runs the assembled trajectory, and
//    shares the run's scalar objective back into every dimension's
//    posterior — credit assignment by association, which is what makes the
//    per-stage decomposition tractable.
//
//  * FIST (arXiv 2011.13493): most knobs do not matter for a given design.
//    After a warm-up of full-space exploration the tuner fits a
//    random-forest surrogate (ml::RandomForest) on the campaign's mined
//    history — features are the per-dimension value indices, the target is
//    the objective — and reads off *feature importances*. Sampling then
//    concentrates on the top `focus_dims` important dimensions; the rest are
//    frozen at their best empirical arm. Freezing collapses the reachable
//    trajectory set, so repeat configurations become content-addressed cache
//    hits instead of tool runs.
//
// Determinism contract (mirrors core::MabScheduler): dimension selection
// consumes the shared Rng serially; each run's seed derives purely from
// (base_seed, the trajectory's choice indices), so an identical trajectory
// always has an identical store::RunKey fingerprint; results are observed in
// submission order. Campaigns are bitwise identical at any pool size, and a
// checkpointed campaign resumes bitwise identical to the uninterrupted one
// under "tune:<campaign_id>" in a store::RunStore.

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "exec/executor.hpp"
#include "flow/flow.hpp"
#include "ml/bandit.hpp"
#include "ml/regression.hpp"
#include "metrics/server.hpp"
#include "store/run_cache.hpp"
#include "store/run_store.hpp"

namespace maestro::tune {

/// "Run the flow with this trajectory and seed" — the real FlowManager or a
/// fast synthetic oracle (bench/perf_tune.cpp).
using TuneOracle =
    std::function<flow::FlowResult(const flow::FlowTrajectory&, std::uint64_t seed)>;

/// Oracle over the real flow for a fixed design and target frequency.
TuneOracle make_flow_tune_oracle(const flow::FlowManager& manager,
                                 const flow::DesignSpec& design, double target_ghz,
                                 const flow::FlowConstraints& constraints);

/// Scalar objective, higher is better. The default rewards success and then
/// smaller area: success ? 1 + 1/(1 + area_um2/1e4) : 0.
double default_objective(const flow::FlowResult& r);

enum class TunePolicy { Thompson, Softmax, EpsilonGreedy, Ucb1 };
const char* to_string(TunePolicy p);

struct TuneOptions {
  /// The knob spaces to tune over; flow::default_knob_spaces() if empty.
  std::vector<flow::KnobSpace> spaces;
  std::string design = "tune";  ///< run-key / metrics design id

  std::size_t rounds = 24;  ///< tuning rounds
  std::size_t batch = 4;    ///< concurrent trajectories per round

  TunePolicy policy = TunePolicy::Thompson;
  double epsilon = 0.1;  ///< e-greedy only
  double tau = 0.08;     ///< softmax only

  /// FIST schedule: rounds of full-space exploration before the first
  /// surrogate refit, dimensions left free after focusing, and the cadence
  /// (in rounds) of refits thereafter.
  std::size_t warmup_rounds = 6;
  std::size_t focus_dims = 5;
  std::size_t refit_every = 4;
  std::size_t min_surrogate_rows = 8;  ///< skip refits on thinner history
  ml::RandomForest::Options forest;    ///< seed is overridden per refit

  /// Objective to maximize; default_objective when unset.
  std::function<double(const flow::FlowResult&)> objective;

  /// Content-addressed memoization: every run dispatches through
  /// exec::RunExecutor::submit_memo keyed by (design, trajectory knobs,
  /// seed). Repeat trajectories — within a campaign once FIST freezes
  /// dimensions, or across campaigns over the same MAESTRO_STORE — resolve
  /// from the cache or join the in-flight twin instead of running.
  store::FlowCache* cache = nullptr;

  /// Durable checkpointing under "tune:<campaign_id>": posteriors, the
  /// surrogate training set, the focus state and the RNG persist after
  /// every round. A rerun with the same id and options resumes bitwise
  /// identical; a finished campaign short-circuits.
  store::RunStore* checkpoint = nullptr;
  std::string campaign_id = "tune";

  /// METRICS integration: every observed run is transmitted as a
  /// step="tune" record, and a fresh campaign warm-starts by mining the
  /// server's existing history through a subscriber (posteriors and the
  /// surrogate training set are seeded from past records of this design).
  metrics::Server* metrics = nullptr;
};

/// One observed trajectory run.
struct TuneSample {
  std::size_t round = 0;
  std::vector<std::size_t> choice;  ///< value index per dimension
  double score = 0.0;
  bool success = false;
};

struct TuneResult {
  std::vector<TuneSample> samples;
  std::vector<double> best_per_round;
  double best_score = -std::numeric_limits<double>::infinity();
  std::vector<std::size_t> best_choice;
  flow::FlowTrajectory best_trajectory;

  std::size_t total_runs = 0;
  /// Unique trajectory fingerprints dispatched. total_runs - distinct_runs
  /// of the campaign's dispatches were served from the memo layer (cache
  /// hit or in-flight join) when a cache is configured.
  std::size_t distinct_runs = 0;
  std::size_t mined_rows = 0;  ///< warm-start rows mined from metrics history

  std::vector<double> importance;   ///< last fitted per-dimension importance
  std::vector<std::size_t> focus;   ///< focused dimensions (empty pre-refit)
  bool resumed = false;
};

class FlowTuner {
 public:
  explicit FlowTuner(TuneOptions options);

  /// Run the campaign. Selection is serial on `rng`, the batch dispatches on
  /// `pool`, observation is serial in submission order — bitwise identical
  /// at any pool size.
  TuneResult run(const TuneOracle& oracle, util::Rng& rng, exec::RunExecutor& pool) const;
  /// Convenience: private pool sized by MAESTRO_THREADS.
  TuneResult run(const TuneOracle& oracle, util::Rng& rng) const;

  const TuneOptions& options() const { return options_; }
  /// The flattened dimensions the tuner optimizes over (stable order).
  const std::vector<flow::KnobDim>& dimensions() const { return dims_; }

 private:
  std::unique_ptr<ml::BanditPolicy> make_policy(std::size_t arms) const;

  TuneOptions options_;
  std::vector<flow::KnobDim> dims_;
};

/// Pure seed for one trajectory: chained splitmix over the choice indices.
/// Identical trajectories get identical seeds (and so identical run-key
/// fingerprints), which is what turns repeat configurations into cache hits.
std::uint64_t trajectory_seed(std::uint64_t base_seed, const std::vector<std::size_t>& choice);

}  // namespace maestro::tune
