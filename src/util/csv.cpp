#include "util/csv.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace maestro::util {

std::string format_double(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

CsvTable::CsvTable(std::vector<std::string> header) : header_(std::move(header)) {}

CsvTable& CsvTable::new_row() {
  rows_.emplace_back();
  return *this;
}

CsvTable& CsvTable::add(const std::string& cell) {
  if (rows_.empty()) rows_.emplace_back();
  rows_.back().push_back(cell);
  return *this;
}

CsvTable& CsvTable::add(double value, int precision) { return add(format_double(value, precision)); }

CsvTable& CsvTable::add(std::size_t value) { return add(std::to_string(value)); }

CsvTable& CsvTable::add(int value) { return add(std::to_string(value)); }

std::string CsvTable::to_csv() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < header_.size(); ++i) {
    if (i) os << ',';
    os << header_[i];
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) os << ',';
      os << row[i];
    }
    os << '\n';
  }
  return os.str();
}

std::string CsvTable::to_pretty() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t i = 0; i < header_.size(); ++i) widths[i] = header_[i].size();
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string{};
      os << cell << std::string(widths[i] - cell.size() + 2, ' ');
    }
    os << '\n';
  };
  emit_row(header_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

void CsvTable::print(std::ostream& os, bool pretty) const {
  os << (pretty ? to_pretty() : to_csv());
}

}  // namespace maestro::util
