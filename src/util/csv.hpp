#pragma once
// CSV emission for benchmark harnesses. Every bench binary regenerating a
// paper table/figure prints its series through CsvTable so output is uniform
// and machine-scrapeable.

#include <iosfwd>
#include <string>
#include <vector>

namespace maestro::util {

/// A rectangular table with a header row; cells are preformatted strings.
class CsvTable {
 public:
  explicit CsvTable(std::vector<std::string> header);

  /// Begin a new row; subsequent add() calls fill it left to right.
  CsvTable& new_row();
  CsvTable& add(const std::string& cell);
  CsvTable& add(double value, int precision = 6);
  CsvTable& add(std::size_t value);
  CsvTable& add(int value);

  std::size_t rows() const { return rows_.size(); }
  std::size_t cols() const { return header_.size(); }

  /// Raw CSV text.
  std::string to_csv() const;
  /// Aligned text table for terminal display.
  std::string to_pretty() const;

  void print(std::ostream& os, bool pretty = true) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed precision (helper shared with benches).
std::string format_double(double value, int precision);

}  // namespace maestro::util
