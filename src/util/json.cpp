#include "util/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <sstream>

namespace maestro::util {

namespace {
const Json kNullJson{};
}

const Json& Json::at(const std::string& key) const {
  if (type_ != Type::Object) return kNullJson;
  const auto it = obj_.find(key);
  return it != obj_.end() ? it->second : kNullJson;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string Json::dump() const {
  switch (type_) {
    case Type::Null: return "null";
    case Type::Bool: return bool_ ? "true" : "false";
    case Type::Number: {
      if (std::isnan(num_) || std::isinf(num_)) return "null";
      // Integral values print without decimal point for readability.
      if (num_ == std::floor(num_) && std::abs(num_) < 1e15) {
        std::ostringstream os;
        os << static_cast<std::int64_t>(num_);
        return os.str();
      }
      std::ostringstream os;
      os.precision(17);
      os << num_;
      return os.str();
    }
    case Type::String: return json_escape(str_);
    case Type::Array: {
      std::string out = "[";
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i) out.push_back(',');
        out += arr_[i].dump();
      }
      out.push_back(']');
      return out;
    }
    case Type::Object: {
      std::string out = "{";
      bool first = true;
      for (const auto& [k, v] : obj_) {
        if (!first) out.push_back(',');
        first = false;
        out += json_escape(k);
        out.push_back(':');
        out += v.dump();
      }
      out.push_back('}');
      return out;
    }
  }
  return "null";
}

namespace {

struct Parser {
  std::string_view text;
  std::size_t pos = 0;

  void skip_ws() {
    while (pos < text.size() && std::isspace(static_cast<unsigned char>(text[pos]))) ++pos;
  }

  bool eat(char c) {
    skip_ws();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  bool match(std::string_view word) {
    if (text.substr(pos, word.size()) == word) {
      pos += word.size();
      return true;
    }
    return false;
  }

  std::optional<Json> value() {
    skip_ws();
    if (pos >= text.size()) return std::nullopt;
    const char c = text[pos];
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') {
      auto s = string();
      if (!s) return std::nullopt;
      return Json{std::move(*s)};
    }
    if (match("true")) return Json{true};
    if (match("false")) return Json{false};
    if (match("null")) return Json{nullptr};
    return number();
  }

  std::optional<std::string> string() {
    if (!eat('"')) return std::nullopt;
    std::string out;
    while (pos < text.size()) {
      char c = text[pos++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos >= text.size()) return std::nullopt;
        char e = text[pos++];
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'u': {
            if (pos + 4 > text.size()) return std::nullopt;
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text[pos++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return std::nullopt;
            }
            // Only BMP codepoints below 0x80 round-trip through our writer;
            // encode others as UTF-8.
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default: return std::nullopt;
        }
      } else {
        out.push_back(c);
      }
    }
    return std::nullopt;
  }

  std::optional<Json> number() {
    const std::size_t start = pos;
    if (pos < text.size() && (text[pos] == '-' || text[pos] == '+')) ++pos;
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) || text[pos] == '.' ||
            text[pos] == 'e' || text[pos] == 'E' || text[pos] == '-' || text[pos] == '+')) {
      ++pos;
    }
    if (pos == start) return std::nullopt;
    double d = 0.0;
    const auto* first = text.data() + start;
    const auto* last = text.data() + pos;
    const auto [ptr, ec] = std::from_chars(first, last, d);
    if (ec != std::errc{} || ptr != last) return std::nullopt;
    return Json{d};
  }

  std::optional<Json> array() {
    if (!eat('[')) return std::nullopt;
    JsonArray arr;
    skip_ws();
    if (eat(']')) return Json{std::move(arr)};
    for (;;) {
      auto v = value();
      if (!v) return std::nullopt;
      arr.push_back(std::move(*v));
      if (eat(']')) return Json{std::move(arr)};
      if (!eat(',')) return std::nullopt;
    }
  }

  std::optional<Json> object() {
    if (!eat('{')) return std::nullopt;
    JsonObject obj;
    skip_ws();
    if (eat('}')) return Json{std::move(obj)};
    for (;;) {
      skip_ws();
      auto key = string();
      if (!key) return std::nullopt;
      if (!eat(':')) return std::nullopt;
      auto v = value();
      if (!v) return std::nullopt;
      obj.emplace(std::move(*key), std::move(*v));
      if (eat('}')) return Json{std::move(obj)};
      if (!eat(',')) return std::nullopt;
    }
  }
};

}  // namespace

std::optional<Json> Json::parse(std::string_view text) {
  Parser p{text};
  auto v = p.value();
  if (!v) return std::nullopt;
  p.skip_ws();
  if (p.pos != text.size()) return std::nullopt;
  return v;
}

}  // namespace maestro::util
