#pragma once
// Minimal JSON value model, writer and parser.
//
// The METRICS system (Section 4 / Fig. 11 of the paper) encodes design-process
// records for transmission and persistence; the paper's original system used
// XML + Enterprise Java Beans, and explicitly notes that "reimplementing
// METRICS with today's commodity ... technologies will be much simpler". We
// use JSON as that commodity encoding. The parser accepts the subset of JSON
// that the writer emits (objects, arrays, strings, numbers, bools, null).

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace maestro::util {

class Json;
using JsonArray = std::vector<Json>;
using JsonObject = std::map<std::string, Json>;

/// A JSON value: null, bool, number (double), string, array or object.
class Json {
 public:
  enum class Type { Null, Bool, Number, String, Array, Object };

  Json() : type_(Type::Null) {}
  Json(std::nullptr_t) : type_(Type::Null) {}
  Json(bool b) : type_(Type::Bool), bool_(b) {}
  Json(double d) : type_(Type::Number), num_(d) {}
  Json(int i) : type_(Type::Number), num_(i) {}
  Json(std::int64_t i) : type_(Type::Number), num_(static_cast<double>(i)) {}
  Json(std::size_t i) : type_(Type::Number), num_(static_cast<double>(i)) {}
  Json(const char* s) : type_(Type::String), str_(s) {}
  Json(std::string s) : type_(Type::String), str_(std::move(s)) {}
  Json(JsonArray a) : type_(Type::Array), arr_(std::move(a)) {}
  Json(JsonObject o) : type_(Type::Object), obj_(std::move(o)) {}

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::Null; }
  bool is_number() const { return type_ == Type::Number; }
  bool is_string() const { return type_ == Type::String; }
  bool is_object() const { return type_ == Type::Object; }
  bool is_array() const { return type_ == Type::Array; }

  bool as_bool(bool fallback = false) const { return type_ == Type::Bool ? bool_ : fallback; }
  double as_number(double fallback = 0.0) const { return type_ == Type::Number ? num_ : fallback; }
  const std::string& as_string() const { return str_; }
  const JsonArray& as_array() const { return arr_; }
  const JsonObject& as_object() const { return obj_; }
  JsonArray& as_array() { return arr_; }
  JsonObject& as_object() { return obj_; }

  /// Object field access; returns null Json for missing keys or non-objects.
  const Json& at(const std::string& key) const;

  /// Serialize to a compact JSON string.
  std::string dump() const;

  /// Parse a JSON document. Returns nullopt on malformed input.
  static std::optional<Json> parse(std::string_view text);

 private:
  Type type_;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  JsonArray arr_;
  JsonObject obj_;
};

/// Escape a string for inclusion in JSON output (adds surrounding quotes).
std::string json_escape(std::string_view s);

}  // namespace maestro::util
