#include "util/log.hpp"

namespace maestro::util {

std::vector<double> ToolLog::series(const std::string& key, double fallback) const {
  std::vector<double> out;
  out.reserve(iterations.size());
  for (const auto& it : iterations) out.push_back(it.value(key, fallback));
  return out;
}

std::optional<double> ToolLog::final_value(const std::string& key) const {
  if (iterations.empty()) return std::nullopt;
  const auto& vals = iterations.back().values;
  const auto it = vals.find(key);
  if (it == vals.end()) return std::nullopt;
  return it->second;
}

Json ToolLog::to_json() const {
  JsonObject obj;
  obj["tool"] = Json{tool};
  obj["design"] = Json{design};
  // Seeds are full 64-bit values; JSON numbers (doubles) lose precision past
  // 2^53, so serialize as a decimal string.
  obj["seed"] = Json{std::to_string(seed)};
  obj["completed"] = Json{completed};
  JsonObject meta;
  for (const auto& [k, v] : metadata) meta[k] = Json{v};
  obj["metadata"] = Json{std::move(meta)};
  JsonArray iters;
  for (const auto& it : iterations) {
    JsonObject rec;
    rec["iteration"] = Json{it.iteration};
    JsonObject vals;
    for (const auto& [k, v] : it.values) vals[k] = Json{v};
    rec["values"] = Json{std::move(vals)};
    iters.push_back(Json{std::move(rec)});
  }
  obj["iterations"] = Json{std::move(iters)};
  return Json{std::move(obj)};
}

std::optional<ToolLog> ToolLog::from_json(const Json& j) {
  if (!j.is_object()) return std::nullopt;
  ToolLog log;
  log.tool = j.at("tool").as_string();
  log.design = j.at("design").as_string();
  const auto& seed_field = j.at("seed");
  if (seed_field.is_string()) {
    log.seed = std::strtoull(seed_field.as_string().c_str(), nullptr, 10);
  } else {
    log.seed = static_cast<std::uint64_t>(seed_field.as_number());  // legacy files
  }
  log.completed = j.at("completed").as_bool();
  for (const auto& [k, v] : j.at("metadata").as_object()) {
    log.metadata[k] = v.as_string();
  }
  for (const auto& rec : j.at("iterations").as_array()) {
    LogIteration it;
    it.iteration = static_cast<int>(rec.at("iteration").as_number());
    for (const auto& [k, v] : rec.at("values").as_object()) {
      it.values[k] = v.as_number();
    }
    log.iterations.push_back(std::move(it));
  }
  return log;
}

}  // namespace maestro::util
