#pragma once
// Structured tool logfiles.
//
// The paper's doomed-run predictor (Section 3.3) and the METRICS system
// (Section 4) both consume tool logfiles: "Tool logfile data can be viewed as
// time series". maestro tools emit ToolLog objects: a sequence of per-
// iteration records plus free-form key/value metadata, serializable to JSON so
// that corpora of logfiles can be persisted and mined exactly like the 1400
// industry logfiles of Fig. 10.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/json.hpp"

namespace maestro::util {

/// One iteration snapshot within a tool run (e.g. one detailed-route pass).
struct LogIteration {
  int iteration = 0;
  /// Named numeric measurements at this iteration (e.g. "drvs", "wirelength").
  std::map<std::string, double> values;

  double value(const std::string& key, double fallback = 0.0) const {
    const auto it = values.find(key);
    return it != values.end() ? it->second : fallback;
  }
};

/// A complete tool-run logfile.
struct ToolLog {
  std::string tool;       ///< e.g. "detail_route"
  std::string design;     ///< design/testcase name
  std::uint64_t seed = 0; ///< RNG seed of the run, for replay
  std::map<std::string, std::string> metadata;  ///< knob settings etc.
  std::vector<LogIteration> iterations;
  bool completed = false; ///< tool ran to its final iteration

  /// Series of one metric across iterations (missing iterations -> fallback).
  std::vector<double> series(const std::string& key, double fallback = 0.0) const;

  /// Value of a metric at the final iteration, if any iterations exist.
  std::optional<double> final_value(const std::string& key) const;

  Json to_json() const;
  static std::optional<ToolLog> from_json(const Json& j);
};

}  // namespace maestro::util
