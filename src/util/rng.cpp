#include "util/rng.hpp"

#include <cmath>

namespace maestro::util {

std::uint64_t Rng::below(std::uint64_t n) {
  // Lemire-style rejection: draw until the value falls in the largest
  // multiple of n, guaranteeing exact uniformity.
  const std::uint64_t threshold = (~n + 1) % n;  // 2^64 mod n
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % n;
  }
}

double Rng::gauss() {
  if (have_spare_) {
    have_spare_ = false;
    return spare_;
  }
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double mul = std::sqrt(-2.0 * std::log(s) / s);
  spare_ = v * mul;
  have_spare_ = true;
  return u * mul;
}

double Rng::exponential(double lambda) {
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -std::log(u) / lambda;
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += (w > 0.0 ? w : 0.0);
  if (total <= 0.0) return weights.size();
  double r = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (r < w) return i;
    r -= w;
  }
  return weights.size() - 1;
}

double Rng::gamma(double shape) {
  if (shape < 1.0) {
    // Boost to shape+1 and scale back (Marsaglia-Tsang augmentation).
    const double u = uniform();
    return gamma(shape + 1.0) * std::pow(u > 0.0 ? u : 1e-300, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = 0.0;
    double v = 0.0;
    do {
      x = gauss();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) return d * v;
  }
}

double Rng::beta(double a, double b) {
  const double x = gamma(a);
  const double y = gamma(b);
  return x / (x + y);
}

}  // namespace maestro::util
