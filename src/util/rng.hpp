#pragma once
// Deterministic, seedable random number generation for reproducible experiments.
//
// All stochastic behaviour in maestro (tool noise, netlist generation, bandit
// sampling, annealing moves) flows through Rng so that every experiment is
// replayable from a single 64-bit seed. The generator is xoshiro256++, seeded
// via SplitMix64, following the reference implementations of Blackman & Vigna.

#include <array>
#include <bit>
#include <cstdint>
#include <vector>

namespace maestro::util {

/// SplitMix64 step; used to expand a single seed into a full generator state.
/// Also useful on its own as a cheap hash of integers.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256++ pseudo-random generator.
///
/// Satisfies UniformRandomBitGenerator so it can be used with <random>
/// distributions, but maestro code should prefer the member helpers, which are
/// bit-exact across platforms (libstdc++/libc++ distributions are not).
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x8badf00ddeadbeefULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& w : state_) w = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0. Uses rejection to avoid bias.
  std::uint64_t below(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Standard normal via Marsaglia polar method (deterministic given the seed).
  double gauss();

  /// Normal with given mean and standard deviation.
  double gauss(double mean, double sigma) { return mean + sigma * gauss(); }

  /// Exponential with given rate lambda (> 0).
  double exponential(double lambda);

  /// Bernoulli trial with success probability p.
  bool chance(double p) { return uniform() < p; }

  /// Sample an index from an (unnormalized, nonnegative) weight vector.
  /// Returns weights.size() if all weights are zero.
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Gamma(shape, scale=1) via Marsaglia-Tsang; shape > 0.
  double gamma(double shape);

  /// Beta(a, b) sample, a,b > 0. Used by Bernoulli Thompson sampling.
  double beta(double a, double b);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Derive an independent child generator (for parallel-in-structure use).
  Rng split() { return Rng{next() ^ 0xa02bdbf7bb3c0a7ULL}; }

  /// Serializable generator state: the four xoshiro words plus the Gaussian
  /// spare (flag, bits). Lets campaign checkpoints resume bit-exactly —
  /// restore_state(save_state()) continues the identical stream, including a
  /// pending Marsaglia spare.
  std::array<std::uint64_t, 6> save_state() const {
    return {state_[0], state_[1], state_[2], state_[3],
            have_spare_ ? std::uint64_t{1} : std::uint64_t{0},
            std::bit_cast<std::uint64_t>(spare_)};
  }
  void restore_state(const std::array<std::uint64_t, 6>& s) {
    state_ = {s[0], s[1], s[2], s[3]};
    have_spare_ = s[4] != 0;
    spare_ = std::bit_cast<double>(s[5]);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  bool have_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace maestro::util
