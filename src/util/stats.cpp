#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace maestro::util {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double mean(std::span<const double> xs) {
  RunningStats s;
  for (double x : xs) s.add(x);
  return s.mean();
}

double variance(std::span<const double> xs) {
  RunningStats s;
  for (double x : xs) s.add(x);
  return s.variance();
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double clamped = std::clamp(p, 0.0, 100.0);
  const double rank = clamped / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double median(std::span<const double> xs) { return percentile(xs, 50.0); }

double pearson(std::span<const double> xs, std::span<const double> ys) {
  const std::size_t n = std::min(xs.size(), ys.size());
  if (n < 2) return 0.0;
  const double mx = mean(xs.first(n));
  const double my = mean(ys.first(n));
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

std::size_t Histogram::total() const {
  std::size_t t = 0;
  for (std::size_t c : counts) t += c;
  return t;
}

Histogram make_histogram(std::span<const double> xs, std::size_t bins, double lo, double hi) {
  Histogram h;
  h.lo = lo;
  h.hi = hi;
  h.counts.assign(bins > 0 ? bins : 1, 0);
  if (xs.empty() || hi <= lo) return h;
  const double width = (hi - lo) / static_cast<double>(h.counts.size());
  for (double x : xs) {
    if (x < lo || x > hi) continue;
    auto idx = static_cast<std::size_t>((x - lo) / width);
    if (idx >= h.counts.size()) idx = h.counts.size() - 1;
    ++h.counts[idx];
  }
  return h;
}

Histogram make_histogram(std::span<const double> xs, std::size_t bins) {
  if (xs.empty()) return make_histogram(xs, bins, 0.0, 1.0);
  const auto [mn, mx] = std::minmax_element(xs.begin(), xs.end());
  double lo = *mn;
  double hi = *mx;
  if (hi <= lo) hi = lo + 1.0;
  return make_histogram(xs, bins, lo, hi);
}

double normal_cdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

namespace {

// Asymptotic Kolmogorov distribution Q(d*sqrt(n)) used for the KS p-value.
double ks_pvalue_from_stat(double d, std::size_t n) {
  if (n == 0) return 1.0;
  const double sn = std::sqrt(static_cast<double>(n));
  const double lambda = (sn + 0.12 + 0.11 / sn) * d;
  double sum = 0.0;
  for (int k = 1; k <= 100; ++k) {
    const double sign = (k % 2 == 1) ? 1.0 : -1.0;
    const double term = sign * std::exp(-2.0 * k * k * lambda * lambda);
    sum += term;
    if (std::abs(term) < 1e-12) break;
  }
  return std::clamp(2.0 * sum, 0.0, 1.0);
}

}  // namespace

GaussianFit fit_gaussian(std::span<const double> xs) {
  GaussianFit fit;
  if (xs.empty()) return fit;
  fit.mean = mean(xs);
  fit.sigma = stddev(xs);
  if (fit.sigma <= 0.0) {
    fit.ks_statistic = 0.0;
    fit.ks_pvalue = 1.0;
    return fit;
  }
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double n = static_cast<double>(sorted.size());
  double d = 0.0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const double cdf = normal_cdf((sorted[i] - fit.mean) / fit.sigma);
    const double lo = static_cast<double>(i) / n;
    const double hi = static_cast<double>(i + 1) / n;
    d = std::max({d, std::abs(cdf - lo), std::abs(cdf - hi)});
  }
  fit.ks_statistic = d;
  fit.ks_pvalue = ks_pvalue_from_stat(d, sorted.size());
  return fit;
}

LineFit fit_line(std::span<const double> xs, std::span<const double> ys) {
  LineFit f;
  const std::size_t n = std::min(xs.size(), ys.size());
  if (n < 2) return f;
  const double mx = mean(xs.first(n));
  const double my = mean(ys.first(n));
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0) return f;
  f.slope = sxy / sxx;
  f.intercept = my - f.slope * mx;
  f.r2 = syy > 0.0 ? (sxy * sxy) / (sxx * syy) : 1.0;
  return f;
}

}  // namespace maestro::util
