#pragma once
// Summary statistics and elementary statistical tests used throughout maestro:
// tool-noise characterisation (Fig. 3), bandit reward accounting (Fig. 7), and
// the data-mining layer of the METRICS system.

#include <cstddef>
#include <span>
#include <vector>

namespace maestro::util {

/// Streaming mean/variance accumulator (Welford's algorithm).
/// Numerically stable; O(1) per observation.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  /// Unbiased sample variance (n-1 denominator); 0 for n < 2.
  double variance() const;
  double stddev() const;
  double min() const { return n_ > 0 ? min_ : 0.0; }
  double max() const { return n_ > 0 ? max_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

double mean(std::span<const double> xs);
double variance(std::span<const double> xs);  // unbiased
double stddev(std::span<const double> xs);
/// Linear-interpolated percentile, p in [0,100]. xs need not be sorted.
double percentile(std::span<const double> xs, double p);
double median(std::span<const double> xs);

/// Pearson correlation coefficient; 0 if either side is constant.
double pearson(std::span<const double> xs, std::span<const double> ys);

/// Histogram with equal-width bins over [lo, hi].
struct Histogram {
  double lo = 0.0;
  double hi = 1.0;
  std::vector<std::size_t> counts;

  std::size_t total() const;
  double bin_width() const {
    return counts.empty() ? 0.0 : (hi - lo) / static_cast<double>(counts.size());
  }
  double bin_center(std::size_t i) const { return lo + (static_cast<double>(i) + 0.5) * bin_width(); }
};

Histogram make_histogram(std::span<const double> xs, std::size_t bins);
Histogram make_histogram(std::span<const double> xs, std::size_t bins, double lo, double hi);

/// Standard normal CDF.
double normal_cdf(double z);

/// Fitted Gaussian parameters.
struct GaussianFit {
  double mean = 0.0;
  double sigma = 0.0;
  /// Kolmogorov-Smirnov statistic of the sample against N(mean, sigma).
  double ks_statistic = 0.0;
  /// Approximate KS p-value (asymptotic Kolmogorov distribution).
  double ks_pvalue = 0.0;
};

/// Fit a Gaussian by moments and run a KS goodness-of-fit test.
/// Used to verify the "noise is essentially Gaussian" claim of Fig. 3 (right).
GaussianFit fit_gaussian(std::span<const double> xs);

/// Ordinary least squares line y = a + b*x. Returns {a, b, r2}.
struct LineFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r2 = 0.0;
};
LineFit fit_line(std::span<const double> xs, std::span<const double> ys);

}  // namespace maestro::util
