// Tests for maestro::core — the paper's contribution layer: MAB tool-run
// scheduling, robot engineers, the doomed-run guard, analysis correlation,
// flow-tree search, guardbanding, and the closed METRICS loop.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/correlation.hpp"
#include "core/doomed_guard.hpp"
#include "core/flow_search.hpp"
#include "core/guardband.hpp"
#include "core/mab_scheduler.hpp"
#include "core/metrics_loop.hpp"
#include "core/robot_engineer.hpp"

namespace mc = maestro::core;
namespace mf = maestro::flow;
namespace mn = maestro::netlist;
namespace mr = maestro::route;
namespace mt = maestro::timing;
using maestro::util::Rng;

namespace {
const mn::CellLibrary& lib() {
  static const mn::CellLibrary l = mn::make_default_library();
  return l;
}

/// A synthetic flow oracle with a crisp feasibility cliff at max_ghz: runs
/// below it succeed with high probability, above it fail. Fast (no real
/// flow), so MAB campaigns can be tested statistically.
mc::FlowOracle cliff_oracle(double max_ghz, double noise = 0.03) {
  return [max_ghz, noise](double target_ghz, std::uint64_t seed) {
    Rng rng{seed};
    mf::FlowResult res;
    res.completed = true;
    const double margin = max_ghz + rng.gauss(0.0, noise) - target_ghz;
    res.timing_met = margin > 0.0;
    res.drc_clean = true;
    res.constraints_met = true;
    res.wns_ps = margin * 100.0;
    res.area_um2 = 1000.0 + (target_ghz > max_ghz * 0.9 ? 200.0 * target_ghz : 0.0);
    res.power_mw = target_ghz * 2.0;
    res.final_drvs = 0.0;
    res.tat_minutes = 60.0;
    return res;
  };
}
}  // namespace

// ------------------------------------------------------------ MabScheduler

TEST(MabScheduler, FrequencyArmsEvenlySpaced) {
  const auto arms = mc::frequency_arms(0.5, 1.5, 5);
  ASSERT_EQ(arms.size(), 5u);
  EXPECT_DOUBLE_EQ(arms.front(), 0.5);
  EXPECT_DOUBLE_EQ(arms.back(), 1.5);
  EXPECT_NEAR(arms[1] - arms[0], 0.25, 1e-12);
}

TEST(MabScheduler, ThompsonConcentratesNearFeasibleMax) {
  mc::MabOptions opt;
  opt.frequency_arms_ghz = mc::frequency_arms(0.3, 2.0, 12);
  opt.iterations = 40;
  opt.concurrency = 5;
  opt.algorithm = mc::MabAlgorithm::Thompson;
  const mc::MabScheduler sched{opt};
  Rng rng{1};
  const auto res = sched.run(cliff_oracle(1.2), rng);
  EXPECT_EQ(res.total_runs, 200u);
  EXPECT_EQ(res.samples.size(), 200u);
  EXPECT_EQ(res.best_per_iteration.size(), 40u);
  // Best feasible found should be near (just below) the cliff.
  EXPECT_GT(res.best_feasible_ghz, 0.9);
  EXPECT_LT(res.best_feasible_ghz, 1.35);
  // Late samples concentrate near the best arm: mean late freq > mean early.
  double early = 0.0;
  double late = 0.0;
  std::size_t n_early = 0;
  std::size_t n_late = 0;
  for (const auto& s : res.samples) {
    if (s.iteration < 10) {
      early += s.frequency_ghz;
      ++n_early;
    } else if (s.iteration >= 30) {
      late += s.frequency_ghz;
      ++n_late;
    }
  }
  early /= static_cast<double>(n_early);
  late /= static_cast<double>(n_late);
  // Early sampling is exploratory (spread over 0.3..2.0, mean ~1.15);
  // late sampling should sit close below the 1.2 cliff.
  EXPECT_GT(late, 0.85);
  EXPECT_LT(late, 1.45);
  // Most late samples succeed.
  std::size_t late_success = 0;
  for (const auto& s : res.samples) {
    if (s.iteration >= 30 && s.success) ++late_success;
  }
  EXPECT_GT(static_cast<double>(late_success) / static_cast<double>(n_late), 0.5);
}

TEST(MabScheduler, ThompsonBeatsEpsilonGreedyOnRegret) {
  // Average across seeds, as in the paper's robustness claim for TS.
  double ts_regret = 0.0;
  double eg_regret = 0.0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    mc::MabOptions opt;
    opt.frequency_arms_ghz = mc::frequency_arms(0.3, 2.0, 10);
    opt.iterations = 30;
    opt.concurrency = 5;
    opt.algorithm = mc::MabAlgorithm::Thompson;
    Rng r1{seed};
    ts_regret += mc::MabScheduler{opt}.run(cliff_oracle(1.2), r1).total_regret;
    opt.algorithm = mc::MabAlgorithm::EpsilonGreedy;
    opt.epsilon = 0.3;
    Rng r2{seed};
    eg_regret += mc::MabScheduler{opt}.run(cliff_oracle(1.2), r2).total_regret;
  }
  EXPECT_LT(ts_regret, eg_regret);
}

TEST(MabScheduler, RegretOrderingMatchesFig7) {
  // The paper's Fig. 7 robustness claim, as a regret ordering on the
  // synthetic cliff oracle: Thompson < e-greedy < softmax at equal budget.
  // Regret is charged against the best *feasible* arm's empirical mean, so a
  // policy that keeps sampling infeasible (reward-0) frequencies pays for it.
  auto campaign_regret = [](mc::MabAlgorithm alg, double param) {
    double total = 0.0;
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
      mc::MabOptions opt;
      opt.frequency_arms_ghz = mc::frequency_arms(0.3, 2.0, 10);
      opt.iterations = 30;
      opt.concurrency = 5;
      opt.algorithm = alg;
      if (alg == mc::MabAlgorithm::EpsilonGreedy) opt.epsilon = param;
      if (alg == mc::MabAlgorithm::Softmax) opt.tau = param;
      Rng rng{seed};
      const auto res = mc::MabScheduler{opt}.run(cliff_oracle(1.2), rng);
      EXPECT_GE(res.total_regret, 0.0);  // clamped, never negative
      total += res.total_regret;
    }
    return total / 6.0;
  };
  const double ts = campaign_regret(mc::MabAlgorithm::Thompson, 0.0);
  const double eg = campaign_regret(mc::MabAlgorithm::EpsilonGreedy, 0.3);
  const double sm = campaign_regret(mc::MabAlgorithm::Softmax, 0.5);
  EXPECT_LT(ts, eg);
  EXPECT_LT(eg, sm);
}

TEST(MabScheduler, RegretChargedAgainstBestFeasibleArm) {
  // With a cliff at 1.0 and arms {0.5, 0.9, 1.8}, the 1.8 arm always fails
  // (reward 0): the regret baseline must be the best *feasible* arm (0.9),
  // not the highest frequency. An always-best-arm campaign has ~0 regret;
  // one that wastes pulls above the cliff pays ~0.9 per wasted pull.
  mc::MabOptions opt;
  opt.frequency_arms_ghz = {0.5, 0.9, 1.8};
  opt.iterations = 20;
  opt.concurrency = 5;
  opt.algorithm = mc::MabAlgorithm::Thompson;
  Rng rng{3};
  const auto res = mc::MabScheduler{opt}.run(cliff_oracle(1.0, /*noise=*/0.001), rng);
  // Thompson locks onto 0.9 quickly: per-run average regret is well under
  // the 0.9 paid for every infeasible/suboptimal pull.
  EXPECT_GE(res.total_regret, 0.0);
  EXPECT_LT(res.total_regret / static_cast<double>(res.total_runs), 0.3);
  EXPECT_NEAR(res.best_feasible_ghz, 0.9, 1e-9);
}

TEST(MabScheduler, AllAlgorithmsRun) {
  for (const auto alg : {mc::MabAlgorithm::Thompson, mc::MabAlgorithm::Softmax,
                         mc::MabAlgorithm::EpsilonGreedy, mc::MabAlgorithm::Ucb1}) {
    mc::MabOptions opt;
    opt.frequency_arms_ghz = mc::frequency_arms(0.5, 1.5, 6);
    opt.iterations = 10;
    opt.concurrency = 2;
    opt.algorithm = alg;
    Rng rng{3};
    const auto res = mc::MabScheduler{opt}.run(cliff_oracle(1.0), rng);
    EXPECT_EQ(res.total_runs, 20u) << mc::to_string(alg);
    EXPECT_GT(res.successful_runs, 0u) << mc::to_string(alg);
  }
}

TEST(MabScheduler, RealFlowOracleIntegration) {
  mf::FlowManager fm{lib()};
  mf::DesignSpec design;
  design.kind = mf::DesignSpec::Kind::RandomLogic;
  design.scale = 1;
  design.name = "mab_int";
  const auto oracle = mc::make_flow_oracle(fm, design, mf::FlowTrajectory{},
                                           mf::FlowConstraints{});
  mc::MabOptions opt;
  opt.frequency_arms_ghz = mc::frequency_arms(0.6, 1.8, 7);
  opt.iterations = 6;
  opt.concurrency = 2;
  const mc::MabScheduler sched{opt};
  Rng rng{5};
  const auto res = sched.run(oracle, rng);
  EXPECT_EQ(res.total_runs, 12u);
  EXPECT_GT(res.best_feasible_ghz, 0.0);  // something at/below ~1.4 succeeds
}

// ----------------------------------------------------------- RobotEngineer

TEST(RobotEngineer, SucceedsImmediatelyOnEasyTask) {
  mf::FlowManager fm{lib()};
  mc::RobotEngineer robot{fm};
  mf::FlowRecipe recipe;
  recipe.design.kind = mf::DesignSpec::Kind::RandomLogic;
  recipe.design.scale = 1;
  recipe.design.name = "easy";
  recipe.target_ghz = 0.7;
  recipe.seed = 7;
  Rng rng{7};
  const auto out = robot.execute(recipe, mf::FlowConstraints{}, rng);
  EXPECT_TRUE(out.succeeded);
  EXPECT_EQ(out.attempts, 1);
  EXPECT_TRUE(out.journal.empty());
}

TEST(RobotEngineer, BacksOffFrequencyOnHardTask) {
  mf::FlowManager fm{lib()};
  mc::RobotOptions ro;
  ro.max_attempts = 8;
  ro.frequency_backoff_ghz = 0.2;
  mc::RobotEngineer robot{fm, ro};
  mf::FlowRecipe recipe;
  recipe.design.kind = mf::DesignSpec::Kind::RandomLogic;
  recipe.design.scale = 1;
  recipe.design.name = "hard";
  recipe.target_ghz = 2.2;  // infeasible; needs backoff
  recipe.seed = 9;
  Rng rng{9};
  const auto out = robot.execute(recipe, mf::FlowConstraints{}, rng);
  EXPECT_TRUE(out.succeeded);
  EXPECT_GT(out.attempts, 1);
  EXPECT_LT(out.final_target_ghz, 2.2);
  EXPECT_FALSE(out.journal.empty());
  // Journal entries carry diagnosis + remedy text.
  for (const auto& a : out.journal) {
    EXPECT_FALSE(a.diagnosis.empty());
    EXPECT_FALSE(a.remedy.empty());
  }
  // TAT accumulates across attempts.
  EXPECT_GT(out.total_tat_minutes, out.result.tat_minutes - 1e-9);
}

TEST(RobotEngineer, RespectsAttemptBudget) {
  mf::FlowManager fm{lib()};
  mc::RobotOptions ro;
  ro.max_attempts = 2;
  ro.allow_frequency_backoff = false;  // cannot fix timing any other way
  mc::RobotEngineer robot{fm, ro};
  mf::FlowRecipe recipe;
  recipe.design.kind = mf::DesignSpec::Kind::RandomLogic;
  recipe.design.scale = 1;
  recipe.design.name = "stuck";
  recipe.target_ghz = 4.0;
  recipe.seed = 11;
  Rng rng{11};
  const auto out = robot.execute(recipe, mf::FlowConstraints{}, rng);
  EXPECT_FALSE(out.succeeded);
  EXPECT_EQ(out.attempts, 2);
}

// ---------------------------------------------------------- DoomedRunGuard

namespace {
std::vector<mr::DrvRun> corpus(mr::CorpusKind kind, std::size_t n, std::uint64_t seed) {
  mr::DrvSimOptions opt;
  opt.seed = seed;
  Rng rng{seed};
  return mr::make_drv_corpus(kind, n, opt, rng);
}
}  // namespace

TEST(DoomedRunGuard, TrainsAndRendersCard) {
  const auto train = corpus(mr::CorpusKind::ArtificialLayouts, 300, 1);
  mc::DoomedRunGuard guard;
  guard.train(train);
  EXPECT_TRUE(guard.trained());
  const auto& card = guard.card();
  EXPECT_EQ(card.violation_bins(), guard.options().violation_bins);
  EXPECT_EQ(card.delta_bins(), guard.options().delta_bins);
  // Some cells STOP, some GO.
  EXPECT_GT(card.stop_fraction(), 0.05);
  EXPECT_LT(card.stop_fraction(), 0.95);
  const auto text = card.render();
  EXPECT_NE(text.find('S'), std::string::npos);
  EXPECT_FALSE(text.empty());
}

TEST(DoomedRunGuard, CardFollowsFillInRules) {
  const auto train = corpus(mr::CorpusKind::ArtificialLayouts, 200, 3);
  mc::DoomedRunGuard guard;
  guard.train(train);
  const auto& card = guard.card();
  const std::size_t V = card.violation_bins();
  const std::size_t D = card.delta_bins();
  // Footnote-5 rule (iii): very large violations, untrained cells -> STOP.
  for (std::size_t d = 0; d < D; ++d) {
    const std::size_t v = V - 1;
    if (!card.seen_in_training(v, d)) {
      EXPECT_TRUE(card.stop_at(v, d)) << "v=" << v << " d=" << d;
    }
  }
  // Rule (iv): small violations, flat slope, untrained -> GO.
  const std::size_t mid_d = D / 2;
  if (!card.seen_in_training(0, mid_d)) {
    EXPECT_FALSE(card.stop_at(0, mid_d));
  }
}

TEST(DoomedRunGuard, ConsecutiveStopsReduceType1Errors) {
  const auto train = corpus(mr::CorpusKind::ArtificialLayouts, 600, 5);
  const auto test = corpus(mr::CorpusKind::CpuFloorplans, 800, 7);
  mc::DoomedRunGuard guard;
  guard.train(train);
  const auto e1 = guard.evaluate(test, 1);
  const auto e2 = guard.evaluate(test, 2);
  const auto e3 = guard.evaluate(test, 3);
  // The paper's central Table-1 trend: error rate falls sharply with the
  // consecutive-STOP requirement; Type-1 errors (wrong stops) shrink.
  EXPECT_GT(e1.error_rate(), e2.error_rate());
  EXPECT_GE(e2.error_rate(), e3.error_rate());
  EXPECT_GT(e1.type1, e2.type1);
  EXPECT_GE(e2.type1, e3.type1);
  // Strict-stop error should be small (paper: ~4%).
  EXPECT_LT(e3.error_rate(), 0.15);
  // Type-2 errors stay low in absolute terms.
  EXPECT_LT(e3.type2, test.size() / 10);
  // Doomed runs save iterations when stopped.
  EXPECT_GT(e1.iterations_saved, 0u);
  EXPECT_EQ(e1.total_runs, test.size());
}

TEST(DoomedRunGuard, StopsObviouslyDoomedRun) {
  const auto train = corpus(mr::CorpusKind::ArtificialLayouts, 400, 9);
  mc::DoomedRunGuard guard;
  guard.train(train);
  // A run pinned at very high DRVs with positive slope must trigger STOP.
  EXPECT_TRUE(guard.stop_signal(50000.0, 5000.0, 45000.0));
}

TEST(DoomedRunGuard, MonitorStopsLiveFlowRoute) {
  const auto train = corpus(mr::CorpusKind::ArtificialLayouts, 400, 11);
  mc::DoomedRunGuard guard;
  guard.train(train);

  mf::FlowManager fm{lib()};
  mf::FlowRecipe recipe;
  recipe.design.kind = mf::DesignSpec::Kind::RandomLogic;
  recipe.design.scale = 1;
  recipe.design.name = "guarded";
  recipe.target_ghz = 1.0;
  recipe.seed = 13;
  // Force a hard route by cranking utilization.
  recipe.knobs.set(mf::FlowStep::Floorplan, "utilization", "0.95");
  auto monitor = guard.monitor(2);
  recipe.route_monitor = [&monitor](int it, double drvs, double delta) {
    return monitor(it, drvs, delta);
  };
  const auto res = fm.run(recipe);
  EXPECT_TRUE(res.completed);  // flow completes even if route stopped early
}

// -------------------------------------------------------- CorrelationModel

namespace {
struct CorrFixture {
  std::vector<mc::EndpointPair> train;
  std::vector<mc::EndpointPair> test;
};

CorrFixture correlation_fixture() {
  CorrFixture fx;
  mf::FlowManager fm{lib()};
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    mf::FlowRecipe recipe;
    recipe.design.kind = mf::DesignSpec::Kind::RandomLogic;
    recipe.design.scale = 1;
    recipe.design.name = "corr" + std::to_string(seed);
    recipe.design.rtl_seed = seed;
    recipe.target_ghz = 1.2;
    recipe.seed = seed;
    mf::DesignState state;
    fm.run_keep_state(recipe, mf::FlowConstraints{}, state);

    mt::StaOptions gba;
    gba.mode = mt::AnalysisMode::GraphBased;
    gba.clock_period_ps = 1000.0 / 1.2;
    const auto rep_gba = mt::run_sta(*state.pl, state.clock, gba);
    mt::StaOptions signoff;
    signoff.mode = mt::AnalysisMode::PathBased;
    signoff.with_si = true;
    signoff.clock_period_ps = 1000.0 / 1.2;
    const auto rep_so = mt::run_sta(*state.pl, state.clock, signoff, &state.routed);

    const auto pairs = mc::pair_endpoints(rep_gba, rep_so);
    auto& dst = seed <= 3 ? fx.train : fx.test;
    dst.insert(dst.end(), pairs.begin(), pairs.end());
  }
  return fx;
}
}  // namespace

TEST(CorrelationModel, LearnsGbaToSignoffCorrection) {
  const auto fx = correlation_fixture();
  ASSERT_GT(fx.train.size(), 50u);
  ASSERT_GT(fx.test.size(), 10u);
  mc::CorrelationModel model{mc::CorrelationModel::Learner::BoostedStumps};
  model.fit(fx.train);
  const auto rep = model.evaluate(fx.test);
  // Raw GBA is pessimistic (negative bias vs signoff slack).
  EXPECT_LT(rep.raw.bias_ps, 0.0);
  // The learned correction cuts the mean absolute miscorrelation
  // substantially — "accuracy for free" (Fig. 8).
  EXPECT_LT(rep.corrected.mean_abs_error_ps, 0.5 * rep.raw.mean_abs_error_ps);
}

TEST(CorrelationModel, AllLearnersImprove) {
  const auto fx = correlation_fixture();
  for (const auto learner :
       {mc::CorrelationModel::Learner::Ridge, mc::CorrelationModel::Learner::BoostedStumps,
        mc::CorrelationModel::Learner::Knn}) {
    mc::CorrelationModel model{learner};
    model.fit(fx.train);
    const auto rep = model.evaluate(fx.test);
    EXPECT_LT(rep.corrected.mean_abs_error_ps, rep.raw.mean_abs_error_ps)
        << static_cast<int>(learner);
  }
}

TEST(CorrelationStats, PerfectEstimateZeroError) {
  const std::vector<double> ref = {1.0, -2.0, 3.0};
  const auto s = mc::correlation_stats(ref, ref);
  EXPECT_DOUBLE_EQ(s.mean_abs_error_ps, 0.0);
  EXPECT_DOUBLE_EQ(s.bias_ps, 0.0);
  EXPECT_DOUBLE_EQ(s.r2, 1.0);
}

// ------------------------------------------------------------ FlowSearch

namespace {
/// Synthetic trajectory oracle: cost depends on two knobs so search has a
/// signal; deterministic given (trajectory, seed) modulo small noise.
mc::TrajectoryOracle knob_oracle() {
  return [](const mf::FlowTrajectory& t, std::uint64_t seed) {
    Rng rng{seed};
    mf::FlowResult res;
    res.completed = true;
    res.timing_met = true;
    res.drc_clean = true;
    res.constraints_met = true;
    const double util = std::stod(t.value(mf::FlowStep::Floorplan, "utilization", "0.70"));
    const std::string effort = t.value(mf::FlowStep::Place, "effort", "medium");
    // Higher utilization -> smaller area; high effort -> better wns.
    res.area_um2 = 3000.0 * (1.0 - util) + rng.gauss(0.0, 5.0);
    res.wns_ps = effort == "high" ? 10.0 : (effort == "medium" ? -5.0 : -30.0);
    res.power_mw = 2.0;
    return res;
  };
}
}  // namespace

TEST(QorCost, PenalizesFailuresAndViolations) {
  mf::FlowResult good;
  good.completed = true;
  good.wns_ps = 10.0;
  good.area_um2 = 1000.0;
  mf::FlowResult bad_timing = good;
  bad_timing.wns_ps = -50.0;
  mf::FlowResult incomplete;
  incomplete.completed = false;
  EXPECT_LT(mc::qor_cost(good), mc::qor_cost(bad_timing));
  EXPECT_GT(mc::qor_cost(incomplete), 1e5);
}

TEST(FlowTreeSearch, AllStrategiesImprove) {
  const auto spaces = mf::default_knob_spaces();
  for (const auto strat : {mc::SearchStrategy::RandomMultistart,
                           mc::SearchStrategy::AdaptiveMultistart, mc::SearchStrategy::Gwtw}) {
    mc::FlowSearchOptions opt;
    opt.strategy = strat;
    opt.population = 5;
    opt.rounds = 6;
    const mc::FlowTreeSearch search{spaces, opt};
    Rng rng{21};
    const auto res = search.run(knob_oracle(), rng);
    EXPECT_EQ(res.best_per_round.size(), 6u) << mc::to_string(strat);
    EXPECT_LE(res.best_per_round.back(), res.best_per_round.front()) << mc::to_string(strat);
    EXPECT_EQ(res.flow_runs, 30u) << mc::to_string(strat);
    // The search should discover high utilization + high effort.
    const double util =
        std::stod(res.best_trajectory.value(mf::FlowStep::Floorplan, "utilization", "0"));
    EXPECT_GE(util, 0.70) << mc::to_string(strat);
  }
}

TEST(FlowTreeSearch, GwtwCompetitiveWithRandomAtEqualBudget) {
  const auto spaces = mf::default_knob_spaces();
  double gwtw_total = 0.0;
  double rand_total = 0.0;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    mc::FlowSearchOptions opt;
    opt.population = 5;
    opt.rounds = 8;
    opt.strategy = mc::SearchStrategy::Gwtw;
    Rng r1{seed};
    gwtw_total += mc::FlowTreeSearch{spaces, opt}.run(knob_oracle(), r1).best_cost;
    opt.strategy = mc::SearchStrategy::RandomMultistart;
    Rng r2{seed};
    rand_total += mc::FlowTreeSearch{spaces, opt}.run(knob_oracle(), r2).best_cost;
  }
  EXPECT_LE(gwtw_total, rand_total * 1.1 + 1.0);
}

// ------------------------------------------------------------- Guardband

TEST(GuardbandAnalyzer, SweepFindsAchievableAndGuardbanded) {
  mf::FlowManager fm{lib()};
  mf::DesignSpec design;
  design.kind = mf::DesignSpec::Kind::RandomLogic;
  design.scale = 1;
  design.name = "gb";
  const mc::GuardbandAnalyzer analyzer{fm, design, mf::FlowTrajectory{}};
  Rng rng{23};
  const auto sweep = analyzer.sweep({0.8, 1.1, 1.3, 1.5}, 6, 0.99, rng);
  ASSERT_EQ(sweep.points.size(), 4u);
  EXPECT_GT(sweep.max_achievable_ghz, 0.0);
  // Guardbanded (aim-low) frequency never exceeds the achievable one.
  EXPECT_LE(sweep.guardbanded_ghz, sweep.max_achievable_ghz);
  // Success degrades with target.
  EXPECT_GE(sweep.points.front().success_rate, sweep.points.back().success_rate);
}

TEST(GuardbandAnalyzer, AreaNoiseFitNearMaxFrequency) {
  mf::FlowManager fm{lib()};
  mf::DesignSpec design;
  design.kind = mf::DesignSpec::Kind::RandomLogic;
  design.scale = 1;
  design.name = "gfit";
  const mc::GuardbandAnalyzer analyzer{fm, design, mf::FlowTrajectory{}};
  Rng rng{25};
  const auto fit = analyzer.area_noise_fit(1.45, 24, rng);
  EXPECT_GT(fit.sigma, 0.0);  // there IS noise near the limit
  EXPECT_GT(fit.mean, 0.0);
}

TEST(PartitionStudy, MorePartitionsFasterAndMoreCut) {
  mf::FlowManager fm{lib()};
  mf::DesignSpec design;
  design.kind = mf::DesignSpec::Kind::RandomLogic;
  design.gates_override = 1200;
  design.name = "part";
  mc::PartitionStudyOptions opt;
  opt.block_counts = {1, 4, 16};
  opt.seeds_per_block = 3;
  opt.target_ghz = 1.0;
  Rng rng{27};
  const auto points = mc::partition_study(fm, lib(), design, opt, rng);
  ASSERT_EQ(points.size(), 3u);
  EXPECT_EQ(points[0].cut_nets, 0u);
  EXPECT_GT(points[2].cut_nets, points[1].cut_nets);
  // Parallel TAT shrinks with partitioning (blocks are smaller).
  EXPECT_LT(points[2].tat_minutes, points[0].tat_minutes);
  for (const auto& p : points) EXPECT_GT(p.achieved_quality, 0.0);
}

// ------------------------------------------------------------ MetricsLoop

TEST(MetricsLoop, RunsAndAdaptsWithoutHuman) {
  mf::FlowManager fm{lib()};
  maestro::metrics::Server server;
  mc::MetricsLoopOptions opt;
  opt.batches = 3;
  opt.runs_per_batch = 4;
  opt.target_metric = maestro::metrics::names::kAreaUm2;
  opt.minimize = true;
  const mc::MetricsLoop loop{fm, server, mf::default_knob_spaces(), opt};
  mf::DesignSpec design;
  design.kind = mf::DesignSpec::Kind::RandomLogic;
  design.scale = 1;
  design.name = "loop";
  Rng rng{29};
  const auto res = loop.run(design, 0.8, rng);
  EXPECT_EQ(res.batches.size(), 3u);
  EXPECT_EQ(res.total_runs, 12u);
  // Server accumulated all runs (flow + step records).
  EXPECT_GE(server.size(), 12u);
  // Mining produced settings for at least the utilization knob.
  EXPECT_FALSE(res.mined_settings.empty());
  // The adapted trajectory is legal (values come from the spaces).
  const auto spaces = mf::default_knob_spaces();
  for (const auto& s : spaces) {
    for (const auto& k : s.knobs) {
      const auto& v = res.final_trajectory.value(s.step, k.name, "?");
      EXPECT_NE(std::find(k.values.begin(), k.values.end(), v), k.values.end());
    }
  }
}
