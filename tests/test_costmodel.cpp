// Unit tests for maestro::costmodel — calibration against the paper's
// footnote-1 dollar figures and the Fig. 1 capability-gap shape.

#include <gtest/gtest.h>

#include "costmodel/cost_model.hpp"

namespace mc = maestro::costmodel;

TEST(Roadmap, NodesDensityDoubles) {
  const auto nodes = mc::roadmap_nodes();
  ASSERT_GE(nodes.size(), 10u);
  for (std::size_t i = 1; i < nodes.size(); ++i) {
    EXPECT_GT(nodes[i].year, nodes[i - 1].year);
    EXPECT_LT(nodes[i].feature_nm, nodes[i - 1].feature_nm);
    EXPECT_GT(nodes[i].available_mtx_per_mm2, nodes[i - 1].available_mtx_per_mm2);
  }
}

TEST(CapabilityGap, ClosedBefore2001OpenAfter) {
  const auto series = mc::capability_gap_series(1995, 2015);
  ASSERT_EQ(series.size(), 21u);
  for (const auto& p : series) {
    if (p.year <= 2001) {
      EXPECT_NEAR(p.gap_factor, 1.0, 1e-9) << p.year;
    }
  }
  // Gap grows monotonically after 2001 and is substantial by 2015.
  double prev = 1.0;
  for (const auto& p : series) {
    EXPECT_GE(p.gap_factor, prev - 1e-12);
    prev = p.gap_factor;
  }
  EXPECT_GT(series.back().gap_factor, 3.0);
  EXPECT_LT(series.back().gap_factor, 10.0);
  // Realized density still grows in absolute terms.
  EXPECT_GT(series.back().realized_mtx_per_mm2, series.front().realized_mtx_per_mm2);
}

TEST(CostModel, Calibration2013WithInnovation) {
  const mc::DesignCostModel model;
  // Footnote 1: $45.4M in 2013 with the full DT innovation schedule.
  EXPECT_NEAR(model.design_cost_musd(2013, 2013), 45.4, 45.4 * 0.10);
}

TEST(CostModel, CalibrationFrozen2000) {
  const mc::DesignCostModel model;
  // Footnote 1: without post-2000 innovations, ~$1B in 2013...
  EXPECT_NEAR(model.design_cost_musd(2013, 2000), 1000.0, 250.0);
  // ...reaching ~$70B in 2028.
  EXPECT_NEAR(model.design_cost_musd(2028, 2000), 70000.0, 20000.0);
}

TEST(CostModel, CalibrationFrozen2013) {
  const mc::DesignCostModel model;
  // Footnote 1: absent post-2013 innovation, $45.4M grows to ~$3.4B by 2028.
  EXPECT_NEAR(model.design_cost_musd(2028, 2013), 3400.0, 850.0);
}

TEST(CostModel, InnovationKeepsCostTensOfMillions) {
  const mc::DesignCostModel model;
  // "a ceiling of several tens of $M through the coming 15-year horizon".
  for (int year = 2005; year <= 2028; ++year) {
    const double cost = model.design_cost_musd(year, year);
    EXPECT_LT(cost, 150.0) << year;
    EXPECT_GT(cost, 5.0) << year;
  }
}

TEST(CostModel, ProductivityMonotoneAndFrozen) {
  const mc::DesignCostModel model;
  EXPECT_GT(model.productivity(2013, 2013), model.productivity(2000, 2000));
  // Freezing caps productivity regardless of year.
  EXPECT_DOUBLE_EQ(model.productivity(2028, 2000), model.productivity(2000, 2000));
  EXPECT_GT(model.productivity(2028, 2028), model.productivity(2028, 2013));
}

TEST(CostModel, TransistorDemandGrows) {
  const mc::DesignCostModel model;
  EXPECT_NEAR(model.transistor_demand(2013), 4.0e9, 1e3);
  EXPECT_GT(model.transistor_demand(2020), model.transistor_demand(2013));
  // ~75x over 15 years per the calibrated CAGR.
  EXPECT_NEAR(model.transistor_demand(2028) / model.transistor_demand(2013), 75.0, 8.0);
}

TEST(CostModel, VerificationShareGrowsAndCaps) {
  const mc::DesignCostModel model;
  EXPECT_LT(model.verification_share(1995), model.verification_share(2010));
  EXPECT_LE(model.verification_share(2050), 0.62);
  EXPECT_GE(model.verification_share(1990), 0.0);
}

TEST(CostModel, TrendSeriesConsistent) {
  const mc::DesignCostModel model;
  const auto series = mc::cost_trend_series(model, 1995, 2028, 1);
  ASSERT_EQ(series.size(), 34u);
  for (const auto& p : series) {
    EXPECT_NEAR(p.verification_cost_musd,
                p.design_cost_musd * model.verification_share(p.year), 1e-9);
    // Frozen scenarios are never cheaper than the innovated one (for years
    // past the freeze).
    if (p.year > 2000) EXPECT_GE(p.cost_frozen_2000_musd, p.design_cost_musd - 1e-9);
    if (p.year > 2013) EXPECT_GE(p.cost_frozen_2013_musd, p.design_cost_musd - 1e-9);
  }
  // Cost explosion visible: frozen-2000 2028 cost is ~1000x innovated cost.
  EXPECT_GT(series.back().cost_frozen_2000_musd / series.back().design_cost_musd, 200.0);
}

TEST(CostModel, InnovationScheduleWellFormed) {
  const auto sched = mc::dt_innovation_schedule();
  ASSERT_GE(sched.size(), 10u);
  for (std::size_t i = 1; i < sched.size(); ++i) {
    EXPECT_GE(sched[i].year, sched[i - 1].year);
  }
  for (const auto& dt : sched) {
    EXPECT_GT(dt.productivity_multiplier, 1.0) << dt.name;
    EXPECT_LT(dt.productivity_multiplier, 3.0) << dt.name;
    EXPECT_FALSE(dt.name.empty());
  }
}

TEST(CostModel, CustomParams) {
  mc::CostModelParams params;
  params.transistors_2013 = 8.0e9;  // double the demand
  const mc::DesignCostModel model{params};
  const mc::DesignCostModel base;
  EXPECT_NEAR(model.design_cost_musd(2013, 2013) / base.design_cost_musd(2013, 2013), 2.0,
              1e-9);
}
