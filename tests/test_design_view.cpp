// Equivalence and invalidation suite for netlist::DesignView and its
// consumers (own binary, ctest label "view", TSan-able via
// -DMAESTRO_SANITIZE=thread):
//   * structural/geometry queries match the Netlist/Placement ground truth,
//   * cached bboxes and the running HPWL total survive randomized
//     move/swap/undo sequences through the trial/commit protocol,
//   * sa_place is bitwise identical to the seed annealer across seeds and
//     configs,
//   * batched multi-seed DRV simulation matches the scalar runs per seed,
//     serially and chunk-parallel on a RunExecutor,
//   * the congestion, global-route and timing-graph view paths match their
//     pin-scanning equivalents,
//   * revision counters detect staleness and trigger exactly the right
//     rebuilds.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "exec/executor.hpp"
#include "netlist/design_view.hpp"
#include "netlist/generators.hpp"
#include "opt/gwtw.hpp"
#include "place/placer.hpp"
#include "route/drv_sim.hpp"
#include "route/global_router.hpp"
#include "timing/clock_tree.hpp"
#include "timing/timing_graph.hpp"
#include "util/rng.hpp"

using namespace maestro;

namespace {

struct ViewFixture {
  const netlist::CellLibrary& lib;
  netlist::Netlist nl;
  place::Floorplan fp;
  place::Placement pl;

  explicit ViewFixture(std::size_t gates, std::uint64_t seed = 1)
      : lib(default_lib()),
        nl(make_nl(lib, gates, seed)),
        fp(place::Floorplan::for_netlist(nl, 0.7)),
        pl(make_pl(nl, fp, seed)) {}

  static const netlist::CellLibrary& default_lib() {
    static const netlist::CellLibrary l = netlist::make_default_library();
    return l;
  }
  static netlist::Netlist make_nl(const netlist::CellLibrary& l, std::size_t gates,
                                  std::uint64_t seed) {
    netlist::RandomLogicSpec spec;
    spec.gates = gates;
    spec.seed = seed;
    return netlist::make_random_logic(l, spec);
  }
  static place::Placement make_pl(const netlist::Netlist& nl, const place::Floorplan& fp,
                                  std::uint64_t seed) {
    util::Rng rng{seed};
    place::Placement pl = place::random_placement(nl, fp, rng);
    place::legalize(pl);
    return pl;
  }
};

/// A random snapped in-core origin (the SA move distribution at full range).
geom::Point random_origin(const place::Floorplan& fp, util::Rng& rng) {
  const auto& core = fp.core();
  geom::Point cand{
      core.lo.x + static_cast<geom::Dbu>(rng.below(static_cast<std::uint64_t>(core.width()))),
      core.lo.y + static_cast<geom::Dbu>(rng.below(static_cast<std::uint64_t>(core.height())))};
  return fp.snap(cand);
}

}  // namespace

TEST(DesignView, StructureAndGeometryMatchGroundTruth) {
  ViewFixture f{400};
  netlist::DesignView view{f.nl};
  EXPECT_FALSE(view.geometry_valid());
  EXPECT_TRUE(view.sync(f.pl.locs(), f.pl.revision()));
  EXPECT_TRUE(view.in_sync(f.nl.revision(), f.pl.revision()));
  // Second sync with unchanged revisions is a no-op.
  EXPECT_FALSE(view.sync(f.pl.locs(), f.pl.revision()));

  ASSERT_EQ(view.cell_count(), f.nl.instance_count());
  ASSERT_EQ(view.net_count(), f.nl.net_count());

  for (std::size_t n = 0; n < f.nl.net_count(); ++n) {
    const auto id = static_cast<netlist::NetId>(n);
    const auto& net = f.nl.net(id);
    const auto pins = view.pins_of(id);
    ASSERT_EQ(pins.size(), net.sinks.size() + 1);
    EXPECT_EQ(pins[0], net.driver);
    EXPECT_EQ(view.net_driver(id), net.driver);
    EXPECT_EQ(view.net_fanout(id), net.sinks.size());
    for (std::size_t s = 0; s < net.sinks.size(); ++s) {
      EXPECT_EQ(pins[s + 1], net.sinks[s].instance);
    }
    EXPECT_EQ(view.net_hpwl(id), f.pl.net_hpwl(id));
  }
  for (std::size_t i = 0; i < f.nl.instance_count(); ++i) {
    const auto id = static_cast<netlist::InstanceId>(i);
    EXPECT_EQ(view.pin(id), f.pl.pin_of(id));
    // nets_of is dedup'd and ascending — the seed placer's contract.
    const auto nets = view.nets_of(id);
    for (std::size_t k = 1; k < nets.size(); ++k) EXPECT_LT(nets[k - 1], nets[k]);
  }
  EXPECT_EQ(view.total_hpwl(), f.pl.total_hpwl());
}

TEST(DesignView, TrialCommitSurvivesRandomMoveSwapUndo) {
  ViewFixture f{300, 5};
  netlist::DesignView view{f.nl};
  view.sync(f.pl.locs(), f.pl.revision());

  std::vector<netlist::InstanceId> movable;
  for (std::size_t i = 0; i < f.nl.instance_count(); ++i) {
    const auto id = static_cast<netlist::InstanceId>(i);
    const auto fn = f.nl.master_of(id).function;
    if (fn != netlist::CellFunction::Input && fn != netlist::CellFunction::Output) {
      movable.push_back(id);
    }
  }

  util::Rng rng{99};
  const std::int64_t start_hpwl = view.total_hpwl();
  for (int op = 0; op < 1500; ++op) {
    const double kind = rng.uniform();
    if (kind < 0.4) {  // move, commit
      const auto a = movable[rng.below(movable.size())];
      const geom::Point target = random_origin(f.fp, rng);
      const geom::Point orig = f.pl.loc(a);
      const std::int64_t before = f.pl.total_hpwl();
      const std::int64_t delta = view.trial_move(a, target);
      f.pl.set_loc(a, target);
      view.commit(f.pl.revision());
      EXPECT_EQ(f.pl.total_hpwl(), before + delta);
      if (kind < 0.1) {  // ...and undo it (the SA reject-after-apply shape)
        const std::int64_t back = view.trial_move(a, orig);
        EXPECT_EQ(back, -delta);
        f.pl.set_loc(a, orig);
        view.commit(f.pl.revision());
      }
    } else if (kind < 0.7) {  // swap, commit
      const auto a = movable[rng.below(movable.size())];
      const auto b = movable[rng.below(movable.size())];
      if (a == b) continue;
      const geom::Point pa = f.pl.loc(a);
      const geom::Point pb = f.pl.loc(b);
      const std::int64_t before = f.pl.total_hpwl();
      const std::int64_t delta = view.trial_swap(a, pb, b, pa);
      f.pl.set_loc(a, pb);
      f.pl.set_loc(b, pa);
      view.commit(f.pl.revision());
      EXPECT_EQ(f.pl.total_hpwl(), before + delta);
    } else {  // trial + discard must leave every cache untouched
      const auto a = movable[rng.below(movable.size())];
      const std::int64_t hpwl = view.total_hpwl();
      (void)view.trial_move(a, random_origin(f.fp, rng));
      view.discard();
      EXPECT_EQ(view.total_hpwl(), hpwl);
    }
    ASSERT_TRUE(view.in_sync(f.nl.revision(), f.pl.revision()));
    ASSERT_EQ(view.total_hpwl(), f.pl.total_hpwl());
    // Spot-check a few cached bboxes against a raw pin rescan.
    for (int k = 0; k < 3; ++k) {
      const auto n = static_cast<netlist::NetId>(rng.below(f.nl.net_count()));
      EXPECT_EQ(view.net_hpwl(n), f.pl.net_hpwl(n));
    }
  }
  EXPECT_NE(view.total_hpwl(), start_hpwl);  // the fuzz actually moved things
  // Both delta paths must have been exercised.
  EXPECT_GT(view.fastpath_nets(), 0u);
  EXPECT_GT(view.rescanned_nets(), 0u);
}

TEST(DesignView, CachedOriginSwapMatchesExplicitOriginSwap) {
  ViewFixture f{300, 5};
  netlist::DesignView view{f.nl};
  view.sync(f.pl.locs(), f.pl.revision());

  std::vector<netlist::InstanceId> movable;
  for (std::size_t i = 0; i < f.nl.instance_count(); ++i) {
    const auto id = static_cast<netlist::InstanceId>(i);
    const auto fn = f.nl.master_of(id).function;
    if (fn != netlist::CellFunction::Input && fn != netlist::CellFunction::Output) {
      movable.push_back(id);
    }
  }

  util::Rng rng{321};
  for (int op = 0; op < 200; ++op) {
    const auto a = movable[rng.below(movable.size())];
    const auto b = movable[rng.below(movable.size())];
    if (a == b) continue;
    // The origin-free overload derives both targets from the cached pins.
    const std::int64_t via_cache = view.trial_swap(a, b);
    view.discard();
    const std::int64_t via_origins = view.trial_swap(a, f.pl.loc(b), b, f.pl.loc(a));
    EXPECT_EQ(via_cache, via_origins);
    if (op % 3 == 0) {  // commit some so the caches drift from the start state
      const geom::Point pa = f.pl.loc(a);
      const geom::Point pb = f.pl.loc(b);
      f.pl.set_loc(a, pb);
      f.pl.set_loc(b, pa);
      view.commit(f.pl.revision());
    } else {
      view.discard();
    }
    ASSERT_EQ(view.total_hpwl(), f.pl.total_hpwl());
  }
}

TEST(DesignView, SaPlaceBitwiseMatchesReferenceAcrossSeedsAndConfigs) {
  ViewFixture f{500};
  place::AnnealOptions fast;
  fast.moves_per_cell = 3.0;
  place::AnnealOptions swappy;
  swappy.moves_per_cell = 2.0;
  swappy.swap_fraction = 0.7;
  swappy.final_range_sites = 2.0;

  for (const auto& opt : {fast, swappy}) {
    for (const std::uint64_t seed : {3ull, 17ull, 101ull}) {
      util::Rng init{seed};
      place::Placement ref_pl = place::random_placement(f.nl, f.fp, init);
      place::Placement inc_pl = ref_pl;

      util::Rng ref_rng{seed * 7919};
      util::Rng inc_rng{seed * 7919};
      const auto ref = place::anneal_placement_reference(ref_pl, opt, ref_rng);
      netlist::DesignView view{f.nl};
      const auto inc = place::sa_place(inc_pl, view, opt, inc_rng);

      EXPECT_EQ(ref.initial_hpwl, inc.initial_hpwl);
      EXPECT_EQ(ref.final_hpwl, inc.final_hpwl);
      EXPECT_EQ(ref.moves_attempted, inc.moves_attempted);
      EXPECT_EQ(ref.moves_accepted, inc.moves_accepted);
      for (std::size_t i = 0; i < f.nl.instance_count(); ++i) {
        const auto id = static_cast<netlist::InstanceId>(i);
        ASSERT_EQ(ref_pl.loc(id), inc_pl.loc(id)) << "cell " << i << " seed " << seed;
      }
      // The RNG streams must also end in the same state (same draw count).
      EXPECT_EQ(ref_rng.uniform(), inc_rng.uniform());
      // View left in sync, running total exact.
      EXPECT_TRUE(view.in_sync(f.nl.revision(), inc_pl.revision()));
      EXPECT_EQ(view.total_hpwl(), inc_pl.total_hpwl());
    }
  }
}

TEST(DesignView, AnnealPlacementWrapperMatchesReference) {
  ViewFixture f{300, 2};
  place::AnnealOptions opt;
  opt.moves_per_cell = 3.0;
  util::Rng i1{4};
  place::Placement a = place::random_placement(f.nl, f.fp, i1);
  place::Placement b = a;
  util::Rng r1{42};
  util::Rng r2{42};
  const auto ra = place::anneal_placement(a, opt, r1);
  const auto rb = place::anneal_placement_reference(b, opt, r2);
  EXPECT_EQ(ra.final_hpwl, rb.final_hpwl);
  EXPECT_EQ(ra.moves_accepted, rb.moves_accepted);
  for (std::size_t i = 0; i < f.nl.instance_count(); ++i) {
    const auto id = static_cast<netlist::InstanceId>(i);
    ASSERT_EQ(a.loc(id), b.loc(id));
  }
}

TEST(DesignView, RevisionStalenessAndRebuildCounters) {
  ViewFixture f{200, 3};
  netlist::DesignView view{f.nl};
  view.sync(f.pl.locs(), f.pl.revision());
  const std::size_t sr = view.structure_rebuilds();
  const std::size_t gr = view.geometry_rebuilds();

  // Placement mutation: geometry-only staleness.
  f.pl.set_loc(static_cast<netlist::InstanceId>(0), f.pl.loc(static_cast<netlist::InstanceId>(0)));
  EXPECT_FALSE(view.in_sync(f.nl.revision(), f.pl.revision()));
  EXPECT_TRUE(view.sync(f.pl.locs(), f.pl.revision()));
  EXPECT_EQ(view.structure_rebuilds(), sr);
  EXPECT_EQ(view.geometry_rebuilds(), gr + 1);
  EXPECT_TRUE(view.in_sync(f.nl.revision(), f.pl.revision()));

  // Netlist mutation (gate resize): structural staleness, full rebuild.
  netlist::InstanceId victim = netlist::kNoInstance;
  std::size_t other = 0;
  for (std::size_t i = 0; i < f.nl.instance_count(); ++i) {
    const auto id = static_cast<netlist::InstanceId>(i);
    const auto fn = f.nl.master_of(id).function;
    if (fn == netlist::CellFunction::Input || fn == netlist::CellFunction::Output ||
        fn == netlist::CellFunction::Dff) {
      continue;
    }
    const auto vars = f.lib.variants(fn);
    if (vars.size() < 2) continue;
    victim = id;
    other = f.nl.instance(id).master == vars[0] ? vars[1] : vars[0];
    break;
  }
  ASSERT_NE(victim, netlist::kNoInstance);
  f.nl.resize_instance(victim, other);
  EXPECT_FALSE(view.in_sync(f.nl.revision(), f.pl.revision()));
  EXPECT_TRUE(view.sync(f.pl.locs(), f.pl.revision()));
  EXPECT_EQ(view.structure_rebuilds(), sr + 1);
  EXPECT_EQ(view.geometry_rebuilds(), gr + 2);
  EXPECT_TRUE(view.in_sync(f.nl.revision(), f.pl.revision()));
  EXPECT_EQ(view.total_hpwl(), f.pl.total_hpwl());
}

TEST(DesignView, CongestionViaViewMatchesPinScan) {
  ViewFixture f{400, 6};
  netlist::DesignView view{f.nl};
  const auto seed_map = place::estimate_congestion(f.pl, 16, 16);
  const auto view_map = place::estimate_congestion(f.pl, view, 16, 16);
  EXPECT_EQ(view_map.max_overflow, seed_map.max_overflow);
  EXPECT_EQ(view_map.total_overflow, seed_map.total_overflow);
  EXPECT_EQ(view_map.avg_utilization, seed_map.avg_utilization);
  EXPECT_EQ(view_map.overflow_fraction, seed_map.overflow_fraction);
  ASSERT_EQ(view_map.demand.cols(), seed_map.demand.cols());
  ASSERT_EQ(view_map.demand.rows(), seed_map.demand.rows());
  for (std::size_t r = 0; r < seed_map.demand.rows(); ++r) {
    for (std::size_t c = 0; c < seed_map.demand.cols(); ++c) {
      ASSERT_EQ(view_map.demand.at(c, r), seed_map.demand.at(c, r));
    }
  }
}

TEST(DesignView, GlobalRouteViaViewMatchesPinScan) {
  ViewFixture f{400, 7};
  netlist::DesignView view{f.nl};
  route::RouteOptions opt;
  opt.gcells_x = opt.gcells_y = 24;
  route::GridGraph g1;
  route::GridGraph g2;
  const auto seed_res = route::global_route(f.pl, opt, g1);
  const auto view_res = route::global_route(f.pl, view, opt, g2);
  EXPECT_EQ(view_res.wirelength_gcells, seed_res.wirelength_gcells);
  EXPECT_EQ(view_res.total_overflow, seed_res.total_overflow);
  EXPECT_EQ(view_res.overflowed_edges, seed_res.overflowed_edges);
  EXPECT_EQ(view_res.max_utilization, seed_res.max_utilization);
  EXPECT_EQ(view_res.rounds_used, seed_res.rounds_used);
  EXPECT_EQ(view_res.overflow_per_round, seed_res.overflow_per_round);
}

TEST(DesignView, TimingGraphViaViewMatchesDirect) {
  ViewFixture f{400, 8};
  util::Rng crng{9};
  const timing::ClockTree clock = timing::build_clock_tree(f.pl, timing::ClockTreeOptions{}, crng);
  netlist::DesignView view{f.nl};
  view.sync(f.pl.locs(), f.pl.revision());

  timing::StaOptions opt;
  opt.mode = timing::AnalysisMode::PathBased;
  timing::TimingGraph direct(f.pl, clock);
  timing::TimingGraph viewed(f.pl, clock, &view);
  const auto a = direct.analyze(opt);
  const auto b = viewed.analyze(opt);
  EXPECT_EQ(a.wns_ps, b.wns_ps);
  EXPECT_EQ(a.tns_ps, b.tns_ps);
  EXPECT_EQ(a.failing_endpoints, b.failing_endpoints);
  ASSERT_EQ(a.endpoints.size(), b.endpoints.size());
  for (std::size_t i = 0; i < a.endpoints.size(); ++i) {
    ASSERT_EQ(a.endpoints[i].slack_ps, b.endpoints[i].slack_ps);
  }

  // A stale view must not poison the graph: refresh falls back to the
  // placement and stays correct.
  const auto vic = static_cast<netlist::InstanceId>(f.nl.instance_count() / 2);
  f.pl.set_loc(vic, f.fp.snap({f.fp.core().lo.x, f.fp.core().lo.y}));
  timing::TimingGraph direct2(f.pl, clock);
  const auto a2 = direct2.analyze(opt);
  viewed.sync();
  const auto b2 = viewed.analyze(opt);
  EXPECT_EQ(a2.wns_ps, b2.wns_ps);
  EXPECT_EQ(a2.tns_ps, b2.tns_ps);
}

TEST(DrvBatch, MatchesSequentialScalarRunsPerSeed) {
  // Difficulties straddle the thrash regime (> 0.72) so every branch of the
  // scalar model is exercised.
  std::vector<route::RouteDifficulty> diffs;
  std::vector<std::uint64_t> seeds;
  for (std::size_t i = 0; i < 10; ++i) {
    diffs.push_back({0.05 + 0.093 * static_cast<double>(i)});
    seeds.push_back(0xbeef + 31 * i);
  }
  route::DrvBatchOptions bo;
  bo.emit_logs = true;
  const route::DrvBatch batch = route::simulate_drv_batch(diffs, seeds, bo);
  ASSERT_EQ(batch.size(), diffs.size());
  ASSERT_EQ(batch.logs.size(), diffs.size());

  for (std::size_t i = 0; i < diffs.size(); ++i) {
    route::DrvSimOptions so;
    so.seed = seeds[i];
    util::Rng rng{seeds[i]};
    const route::DrvRun scalar = route::simulate_drv_run(diffs[i], so, rng);
    const auto traj = batch.trajectory(i);
    ASSERT_EQ(traj.size(), scalar.drvs.size());
    for (std::size_t t = 0; t < traj.size(); ++t) {
      ASSERT_EQ(traj[t], scalar.drvs[t]) << "run " << i << " iter " << t;
    }
    EXPECT_EQ(batch.succeeded[i] != 0, scalar.succeeded);
    EXPECT_EQ(batch.difficulty[i], scalar.difficulty);
    // Materialized run and its log match the scalar ToolLog content.
    const route::DrvRun mat = batch.run(i);
    EXPECT_EQ(mat.drvs, scalar.drvs);
    EXPECT_EQ(mat.log.iterations.size(), scalar.log.iterations.size());
    EXPECT_EQ(mat.log.series("drvs"), scalar.log.series("drvs"));
    EXPECT_EQ(mat.log.series("delta_drvs"), scalar.log.series("delta_drvs"));
    EXPECT_EQ(mat.log.completed, scalar.log.completed);
  }
}

TEST(DrvBatch, ChunkParallelMatchesSerialAtAnyChunking) {
  std::vector<route::RouteDifficulty> diffs;
  std::vector<std::uint64_t> seeds;
  for (std::size_t i = 0; i < 13; ++i) {  // deliberately not a chunk multiple
    diffs.push_back({0.1 + 0.07 * static_cast<double>(i)});
    seeds.push_back(0x7700 + i);
  }
  route::DrvBatchOptions serial;
  const route::DrvBatch base = route::simulate_drv_batch(diffs, seeds, serial);

  exec::RunExecutor pool{{.threads = 4}};
  for (const std::size_t chunk : {1ul, 3ul, 5ul}) {
    route::DrvBatchOptions po;
    po.executor = &pool;
    po.chunk = chunk;
    const route::DrvBatch par = route::simulate_drv_batch(diffs, seeds, po);
    EXPECT_EQ(par.drvs, base.drvs) << "chunk " << chunk;
    EXPECT_EQ(par.succeeded, base.succeeded) << "chunk " << chunk;
    EXPECT_EQ(par.difficulty, base.difficulty) << "chunk " << chunk;
  }
}

TEST(DrvBatch, GwtwBatchedAdvanceMatchesScalar) {
  // The fig6(c) shape in miniature: GWTW whose advance is one DRV campaign,
  // run once with per-thread scalar advances and once with the batched hook.
  namespace mo = maestro::opt;
  struct DrvState {
    route::RouteDifficulty diff{0.8};
    double final_drvs = 1.0e9;
  };
  constexpr int kIters = 10;
  auto step = [](const DrvState& s, double final_drvs, bool ok) {
    DrvState next = s;
    next.final_drvs = final_drvs;
    next.diff.value = std::clamp(s.diff.value + (ok ? -0.05 : 0.01), 0.02, 0.98);
    return next;
  };
  mo::GwtwProblem<DrvState> prob;
  prob.init = [](util::Rng& rng) {
    DrvState s;
    s.diff.value = rng.uniform(0.4, 0.9);
    return s;
  };
  prob.advance = [&step](const DrvState& s, util::Rng& rng) {
    route::DrvSimOptions o;
    o.iterations = kIters;
    const route::DrvRun run = route::simulate_drv_run(s.diff, o, rng);
    return step(s, run.drvs.back(), run.succeeded);
  };
  prob.cost = [](const DrvState& s) { return s.final_drvs; };

  mo::GwtwProblem<DrvState> batched = prob;
  batched.advance_batch = [&step](const std::vector<DrvState>& states,
                                  std::span<const std::uint64_t> seeds) {
    std::vector<route::RouteDifficulty> diffs(states.size());
    for (std::size_t i = 0; i < states.size(); ++i) diffs[i] = states[i].diff;
    route::DrvBatchOptions bo;
    bo.iterations = kIters;
    const route::DrvBatch b = route::simulate_drv_batch(diffs, seeds, bo);
    std::vector<DrvState> next(states.size());
    for (std::size_t i = 0; i < states.size(); ++i) {
      next[i] = step(states[i], b.trajectory(i).back(), b.succeeded[i] != 0);
    }
    return next;
  };

  mo::GwtwOptions opt;
  opt.population = 6;
  opt.rounds = 8;
  opt.survivor_fraction = 0.5;
  util::Rng r1{11};
  util::Rng r2{11};
  const auto scalar = mo::go_with_the_winners(prob, opt, r1);
  const auto fused = mo::go_with_the_winners(batched, opt, r2);
  EXPECT_EQ(scalar.best_cost, fused.best_cost);
  EXPECT_EQ(scalar.best_per_round, fused.best_per_round);
  EXPECT_EQ(scalar.mean_per_round, fused.mean_per_round);
}
