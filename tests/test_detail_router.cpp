// Tests for the track-assignment detailed router and its flow integration
// (route knob detail_engine=track).

#include <gtest/gtest.h>

#include <memory>

#include "flow/flow.hpp"
#include "netlist/generators.hpp"
#include "place/placer.hpp"
#include "route/detail_router.hpp"

namespace mf = maestro::flow;
namespace mn = maestro::netlist;
namespace mp = maestro::place;
namespace mr = maestro::route;
using maestro::util::Rng;

namespace {
const mn::CellLibrary& lib() {
  static const mn::CellLibrary l = mn::make_default_library();
  return l;
}

struct Routed {
  std::unique_ptr<mn::Netlist> nl;
  std::unique_ptr<mp::Floorplan> fp;
  std::unique_ptr<mp::Placement> pl;
  mr::GridGraph grid;
  std::vector<mr::RoutedSegment> segments;
};

std::unique_ptr<Routed> routed_design(std::uint64_t seed, double util, std::size_t gates = 500) {
  auto r = std::make_unique<Routed>();
  mn::RandomLogicSpec spec;
  spec.gates = gates;
  spec.seed = seed;
  r->nl = std::make_unique<mn::Netlist>(mn::make_random_logic(lib(), spec));
  r->fp = std::make_unique<mp::Floorplan>(mp::Floorplan::for_netlist(*r->nl, util));
  Rng rng{seed};
  r->pl = std::make_unique<mp::Placement>(mp::random_placement(*r->nl, *r->fp, rng));
  mp::AnnealOptions ao;
  ao.moves_per_cell = 10.0;
  mp::anneal_placement(*r->pl, ao, rng);
  mp::legalize(*r->pl);
  mr::RouteOptions ro;
  ro.gcells_x = ro.gcells_y = 24;
  const double gw = static_cast<double>(r->fp->core().width()) / 24.0 / 1000.0;
  ro.h_capacity = 20.0 * gw;
  ro.v_capacity = 17.0 * gw;
  ro.keep_segments = true;
  auto gr = mr::global_route(*r->pl, ro, r->grid);
  r->segments = std::move(gr.segments);
  return r;
}
}  // namespace

TEST(GridGraph, EdgeCellsRoundTrip) {
  const maestro::geom::GridIndexer idx{{{0, 0}, {100, 100}}, 5, 4};
  mr::GridGraph g{5, 4, 10.0, 10.0, idx};
  for (std::uint32_t row = 0; row < 4; ++row) {
    for (std::uint32_t col = 0; col + 1 < 5; ++col) {
      const auto e = g.edge_id({col, row}, mr::Dir::East);
      EXPECT_TRUE(g.is_east(e));
      const auto [a, b] = g.edge_cells(e);
      EXPECT_EQ(a, (mr::GCell{col, row}));
      EXPECT_EQ(b, (mr::GCell{col + 1, row}));
    }
  }
  for (std::uint32_t row = 0; row + 1 < 4; ++row) {
    for (std::uint32_t col = 0; col < 5; ++col) {
      const auto e = g.edge_id({col, row}, mr::Dir::North);
      EXPECT_FALSE(g.is_east(e));
      const auto [a, b] = g.edge_cells(e);
      EXPECT_EQ(a, (mr::GCell{col, row}));
      EXPECT_EQ(b, (mr::GCell{col, row + 1}));
    }
  }
}

TEST(GlobalRouter, KeepSegmentsReturnsConsistentPaths) {
  const auto r = routed_design(1, 0.6);
  ASSERT_FALSE(r->segments.empty());
  for (const auto& seg : r->segments) {
    if (seg.from == seg.to) {
      EXPECT_TRUE(seg.edges.empty());
      continue;
    }
    ASSERT_FALSE(seg.edges.empty());
    // The path's edges form a connected chain from `from` to `to`.
    mr::GCell cur = seg.from;
    for (const std::size_t e : seg.edges) {
      const auto [a, b] = r->grid.edge_cells(e);
      ASSERT_TRUE(a == cur || b == cur) << "disconnected path";
      cur = (a == cur) ? b : a;
    }
    EXPECT_EQ(cur, seg.to);
  }
}

TEST(DetailRouter, CleanDesignConvergesImmediately) {
  auto r = routed_design(3, 0.5, 300);
  mr::DetailRouteOptions opt;
  Rng rng{3};
  const auto res = mr::detail_route(*r->pl, r->grid, r->segments, opt, rng);
  EXPECT_TRUE(res.succeeded);
  EXPECT_LE(res.final_drvs, opt.success_threshold);
  EXPECT_GT(res.via_count, 0u);
  EXPECT_FALSE(res.drvs_per_iteration.empty());
}

TEST(DetailRouter, TightViaBudgetCreatesViolations) {
  auto r = routed_design(5, 0.7);
  mr::DetailRouteOptions opt;
  opt.vias_per_cell = 4.0;  // absurd: pin demand alone exceeds it
  Rng rng{5};
  const auto res = mr::detail_route(*r->pl, r->grid, r->segments, opt, rng);
  EXPECT_FALSE(res.succeeded);
  EXPECT_GT(res.via_overflow, 0.0);
}

TEST(DetailRouter, FixingReducesViolations) {
  auto r = routed_design(7, 0.8, 700);
  mr::DetailRouteOptions opt;
  opt.track_utilization = 0.8;  // squeeze tracks to force repair work
  Rng rng{7};
  const auto res = mr::detail_route(*r->pl, r->grid, r->segments, opt, rng);
  ASSERT_GE(res.drvs_per_iteration.size(), 2u);
  // The repair loop must not make things worse overall.
  EXPECT_LE(res.drvs_per_iteration.back(), res.drvs_per_iteration.front() * 1.05);
}

TEST(DetailRouter, LogMatchesSeries) {
  auto r = routed_design(9, 0.7);
  mr::DetailRouteOptions opt;
  opt.max_iterations = 8;
  Rng rng{9};
  const auto res = mr::detail_route(*r->pl, r->grid, r->segments, opt, rng);
  EXPECT_EQ(res.log.iterations.size(), res.drvs_per_iteration.size());
  const auto series = res.log.series("drvs");
  for (std::size_t i = 0; i < series.size(); ++i) {
    EXPECT_DOUBLE_EQ(series[i], res.drvs_per_iteration[i]);
  }
  EXPECT_LE(res.iterations_used, 8);
}

TEST(DetailRouter, FlowKnobSelectsTrackEngine) {
  mf::FlowManager fm{lib()};
  mf::FlowRecipe recipe;
  recipe.design.kind = mf::DesignSpec::Kind::RandomLogic;
  recipe.design.scale = 1;
  recipe.design.name = "track_flow";
  recipe.target_ghz = 0.9;
  recipe.seed = 11;
  recipe.knobs.set(mf::FlowStep::Floorplan, "utilization", "0.60");
  recipe.knobs.set(mf::FlowStep::Route, "detail_engine", "track");
  mf::DesignState state;
  const auto res = fm.run_keep_state(recipe, mf::FlowConstraints{}, state);
  EXPECT_TRUE(res.completed);
  EXPECT_EQ(state.droute.log.metadata.at("engine"), "track");
  // Easy utilization: the real engine should rate it clean.
  EXPECT_TRUE(res.drc_clean) << res.final_drvs;
}

TEST(DetailRouter, FlowTrackVsModelAgreeOnEasyDesign) {
  // Both engines must call an uncongested design routable.
  mf::FlowManager fm{lib()};
  auto run_with = [&](const char* engine) {
    mf::FlowRecipe recipe;
    recipe.design.kind = mf::DesignSpec::Kind::RandomLogic;
    recipe.design.scale = 1;
    recipe.design.name = "agree";
    recipe.target_ghz = 0.8;
    recipe.seed = 13;
    recipe.knobs.set(mf::FlowStep::Floorplan, "utilization", "0.55");
    recipe.knobs.set(mf::FlowStep::Route, "detail_engine", engine);
    return fm.run(recipe);
  };
  EXPECT_TRUE(run_with("model").drc_clean);
  EXPECT_TRUE(run_with("track").drc_clean);
}
