// Tests for maestro::exec — the concurrency layer: RunExecutor determinism
// (serial == parallel, bitwise), license gating, cooperative cancellation
// through the guard -> token -> flow chain, and the run journal.
//
// This file builds as its own binary (maestro_exec_tests) labeled "exec" so
// it can run in isolation under -DMAESTRO_SANITIZE=thread:
//   ctest -L exec

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <thread>
#include <vector>

#include "core/doomed_guard.hpp"
#include "core/hmm_guard.hpp"
#include "core/mab_scheduler.hpp"
#include "exec/executor.hpp"
#include "metrics/server.hpp"
#include "opt/gwtw.hpp"
#include "route/drv_sim.hpp"

namespace mc = maestro::core;
namespace mf = maestro::flow;
namespace mn = maestro::netlist;
namespace mo = maestro::opt;
namespace mr = maestro::route;
namespace mx = maestro::exec;
using maestro::util::Rng;

namespace {

const mn::CellLibrary& lib() {
  static const mn::CellLibrary l = mn::make_default_library();
  return l;
}

/// Same synthetic cliff oracle as the core MAB tests: pure function of
/// (target_ghz, seed), so it is trivially safe to call from pool workers.
mc::FlowOracle cliff_oracle(double max_ghz, double noise = 0.03) {
  return [max_ghz, noise](double target_ghz, std::uint64_t seed) {
    Rng rng{seed};
    mf::FlowResult res;
    res.completed = true;
    const double margin = max_ghz + rng.gauss(0.0, noise) - target_ghz;
    res.timing_met = margin > 0.0;
    res.drc_clean = true;
    res.constraints_met = true;
    res.wns_ps = margin * 100.0;
    res.area_um2 = 1000.0;
    res.power_mw = target_ghz * 2.0;
    res.tat_minutes = 60.0;
    return res;
  };
}

}  // namespace

// ------------------------------------------------------------- primitives

TEST(DeriveRunSeed, DependsOnlyOnBaseAndIndex) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    const std::uint64_t s = mx::derive_run_seed(42, i);
    EXPECT_EQ(s, mx::derive_run_seed(42, i));  // pure
    EXPECT_NE(s, 42u);
    seen.insert(s);
  }
  EXPECT_EQ(seen.size(), 1000u);  // no collisions across indices
  EXPECT_NE(mx::derive_run_seed(42, 0), mx::derive_run_seed(43, 0));
}

TEST(CancelToken, CopiesShareTheFlag) {
  mx::CancelToken a;
  mx::CancelToken b = a;
  mx::CancelToken c;
  EXPECT_TRUE(a.same_as(b));
  EXPECT_FALSE(a.same_as(c));
  EXPECT_FALSE(a.cancelled());
  b.request_cancel();
  EXPECT_TRUE(a.cancelled());
  EXPECT_FALSE(c.cancelled());
}

// ------------------------------------------------------------ RunExecutor

TEST(RunExecutor, MapCollectsInIndexOrderAtAnyThreadCount) {
  auto body = [](std::size_t i, mx::RunContext& ctx) {
    Rng rng{ctx.seed};
    return static_cast<double>(i) + rng.uniform();
  };
  mx::RunExecutor one{{.threads = 1}};
  mx::RunExecutor four{{.threads = 4}};
  const auto a = one.map("m", 7, 32, body);
  const auto b = four.map("m", 7, 32, body);
  ASSERT_EQ(a.size(), 32u);
  ASSERT_EQ(b.size(), 32u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << i;  // bitwise: same seed, same work
    EXPECT_GE(a[i], static_cast<double>(i));
  }
  EXPECT_EQ(one.journal().count(mx::RunState::Completed), 32u);
  EXPECT_EQ(four.journal().count(mx::RunState::Completed), 32u);
}

TEST(RunExecutor, LicensesGateConcurrency) {
  mx::RunExecutor pool{{.threads = 4, .licenses = 2}};
  EXPECT_EQ(pool.threads(), 4u);
  EXPECT_EQ(pool.licenses(), 2u);
  std::atomic<int> running{0};
  std::atomic<int> peak{0};
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(pool.submit("gated", 1, [&](mx::RunContext&) {
      const int now = ++running;
      int prev = peak.load();
      while (now > prev && !peak.compare_exchange_weak(prev, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      --running;
      return now;
    }));
  }
  for (auto& f : futures) f.get();
  EXPECT_LE(peak.load(), 2);
  EXPECT_GE(peak.load(), 1);
  EXPECT_EQ(pool.licenses_in_use(), 0u);
}

TEST(RunExecutor, CancelledWhileQueuedSkipsAndThrows) {
  mx::RunExecutor pool{{.threads = 1}};
  std::atomic<bool> release{false};
  auto blocker = pool.submit("blocker", 1, [&](mx::RunContext&) {
    while (!release) std::this_thread::sleep_for(std::chrono::milliseconds(1));
    return 1;
  });
  mx::CancelToken token;
  auto doomed = pool.submit("doomed", 2, [](mx::RunContext&) { return 2; }, token);
  token.request_cancel();
  release = true;
  EXPECT_EQ(blocker.get(), 1);
  EXPECT_THROW(doomed.get(), mx::RunCancelled);
  const auto snap = pool.journal().snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].state, mx::RunState::Completed);
  EXPECT_EQ(snap[1].state, mx::RunState::Cancelled);
  EXPECT_EQ(snap[1].wall_ms(), 0.0);            // never started
  EXPECT_GE(snap[1].queue_wait_ms(), 0.0);      // waited until cancellation
}

TEST(RunExecutor, FailurePropagatesThroughFutureAndJournal) {
  mx::RunExecutor pool{{.threads = 2}};
  auto fut = pool.submit("explodes", 3, [](mx::RunContext&) -> int {
    throw std::runtime_error("tool crashed");
  });
  EXPECT_THROW(fut.get(), std::runtime_error);
  auto ok = pool.submit("fine", 4, [](mx::RunContext&) { return 7; });
  EXPECT_EQ(ok.get(), 7);  // pool survives a failed run
  EXPECT_EQ(pool.journal().count(mx::RunState::Failed), 1u);
  EXPECT_EQ(pool.journal().count(mx::RunState::Completed), 1u);
  const auto snap = pool.journal().snapshot();
  EXPECT_EQ(snap[0].note, "tool crashed");
}

TEST(RunExecutor, JournalTimestampsAreOrdered) {
  mx::RunExecutor pool{{.threads = 2}};
  auto f = pool.submit("timed", 5, [](mx::RunContext&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    return 0;
  });
  f.get();
  const auto snap = pool.journal().snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_GE(snap[0].start_ms, snap[0].enqueue_ms);
  EXPECT_GE(snap[0].finish_ms, snap[0].start_ms);
  EXPECT_GE(snap[0].wall_ms(), 4.0);
  EXPECT_GE(pool.journal().total_wall_ms(), 4.0);
}

TEST(RunJournal, SummaryPercentilesAreMonotone) {
  mx::RunExecutor pool{{.threads = 2}};
  // Variable-duration runs so the percentiles spread out.
  pool.map("spread", 7, 16, [](std::size_t i, mx::RunContext&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1 + i % 5));
    return i;
  });
  const mx::JournalSummary s = pool.journal().summarize();
  EXPECT_EQ(s.runs, 16u);
  EXPECT_LE(s.queue_wait_p50_ms, s.queue_wait_p95_ms);
  EXPECT_LE(s.queue_wait_p95_ms, s.queue_wait_max_ms);
  EXPECT_LE(s.wall_p50_ms, s.wall_p95_ms);
  EXPECT_LE(s.wall_p95_ms, s.wall_max_ms);
  EXPECT_GT(s.wall_max_ms, 0.0);

  const mx::JournalSummary empty = mx::RunExecutor{{.threads = 1}}.journal().summarize();
  EXPECT_EQ(empty.runs, 0u);
  EXPECT_EQ(empty.wall_max_ms, 0.0);
}

TEST(RunExecutor, DefaultThreadCountHonorsEnvOverride) {
  setenv("MAESTRO_THREADS", "3", 1);
  EXPECT_EQ(mx::default_thread_count(), 3u);
  setenv("MAESTRO_THREADS", "999", 1);  // clamped to 256
  EXPECT_EQ(mx::default_thread_count(), 256u);
  setenv("MAESTRO_THREADS", "0", 1);    // invalid -> hardware fallback
  EXPECT_GE(mx::default_thread_count(), 1u);
  unsetenv("MAESTRO_THREADS");
  EXPECT_GE(mx::default_thread_count(), 1u);
}

// ------------------------------------------------- determinism: scheduler

TEST(ExecDeterminism, MabCampaignIdenticalSerialAndParallel) {
  mc::MabOptions opt;
  opt.frequency_arms_ghz = mc::frequency_arms(0.3, 2.0, 12);
  opt.iterations = 25;
  opt.concurrency = 5;
  opt.algorithm = mc::MabAlgorithm::Thompson;
  const mc::MabScheduler sched{opt};
  const auto oracle = cliff_oracle(1.2);

  mx::RunExecutor serial{{.threads = 1}};
  mx::RunExecutor wide{{.threads = 4}};
  Rng r1{99};
  Rng r2{99};
  const auto a = sched.run(oracle, r1, serial);
  const auto b = sched.run(oracle, r2, wide);

  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    EXPECT_EQ(a.samples[i].iteration, b.samples[i].iteration);
    EXPECT_EQ(a.samples[i].frequency_ghz, b.samples[i].frequency_ghz) << i;
    EXPECT_EQ(a.samples[i].success, b.samples[i].success) << i;
    EXPECT_EQ(a.samples[i].reward, b.samples[i].reward) << i;
  }
  EXPECT_EQ(a.best_feasible_ghz, b.best_feasible_ghz);
  EXPECT_EQ(a.total_regret, b.total_regret);
  EXPECT_EQ(a.best_per_iteration, b.best_per_iteration);
  // And the shared-Rng state advanced identically.
  EXPECT_EQ(r1.next(), r2.next());
}

TEST(ExecDeterminism, GwtwIdenticalSerialAndParallel) {
  // Minimize (x - 3)^2 over a drifting population.
  mo::GwtwProblem<double> prob;
  prob.init = [](Rng& rng) { return rng.gauss(0.0, 5.0); };
  prob.advance = [](const double& s, Rng& rng) { return s + rng.gauss(0.0, 0.4); };
  prob.cost = [](const double& s) { return (s - 3.0) * (s - 3.0); };

  mo::GwtwOptions serial_opt;
  serial_opt.population = 8;
  serial_opt.rounds = 15;

  mx::RunExecutor pool{{.threads = 4}};
  mo::GwtwOptions pool_opt = serial_opt;
  pool_opt.executor = &pool;

  Rng r1{7};
  Rng r2{7};
  const auto a = mo::go_with_the_winners(prob, serial_opt, r1);
  const auto b = mo::go_with_the_winners(prob, pool_opt, r2);

  EXPECT_EQ(a.best, b.best);            // bitwise-identical winner
  EXPECT_EQ(a.best_cost, b.best_cost);
  EXPECT_EQ(a.best_per_round, b.best_per_round);
  EXPECT_EQ(a.mean_per_round, b.mean_per_round);
  EXPECT_EQ(a.clones_made, b.clones_made);
  EXPECT_EQ(r1.next(), r2.next());
  EXPECT_EQ(pool.journal().size(), 8u * 15u);
}

// ------------------------------------------------------------ cancellation

TEST(Cancellation, GuardStopVerdictRequestsCancel) {
  Rng rng{5};
  mr::DrvSimOptions dso;
  dso.seed = 5;
  const auto train = mr::make_drv_corpus(mr::CorpusKind::ArtificialLayouts, 400, dso, rng);
  mc::DoomedRunGuard guard;
  guard.train(train);
  ASSERT_TRUE(guard.stop_signal(50000.0, 5000.0, 45000.0));

  mx::CancelToken token;
  auto monitor = guard.monitor(2, token);
  // Feed an obviously diverging trajectory: high DRVs, rising.
  double drvs = 45000.0;
  bool stopped = false;
  for (int it = 0; it < 6 && !stopped; ++it) {
    stopped = !monitor(it, drvs, 5000.0);
    drvs += 5000.0;
  }
  EXPECT_TRUE(stopped);
  EXPECT_TRUE(token.cancelled());
}

TEST(Cancellation, HmmGuardMonitorStopsADoomedRun) {
  Rng rng{23};
  mr::DrvSimOptions dso;
  dso.seed = 23;
  const auto train = mr::make_drv_corpus(mr::CorpusKind::ArtificialLayouts, 400, dso, rng);
  mc::HmmGuard guard;
  guard.train(train);
  const auto test = mr::make_drv_corpus(mr::CorpusKind::CpuFloorplans, 200, dso, rng);

  // At least one genuinely failing run must trip the live monitor (the
  // offline evaluate() already certifies iterations_saved > 0 on corpora
  // like this); when it does, the bound token must be cancelled.
  bool any_stopped = false;
  for (const auto& run : test) {
    if (run.succeeded) continue;
    mx::CancelToken token;
    auto monitor = guard.monitor(token);
    bool stopped = false;
    for (std::size_t t = 0; t < run.drvs.size() && !stopped; ++t) {
      const double delta = t == 0 ? 0.0 : run.drvs[t] - run.drvs[t - 1];
      stopped = !monitor(static_cast<int>(t), run.drvs[t], delta);
    }
    EXPECT_EQ(stopped, token.cancelled());
    any_stopped = any_stopped || stopped;
  }
  EXPECT_TRUE(any_stopped);
}

TEST(Cancellation, CancelledFlowAbortsAndReturnsLicense) {
  mf::FlowManager fm{lib()};
  mx::RunExecutor pool{{.threads = 1, .licenses = 1}};

  mx::CancelToken token;
  mf::FlowRecipe recipe;
  recipe.design.kind = mf::DesignSpec::Kind::RandomLogic;
  recipe.design.scale = 1;
  recipe.design.name = "doomed";
  recipe.target_ghz = 1.0;
  recipe.seed = 13;
  recipe.knobs.set(mf::FlowStep::Floorplan, "utilization", "0.95");  // hard route
  recipe.cancel = token;
  // A stand-in guard verdict: STOP (and cancel) at the third route iteration.
  std::atomic<int> calls{0};
  recipe.route_monitor = [&](int, double, double) {
    if (++calls >= 3) {
      token.request_cancel();
      return false;
    }
    return true;
  };

  auto doomed = pool.submit(
      "doomed_flow", recipe.seed,
      [&fm, recipe](mx::RunContext&) { return fm.run(recipe); }, token);
  // Queued behind the doomed run on the single license: must still execute
  // once cancellation releases the license.
  auto after = pool.submit("after", 1, [](mx::RunContext&) { return 42; });

  const mf::FlowResult res = doomed.get();
  EXPECT_EQ(res.failed_step, "cancelled");
  EXPECT_FALSE(res.completed);
  EXPECT_FALSE(res.success());
  EXPECT_GE(calls.load(), 3);
  EXPECT_EQ(after.get(), 42);

  EXPECT_EQ(pool.journal().count(mx::RunState::Cancelled), 1u);
  EXPECT_EQ(pool.journal().count(mx::RunState::Completed), 1u);
  EXPECT_EQ(pool.licenses_in_use(), 0u);
  const auto snap = pool.journal().snapshot();
  EXPECT_EQ(snap[0].state, mx::RunState::Cancelled);
  EXPECT_GT(snap[0].wall_ms(), 0.0);  // it ran (partially) before cancelling
}

// --------------------------------------------------- journal -> metrics

TEST(JournalMetricsBridge, TransmitJournalFlattensRuns) {
  mx::RunExecutor pool{{.threads = 2}};
  pool.map("bridge", 11, 6, [](std::size_t i, mx::RunContext&) { return i; });

  maestro::metrics::Server server;
  maestro::metrics::Transmitter tx{server};
  const std::size_t n = tx.transmit_journal(pool.journal());
  EXPECT_EQ(n, 6u);
  const auto execs = server.for_step("exec");
  ASSERT_EQ(execs.size(), 6u);
  for (const auto* r : execs) {
    EXPECT_EQ(r->knobs.at("state"), "completed");
    EXPECT_EQ(r->values.at("cancelled"), 0.0);
    EXPECT_GE(r->values.at("wall_ms"), 0.0);
  }
}

TEST(MetricsServer, ConcurrentSubmitsAreSafe) {
  maestro::metrics::Server server;
  mx::RunExecutor pool{{.threads = 4}};
  pool.map("ingest", 3, 64, [&server](std::size_t i, mx::RunContext&) {
    maestro::metrics::Record rec;
    rec.design = "d" + std::to_string(i % 4);
    rec.step = "flow";
    rec.values["i"] = static_cast<double>(i);
    return server.submit(std::move(rec));
  });
  EXPECT_EQ(server.size(), 64u);
  std::set<std::uint64_t> ids;
  for (const auto& r : server.all()) ids.insert(r.run_id);
  EXPECT_EQ(ids.size(), 64u);  // unique ids under concurrent submission
}
