// Tests for the paper's extension features: multi-corner STA and missing-
// corner prediction (Section 3.2 extension (2)), the HMM doomed-run detector
// (Section 3.3), gate sizing characterized on eyecharts (Section 3.3 (iii)),
// intrinsic Rent-parameter evaluation (Section 3.3 (ii), ref [44]), and the
// project-level license scheduler (footnote 4, ref [1]).

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "core/corner_predictor.hpp"
#include "core/hmm_guard.hpp"
#include "core/scheduler.hpp"
#include "core/sizer.hpp"
#include "flow/flow.hpp"
#include "place/rent.hpp"

namespace mc = maestro::core;
namespace mf = maestro::flow;
namespace mn = maestro::netlist;
namespace mp = maestro::place;
namespace mr = maestro::route;
namespace mt = maestro::timing;
using maestro::util::Rng;

namespace {
const mn::CellLibrary& lib() {
  static const mn::CellLibrary l = mn::make_default_library();
  return l;
}
}  // namespace

// ------------------------------------------------------- multi-corner STA

TEST(Corners, StandardSetOrdering) {
  const auto corners = mt::standard_corners();
  ASSERT_EQ(corners.size(), 3u);
  const auto ss = mt::corner_by_name("ss");
  const auto tt = mt::corner_by_name("tt");
  const auto ff = mt::corner_by_name("ff");
  EXPECT_GT(ss.gate_factor, tt.gate_factor);
  EXPECT_GT(tt.gate_factor, ff.gate_factor);
  EXPECT_DOUBLE_EQ(tt.gate_factor, 1.0);
  // Wire varies less than gate across corners.
  EXPECT_LT(ss.wire_factor - 1.0, ss.gate_factor - 1.0);
  EXPECT_LT(1.0 - ff.wire_factor, 1.0 - ff.gate_factor);
}

namespace {
struct CornerFixture {
  mf::DesignState state;
  std::map<std::string, mt::StaReport> reports;
};

std::unique_ptr<CornerFixture> corner_fixture(std::uint64_t seed) {
  auto fx = std::make_unique<CornerFixture>();
  mf::FlowManager fm{lib()};
  mf::FlowRecipe recipe;
  recipe.design.kind = mf::DesignSpec::Kind::RandomLogic;
  recipe.design.scale = 1;
  recipe.design.rtl_seed = seed;
  recipe.design.name = "corner" + std::to_string(seed);
  recipe.target_ghz = 1.2;
  recipe.seed = seed;
  fm.run_keep_state(recipe, mf::FlowConstraints{}, fx->state);
  for (const auto& corner : mt::standard_corners()) {
    mt::StaOptions opt;
    opt.mode = mt::AnalysisMode::PathBased;
    opt.clock_period_ps = 1000.0 / 1.2;
    opt.corner = corner;
    fx->reports[corner.name] = mt::run_sta(*fx->state.pl, fx->state.clock, opt);
  }
  return fx;
}
}  // namespace

TEST(Corners, SlowCornerHasWorstSlack) {
  const auto fx = corner_fixture(1);
  EXPECT_LT(fx->reports.at("ss").wns_ps, fx->reports.at("tt").wns_ps);
  EXPECT_LT(fx->reports.at("tt").wns_ps, fx->reports.at("ff").wns_ps);
}

TEST(Corners, CornerScalingIsNotAScalar) {
  // Per-endpoint ss/tt arrival ratios must vary (wire-heavy vs gate-heavy
  // paths scale differently) — this is what makes corner prediction ML-worthy.
  const auto fx = corner_fixture(2);
  const auto& ss = fx->reports.at("ss");
  const auto& tt = fx->reports.at("tt");
  double min_ratio = 1e9;
  double max_ratio = 0.0;
  for (const auto& ep : ss.endpoints) {
    const auto* t = tt.endpoint_of(ep.endpoint);
    ASSERT_NE(t, nullptr);
    if (t->arrival_ps <= 0.0) continue;
    const double ratio = ep.arrival_ps / t->arrival_ps;
    min_ratio = std::min(min_ratio, ratio);
    max_ratio = std::max(max_ratio, ratio);
  }
  EXPECT_GT(max_ratio - min_ratio, 0.005);
}

TEST(CornerPredictor, JoinProducesCompleteSamples) {
  const auto fx = corner_fixture(3);
  const auto samples = mc::join_corner_reports(fx->reports);
  EXPECT_EQ(samples.size(), fx->reports.at("tt").endpoints.size());
  for (const auto& s : samples) {
    EXPECT_EQ(s.slack_by_corner.size(), 3u);
  }
}

TEST(CornerPredictor, BeatsScalarDerateOnMissingCorner) {
  // Train on several designs at {tt, ff}; predict ss.
  std::vector<mc::CornerSample> train;
  std::vector<mc::CornerSample> test;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const auto fx = corner_fixture(seed + 10);
    auto samples = mc::join_corner_reports(fx->reports);
    auto& dst = seed <= 3 ? train : test;
    dst.insert(dst.end(), samples.begin(), samples.end());
  }
  mc::CornerPredictor predictor{{"tt", "ff"}, "ss"};
  predictor.fit(train);
  const auto rep = predictor.evaluate(test);
  ASSERT_GT(rep.endpoints, 10u);
  EXPECT_GT(rep.r2, 0.9);
  EXPECT_LT(rep.mean_abs_error_ps, rep.scalar_baseline_mae_ps);
}

// ------------------------------------------------------------- HMM guard

namespace {
std::vector<mr::DrvRun> guard_corpus(mr::CorpusKind kind, std::size_t n, std::uint64_t seed) {
  mr::DrvSimOptions opt;
  opt.seed = seed;
  Rng rng{seed};
  return mr::make_drv_corpus(kind, n, opt, rng);
}
}  // namespace

TEST(HmmGuard, TrainsValidModels) {
  const auto corpus = guard_corpus(mr::CorpusKind::ArtificialLayouts, 300, 21);
  mc::HmmGuard guard;
  guard.train(corpus);
  EXPECT_TRUE(guard.trained());
  EXPECT_TRUE(guard.success_model().valid(1e-6));
  EXPECT_TRUE(guard.failure_model().valid(1e-6));
}

TEST(HmmGuard, EvidenceSeparatesOutcomes) {
  const auto train = guard_corpus(mr::CorpusKind::ArtificialLayouts, 400, 23);
  mc::HmmGuard guard;
  guard.train(train);
  // Full-trajectory evidence should be clearly higher for failing runs.
  const auto test = guard_corpus(mr::CorpusKind::CpuFloorplans, 120, 25);
  double good_evidence = 0.0;
  double bad_evidence = 0.0;
  std::size_t n_good = 0;
  std::size_t n_bad = 0;
  for (const auto& run : test) {
    std::vector<int> obs;
    for (std::size_t t = 1; t < run.drvs.size(); ++t) {
      obs.push_back(guard.symbol_of(run.drvs[t], run.drvs[t - 1]));
    }
    const double e = guard.failure_evidence(obs);
    if (run.succeeded) {
      good_evidence += e;
      ++n_good;
    } else {
      bad_evidence += e;
      ++n_bad;
    }
  }
  ASSERT_GT(n_good, 0u);
  ASSERT_GT(n_bad, 0u);
  EXPECT_GT(bad_evidence / static_cast<double>(n_bad),
            good_evidence / static_cast<double>(n_good) + 1.0);
}

TEST(HmmGuard, LowErrorOnTestCorpus) {
  const auto train = guard_corpus(mr::CorpusKind::ArtificialLayouts, 600, 27);
  const auto test = guard_corpus(mr::CorpusKind::CpuFloorplans, 600, 29);
  mc::HmmGuard guard;
  guard.train(train);
  const auto err = guard.evaluate(test);
  EXPECT_EQ(err.total_runs, 600u);
  EXPECT_LT(err.error_rate(), 0.15);
  EXPECT_GT(err.iterations_saved, 0u);
}

// ------------------------------------------------------------ gate sizing

TEST(Sizer, ImprovesChainDelay) {
  auto ec = mn::make_eyechart(lib(), 8, 150.0);
  const double before = ec.unit_drive_delay_ps;
  mc::SizerOptions opt;
  const auto res = mc::size_greedy(ec.netlist, opt);
  EXPECT_NEAR(res.initial_delay_ps, before, 1e-6);
  EXPECT_LT(res.final_delay_ps, before);
  EXPECT_GT(res.final_area_um2, res.initial_area_um2);
  EXPECT_GT(res.moves, 0);
}

TEST(Sizer, NeverBeatsEyechartOptimum) {
  for (const std::size_t stages : {4u, 6u, 10u}) {
    const auto ch = mc::characterize_on_eyechart(lib(), stages, 120.0);
    EXPECT_GE(ch.heuristic_delay_ps, ch.optimal_delay_ps - 1e-9) << stages;
    EXPECT_LE(ch.heuristic_delay_ps, ch.unit_drive_delay_ps + 1e-9) << stages;
  }
}

TEST(Sizer, CapturesMostOfTheImprovement) {
  const auto ch = mc::characterize_on_eyechart(lib(), 8, 200.0);
  // Greedy sizing should recover the bulk of the X1 -> optimal gap.
  EXPECT_GT(ch.improvement_capture(), 0.8);
  EXPECT_LT(ch.suboptimality(), 0.15);
}

TEST(Sizer, RespectsTargetDelay) {
  auto ec = mn::make_eyechart(lib(), 8, 150.0);
  mc::SizerOptions opt;
  opt.target_delay_ps = ec.unit_drive_delay_ps * 0.9;  // easy target
  const auto res = mc::size_greedy(ec.netlist, opt);
  EXPECT_LE(res.final_delay_ps, opt.target_delay_ps + 1e-9);
  // Should stop early, not size to the bitter end.
  const auto full = mc::characterize_on_eyechart(lib(), 8, 150.0);
  EXPECT_GT(res.final_delay_ps, full.heuristic_delay_ps - 1e-9);
}

// ------------------------------------------------------- Rent estimation

TEST(Rent, RentNetlistRecoversStructuredExponent) {
  mn::RentSpec spec;
  spec.levels = 5;
  spec.leaf_gates = 24;
  spec.rent_exponent = 0.65;
  spec.seed = 31;
  const auto nl = mn::make_rent_netlist(lib(), spec);
  Rng rng{31};
  const auto fit = mp::estimate_rent(nl, mp::RentEstimateOptions{}, rng);
  ASSERT_GE(fit.levels.size(), 2u);
  EXPECT_GT(fit.exponent, 0.3);
  EXPECT_LT(fit.exponent, 0.95);
  EXPECT_GT(fit.r2, 0.7);
  // Bigger blocks expose more terminals.
  EXPECT_GT(fit.levels.front().mean_terminals, fit.levels.back().mean_terminals);
}

TEST(Rent, LocalLogicMorePartitionableThanGlobal) {
  // A netlist with locality should show a lower Rent exponent than one wired
  // globally at random.
  mn::RandomLogicSpec local_spec;
  local_spec.gates = 800;
  local_spec.seed = 33;
  const auto local_nl = mn::make_random_logic(lib(), local_spec);

  Rng r1{33};
  const auto local_fit = mp::estimate_rent(local_nl, mp::RentEstimateOptions{}, r1);
  ASSERT_GE(local_fit.levels.size(), 2u);
  // Locality-aware generator: meaningfully below the unstructured limit p=1.
  EXPECT_LT(local_fit.exponent, 0.95);
  EXPECT_GT(local_fit.exponent, 0.2);
}

// ---------------------------------------------------------- scheduler

TEST(Scheduler, MoreLicensesShorterMakespan) {
  Rng rng{41};
  const auto tasks = mc::make_project(60, 0.2, rng);
  mc::ScheduleOptions opt;
  opt.licenses = 2;
  const auto two = mc::simulate_schedule(tasks, opt);
  opt.licenses = 8;
  const auto eight = mc::simulate_schedule(tasks, opt);
  EXPECT_LT(eight.makespan_min, two.makespan_min);
  // Same total work (no guard): identical license-minutes.
  EXPECT_NEAR(eight.license_busy_min, two.license_busy_min, 1e-9);
  EXPECT_LE(eight.utilization, 1.0 + 1e-12);
}

TEST(Scheduler, DoomedGuardCutsWasteAndMakespan) {
  Rng rng{43};
  const auto tasks = mc::make_project(80, 0.3, rng);
  mc::ScheduleOptions opt;
  opt.licenses = 4;
  opt.doomed_guard = false;
  const auto unguarded = mc::simulate_schedule(tasks, opt);
  opt.doomed_guard = true;
  const auto guarded = mc::simulate_schedule(tasks, opt);
  EXPECT_LT(guarded.wasted_min, unguarded.wasted_min);
  EXPECT_LE(guarded.makespan_min, unguarded.makespan_min);
  EXPECT_LT(guarded.license_busy_min, unguarded.license_busy_min);
}

TEST(Scheduler, ShortestFirstNoWorseMakespan) {
  Rng rng{47};
  const auto tasks = mc::make_project(50, 0.15, rng);
  mc::ScheduleOptions opt;
  opt.licenses = 3;
  opt.policy = mc::QueuePolicy::Fifo;
  const auto fifo = mc::simulate_schedule(tasks, opt);
  opt.policy = mc::QueuePolicy::ShortestFirst;
  const auto sjf = mc::simulate_schedule(tasks, opt);
  // SJF is a classic makespan heuristic for list scheduling; allow ties.
  EXPECT_LE(sjf.makespan_min, fifo.makespan_min * 1.10);
  EXPECT_EQ(sjf.runs_executed, fifo.runs_executed);
}

TEST(Scheduler, NoTasksNoMakespan) {
  const auto res = mc::simulate_schedule({}, mc::ScheduleOptions{});
  EXPECT_DOUBLE_EQ(res.makespan_min, 0.0);
  EXPECT_EQ(res.runs_executed, 0u);
}
