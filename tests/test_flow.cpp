// Unit and integration tests for maestro::flow — knob spaces, each tool in
// isolation, and the end-to-end RTL-to-signoff flow with its documented
// noisy-tool behaviour.

#include <gtest/gtest.h>

#include "flow/flow.hpp"
#include "place/placement.hpp"
#include "util/stats.hpp"

namespace mf = maestro::flow;
namespace mn = maestro::netlist;
using maestro::util::Rng;

namespace {
const mn::CellLibrary& lib() {
  static const mn::CellLibrary l = mn::make_default_library();
  return l;
}

mf::FlowRecipe basic_recipe(double ghz = 1.0, std::uint64_t seed = 1) {
  mf::FlowRecipe r;
  r.design.kind = mf::DesignSpec::Kind::RandomLogic;
  r.design.scale = 1;
  r.design.name = "t";
  r.target_ghz = ghz;
  r.seed = seed;
  return r;
}
}  // namespace

TEST(Knobs, DefaultSpacesCoverAllSteps) {
  const auto spaces = mf::default_knob_spaces();
  EXPECT_EQ(spaces.size(), mf::kFlowStepCount);
  for (const auto& s : spaces) {
    EXPECT_FALSE(s.knobs.empty()) << mf::to_string(s.step);
    EXPECT_GE(s.combinations(), 2.0);
  }
}

TEST(Knobs, TrajectoryCountIsProductOfCombos) {
  const auto spaces = mf::default_knob_spaces();
  double expect = 1.0;
  for (const auto& s : spaces) expect *= s.combinations();
  EXPECT_DOUBLE_EQ(mf::count_trajectories(spaces), expect);
  // The paper's "well over ten thousand command-option combinations" for a
  // single P&R tool: our whole-flow space must be comfortably beyond that.
  EXPECT_GT(mf::count_trajectories(spaces), 1e4);
}

TEST(Knobs, IterationExplodesTrajectorySpace) {
  const auto spaces = mf::default_knob_spaces();
  const double one = mf::count_trajectories_with_iteration(spaces, 1);
  const double two = mf::count_trajectories_with_iteration(spaces, 2);
  EXPECT_DOUBLE_EQ(one, mf::count_trajectories(spaces));
  EXPECT_GT(two, one * 1000.0);
}

TEST(Knobs, DefaultTrajectoryUsesFirstValues) {
  const auto spaces = mf::default_knob_spaces();
  const auto t = mf::default_trajectory(spaces);
  for (const auto& s : spaces) {
    for (const auto& k : s.knobs) {
      EXPECT_EQ(t.value(s.step, k.name, "?"), k.values.front());
    }
  }
}

TEST(Knobs, RandomTrajectoryIsLegal) {
  const auto spaces = mf::default_knob_spaces();
  Rng rng{3};
  const auto t = mf::random_trajectory(spaces, rng);
  for (const auto& s : spaces) {
    for (const auto& k : s.knobs) {
      const auto& v = t.value(s.step, k.name, "?");
      EXPECT_NE(std::find(k.values.begin(), k.values.end(), v), k.values.end());
    }
  }
}

TEST(Knobs, ValueFallback) {
  mf::FlowTrajectory t;
  const std::string fb = "fallback";
  EXPECT_EQ(t.value(mf::FlowStep::Place, "nope", fb), fb);
  t.set(mf::FlowStep::Place, "effort", "high");
  EXPECT_EQ(t.value(mf::FlowStep::Place, "effort", fb), "high");
}

TEST(Knobs, EnumerateDimensionsIsStableAndComplete) {
  const auto spaces = mf::default_knob_spaces();
  const auto dims = mf::enumerate_dimensions(spaces);
  std::size_t expect = 0;
  for (const auto& s : spaces) expect += s.knobs.size();
  ASSERT_EQ(dims.size(), expect);
  // Declaration order: step-enum major, knob-declaration minor — and the
  // index helpers agree with the enumeration.
  std::size_t i = 0;
  for (const auto& s : spaces) {
    for (const auto& k : s.knobs) {
      EXPECT_EQ(dims[i].step, s.step);
      EXPECT_EQ(dims[i].knob, k.name);
      EXPECT_EQ(dims[i].values, k.values);
      EXPECT_EQ(mf::dimension_index(spaces, s.step, k.name), i);
      ++i;
    }
  }
  EXPECT_FALSE(mf::dimension_index(spaces, mf::FlowStep::Place, "no_such_knob").has_value());
  EXPECT_EQ(mf::value_index(dims[0], dims[0].values.back()), dims[0].values.size() - 1);
  EXPECT_FALSE(mf::value_index(dims[0], "no_such_value").has_value());
}

TEST(Knobs, ValidateTrajectoryAcceptsLegalRejectsUnknown) {
  const auto spaces = mf::default_knob_spaces();
  Rng rng{11};
  EXPECT_EQ(mf::validate_trajectory(spaces, mf::default_trajectory(spaces)), std::nullopt);
  EXPECT_EQ(mf::validate_trajectory(spaces, mf::random_trajectory(spaces, rng)), std::nullopt);

  mf::FlowTrajectory bad_knob = mf::default_trajectory(spaces);
  bad_knob.set(mf::FlowStep::Place, "movez", "40");
  const auto e1 = mf::validate_trajectory(spaces, bad_knob);
  ASSERT_TRUE(e1.has_value());
  EXPECT_NE(e1->find("place.movez"), std::string::npos);

  mf::FlowTrajectory bad_value = mf::default_trajectory(spaces);
  bad_value.set(mf::FlowStep::Synthesis, "effort", "turbo");
  const auto e2 = mf::validate_trajectory(spaces, bad_value);
  ASSERT_TRUE(e2.has_value());
  EXPECT_NE(e2->find("synthesis.effort"), std::string::npos);
  EXPECT_NE(e2->find("turbo"), std::string::npos);
  EXPECT_NE(e2->find("legal:"), std::string::npos);

  // A step outside the given spaces (subset tuning) is rejected by name.
  std::vector<mf::KnobSpace> only_place{spaces[2]};
  mf::FlowTrajectory off_step;
  off_step.set(mf::FlowStep::Route, "rounds", "8");
  const auto e3 = mf::validate_trajectory(only_place, off_step);
  ASSERT_TRUE(e3.has_value());
  EXPECT_NE(e3->find("route"), std::string::npos);
}

TEST(Knobs, IndexRoundTripThroughTrajectory) {
  const auto spaces = mf::default_knob_spaces();
  const auto dims = mf::enumerate_dimensions(spaces);
  Rng rng{17};
  std::vector<std::size_t> choice(dims.size());
  for (std::size_t i = 0; i < dims.size(); ++i) {
    choice[i] = static_cast<std::size_t>(rng.below(dims[i].values.size()));
  }
  const auto t = mf::trajectory_from_indices(dims, choice);
  EXPECT_EQ(mf::validate_trajectory(spaces, t), std::nullopt);
  const auto back = mf::indices_from_trajectory(dims, t);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, choice);

  // Unset knobs decode as the default (index 0); illegal values as nullopt.
  mf::FlowTrajectory partial;
  partial.set(dims[3].step, dims[3].knob, dims[3].values[1]);
  const auto sparse = mf::indices_from_trajectory(dims, partial);
  ASSERT_TRUE(sparse.has_value());
  EXPECT_EQ((*sparse)[3], 1u);
  EXPECT_EQ((*sparse)[0], 0u);
  partial.set(dims[0].step, dims[0].knob, "bogus");
  EXPECT_FALSE(mf::indices_from_trajectory(dims, partial).has_value());
}

TEST(Synthesis, ProducesValidSizedNetlist) {
  mf::DesignState ds;
  ds.lib = &lib();
  mf::ToolContext ctx;
  ctx.target_ghz = 1.0;
  ctx.seed = 5;
  const auto out = mf::run_synthesis(ds, basic_recipe().design, ctx);
  EXPECT_TRUE(out.ok);
  ASSERT_NE(ds.nl, nullptr);
  std::string why;
  EXPECT_TRUE(ds.nl->validate(&why)) << why;
  EXPECT_GT(out.runtime_min, 0.0);
  EXPECT_FALSE(out.log.iterations.empty());
}

TEST(Synthesis, MaxFanoutRespected) {
  mf::DesignState ds;
  ds.lib = &lib();
  mf::ToolContext ctx;
  ctx.target_ghz = 0.5;
  ctx.seed = 7;
  ctx.knobs["max_fanout"] = "8";
  mf::DesignSpec spec = basic_recipe().design;
  const auto out = mf::run_synthesis(ds, spec, ctx);
  ASSERT_TRUE(out.ok);
  for (const auto& net : ds.nl->nets()) {
    EXPECT_LE(net.sinks.size(), 8u) << net.name;
  }
  EXPECT_TRUE(ds.nl->validate());
}

TEST(Synthesis, HigherTargetMoreArea) {
  auto run_at = [&](double ghz) {
    mf::DesignState ds;
    ds.lib = &lib();
    mf::ToolContext ctx;
    ctx.target_ghz = ghz;
    ctx.seed = 9;
    ctx.knobs["sizing_iterations"] = "8";
    mf::run_synthesis(ds, basic_recipe().design, ctx);
    return ds.nl->total_area_um2();
  };
  const double relaxed = run_at(0.4);
  const double aggressive = run_at(2.4);
  EXPECT_GT(aggressive, relaxed * 1.05);
}

TEST(Synthesis, WireloadTimingPositiveAndMonotoneInDepth) {
  const auto shallow = mn::make_chain(lib(), 3);
  const auto deep = mn::make_chain(lib(), 30);
  const auto t_shallow = mf::wireload_timing(shallow, 1.4);
  const auto t_deep = mf::wireload_timing(deep, 1.4);
  EXPECT_GT(t_shallow.critical_path_ps, 0.0);
  EXPECT_GT(t_deep.critical_path_ps, 5.0 * t_shallow.critical_path_ps);
}

TEST(FlowSteps, RequirePriorState) {
  mf::DesignState ds;
  ds.lib = &lib();
  mf::ToolContext ctx;
  EXPECT_FALSE(mf::run_floorplan(ds, ctx).ok);
  EXPECT_FALSE(mf::run_place(ds, ctx).ok);
  EXPECT_FALSE(mf::run_cts(ds, ctx).ok);
  EXPECT_FALSE(mf::run_route(ds, ctx).ok);
  EXPECT_FALSE(mf::run_signoff(ds, ctx).ok);
}

TEST(Flow, EndToEndAtModestTargetSucceeds) {
  mf::FlowManager fm{lib()};
  const auto res = fm.run(basic_recipe(0.8, 11));
  EXPECT_TRUE(res.completed);
  EXPECT_TRUE(res.timing_met) << "wns=" << res.wns_ps;
  EXPECT_TRUE(res.drc_clean) << "drvs=" << res.final_drvs;
  EXPECT_TRUE(res.success());
  EXPECT_GT(res.area_um2, 0.0);
  EXPECT_GT(res.power_mw, 0.0);
  EXPECT_GT(res.tat_minutes, 0.0);
  EXPECT_GT(res.hpwl_dbu, 0.0);
  EXPECT_EQ(res.logs.size(), mf::kFlowStepCount);
}

TEST(Flow, AbsurdTargetFailsTiming) {
  mf::FlowManager fm{lib()};
  const auto res = fm.run(basic_recipe(5.0, 13));
  EXPECT_TRUE(res.completed);
  EXPECT_FALSE(res.timing_met);
  EXPECT_FALSE(res.success());
}

TEST(Flow, PowerConstraintEnforced) {
  mf::FlowManager fm{lib()};
  mf::FlowConstraints c;
  c.max_power_mw = 1e-6;  // impossible
  const auto res = fm.run(basic_recipe(0.8, 17), c);
  EXPECT_TRUE(res.completed);
  EXPECT_FALSE(res.constraints_met);
  EXPECT_FALSE(res.success());
}

TEST(Flow, DeterministicGivenSeed) {
  mf::FlowManager fm{lib()};
  const auto a = fm.run(basic_recipe(1.0, 19));
  const auto b = fm.run(basic_recipe(1.0, 19));
  EXPECT_DOUBLE_EQ(a.area_um2, b.area_um2);
  EXPECT_DOUBLE_EQ(a.wns_ps, b.wns_ps);
  EXPECT_DOUBLE_EQ(a.final_drvs, b.final_drvs);
}

TEST(Flow, SeedChangesResults) {
  mf::FlowManager fm{lib()};
  // Near max frequency, results must vary run-to-run (the Fig. 3 claim).
  const auto a = fm.run(basic_recipe(1.35, 23));
  const auto b = fm.run(basic_recipe(1.35, 24));
  EXPECT_NE(a.wns_ps, b.wns_ps);
}

TEST(Flow, NoiseGrowsTowardMaxFrequency) {
  mf::FlowManager fm{lib()};
  auto wns_sigma_at = [&](double ghz) {
    maestro::util::RunningStats s;
    for (std::uint64_t seed = 0; seed < 8; ++seed) {
      s.add(fm.run(basic_recipe(ghz, 100 + seed)).area_um2);
    }
    return s.stddev();
  };
  const double low = wns_sigma_at(0.6);
  const double high = wns_sigma_at(1.45);
  EXPECT_GT(high, low);  // area noise appears near the achievable limit
}

TEST(Flow, LowUtilizationEasesRouting) {
  mf::FlowManager fm{lib()};
  auto recipe = basic_recipe(0.8, 29);
  recipe.knobs.set(mf::FlowStep::Floorplan, "utilization", "0.50");
  const auto loose = fm.run(recipe);
  recipe.knobs.set(mf::FlowStep::Floorplan, "utilization", "0.95");
  recipe.seed = 29;
  const auto tight = fm.run(recipe);
  EXPECT_LE(loose.route_difficulty, tight.route_difficulty + 0.2);
}

TEST(Flow, RouteMonitorCanStopEarly) {
  mf::FlowManager fm{lib()};
  auto recipe = basic_recipe(1.0, 31);
  int calls = 0;
  recipe.route_monitor = [&calls](int iter, double, double) {
    ++calls;
    return iter < 4;  // stop after 5 iterations
  };
  const auto res = fm.run(recipe);
  EXPECT_TRUE(res.completed);
  EXPECT_EQ(calls, 5);  // iterations 0..4 observed; monitor vetoes at 4
  // The route log is truncated.
  for (const auto& log : res.logs) {
    if (log.tool == "route") {
      EXPECT_LE(log.iterations.size(), 5u);
      EXPECT_FALSE(log.completed);
    }
  }
}

TEST(Flow, KeepStateExposesDatabase) {
  mf::FlowManager fm{lib()};
  mf::DesignState state;
  const auto res = fm.run_keep_state(basic_recipe(0.9, 37), mf::FlowConstraints{}, state);
  EXPECT_TRUE(res.completed);
  ASSERT_NE(state.nl, nullptr);
  ASSERT_NE(state.pl, nullptr);
  EXPECT_GT(state.signoff.endpoints.size(), 0u);
  EXPECT_GT(state.clock.buffers, 0u);
  // Placement is legal after the flow.
  EXPECT_TRUE(maestro::place::check_overlaps(*state.pl).legal());
}

TEST(Flow, TatScalesWithEffort) {
  mf::FlowManager fm{lib()};
  auto low = basic_recipe(0.8, 41);
  low.knobs.set(mf::FlowStep::Place, "effort", "low");
  low.knobs.set(mf::FlowStep::Route, "detail_iterations", "12");
  auto high = basic_recipe(0.8, 41);
  high.knobs.set(mf::FlowStep::Place, "effort", "high");
  high.knobs.set(mf::FlowStep::Route, "detail_iterations", "40");
  EXPECT_LT(fm.run(low).tat_minutes, fm.run(high).tat_minutes);
}

TEST(Flow, CpuLikeDesignRuns) {
  mf::FlowManager fm{lib()};
  mf::FlowRecipe r;
  r.design.kind = mf::DesignSpec::Kind::CpuLike;
  r.design.scale = 1;
  r.design.name = "pulpino_like";
  r.target_ghz = 0.7;
  r.seed = 43;
  const auto res = fm.run(r);
  EXPECT_TRUE(res.completed);
  EXPECT_GT(res.area_um2, 1000.0);
}

TEST(Flow, GatesOverrideHonored) {
  mf::FlowManager fm{lib()};
  auto r = basic_recipe(0.8, 47);
  r.design.gates_override = 333;
  mf::DesignState state;
  fm.run_keep_state(r, mf::FlowConstraints{}, state);
  const auto stats = mn::compute_stats(*state.nl);
  // 333 gates + flops + ios + fanout buffers.
  EXPECT_GE(stats.instances, 333u);
  EXPECT_LE(stats.instances, 333u + 120u + 64u + 50u);
}
