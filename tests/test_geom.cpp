// Unit tests for maestro::geom — points, rects, bounding boxes, HPWL,
// grid maps and indexers.

#include <gtest/gtest.h>

#include "geom/geometry.hpp"

namespace mg = maestro::geom;

TEST(Point, ArithmeticAndManhattan) {
  const mg::Point a{3, 4};
  const mg::Point b{1, 1};
  EXPECT_EQ((a + b), (mg::Point{4, 5}));
  EXPECT_EQ((a - b), (mg::Point{2, 3}));
  EXPECT_EQ(mg::manhattan(a, b), 5);
  EXPECT_EQ(mg::manhattan(b, a), 5);
  EXPECT_EQ(mg::manhattan(a, a), 0);
}

TEST(Rect, BasicProperties) {
  const mg::Rect r{{0, 0}, {10, 20}};
  EXPECT_EQ(r.width(), 10);
  EXPECT_EQ(r.height(), 20);
  EXPECT_EQ(r.area(), 200);
  EXPECT_TRUE(r.valid());
  EXPECT_EQ(r.center(), (mg::Point{5, 10}));
}

TEST(Rect, ContainsAndIntersects) {
  const mg::Rect r{{0, 0}, {10, 10}};
  EXPECT_TRUE(r.contains({0, 0}));
  EXPECT_TRUE(r.contains({10, 10}));
  EXPECT_TRUE(r.contains({5, 5}));
  EXPECT_FALSE(r.contains({11, 5}));
  EXPECT_TRUE(r.intersects({{5, 5}, {15, 15}}));
  EXPECT_TRUE(r.intersects({{10, 10}, {20, 20}}));  // touching counts
  EXPECT_FALSE(r.intersects({{11, 11}, {20, 20}}));
}

TEST(Rect, IntersectionAndBloat) {
  const mg::Rect a{{0, 0}, {10, 10}};
  const mg::Rect b{{5, 5}, {20, 20}};
  const mg::Rect i = a.intersection(b);
  EXPECT_EQ(i, (mg::Rect{{5, 5}, {10, 10}}));
  const mg::Rect no = a.intersection({{30, 30}, {40, 40}});
  EXPECT_FALSE(no.valid());
  EXPECT_EQ(a.bloat(2), (mg::Rect{{-2, -2}, {12, 12}}));
}

TEST(BBox, ExpandAndHalfPerimeter) {
  mg::BBox box;
  EXPECT_TRUE(box.empty());
  EXPECT_EQ(box.half_perimeter(), 0);
  box.expand(mg::Point{2, 3});
  EXPECT_FALSE(box.empty());
  EXPECT_EQ(box.half_perimeter(), 0);  // single point
  box.expand(mg::Point{5, 7});
  EXPECT_EQ(box.half_perimeter(), (5 - 2) + (7 - 3));
  box.expand(mg::Rect{{0, 0}, {1, 1}});
  EXPECT_EQ(box.rect().lo, (mg::Point{0, 0}));
  EXPECT_EQ(box.half_perimeter(), 5 + 7);
}

TEST(Hpwl, MatchesManualBox) {
  const std::vector<mg::Point> pins = {{0, 0}, {10, 5}, {4, 20}};
  EXPECT_EQ(mg::hpwl(pins), 10 + 20);
  EXPECT_EQ(mg::hpwl(std::vector<mg::Point>{}), 0);
  EXPECT_EQ(mg::hpwl(std::vector<mg::Point>{{3, 3}}), 0);
}

TEST(GridMap, StoreAndFill) {
  mg::GridMap<int> g{3, 2, 7};
  EXPECT_EQ(g.cols(), 3u);
  EXPECT_EQ(g.rows(), 2u);
  EXPECT_EQ(g.size(), 6u);
  EXPECT_EQ(g.at(2, 1), 7);
  g.at(1, 0) = 42;
  EXPECT_EQ(g.at(1, 0), 42);
  g.fill(0);
  EXPECT_EQ(g.at(1, 0), 0);
  EXPECT_TRUE(g.in_bounds(2, 1));
  EXPECT_FALSE(g.in_bounds(3, 0));
  EXPECT_FALSE(g.in_bounds(0, 2));
}

TEST(GridIndexer, CellOfCorners) {
  const mg::GridIndexer idx{{{0, 0}, {100, 100}}, 10, 10};
  EXPECT_EQ(idx.cell_of({0, 0}), (std::pair<std::size_t, std::size_t>{0, 0}));
  EXPECT_EQ(idx.cell_of({99, 99}), (std::pair<std::size_t, std::size_t>{9, 9}));
  // Out-of-range points clamp.
  EXPECT_EQ(idx.cell_of({-5, 500}), (std::pair<std::size_t, std::size_t>{0, 9}));
  EXPECT_EQ(idx.cell_of({100, 100}), (std::pair<std::size_t, std::size_t>{9, 9}));
}

TEST(GridIndexer, CellRectTilesRegion) {
  const mg::GridIndexer idx{{{0, 0}, {100, 50}}, 4, 2};
  const auto r00 = idx.cell_rect(0, 0);
  EXPECT_EQ(r00, (mg::Rect{{0, 0}, {25, 25}}));
  const auto r31 = idx.cell_rect(3, 1);
  EXPECT_EQ(r31, (mg::Rect{{75, 25}, {100, 50}}));
  // Center of a cell maps back to that cell.
  for (std::size_t c = 0; c < 4; ++c) {
    for (std::size_t r = 0; r < 2; ++r) {
      EXPECT_EQ(idx.cell_of(idx.center_of(c, r)), (std::pair<std::size_t, std::size_t>{c, r}));
    }
  }
}

// Property: every point in the region maps to an in-bounds cell.
class GridIndexerProperty : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(GridIndexerProperty, AllPointsInBounds) {
  const auto [cols, rows] = GetParam();
  const mg::GridIndexer idx{{{-50, -30}, {70, 90}}, static_cast<std::size_t>(cols),
                            static_cast<std::size_t>(rows)};
  for (mg::Dbu x = -50; x <= 70; x += 7) {
    for (mg::Dbu y = -30; y <= 90; y += 11) {
      const auto [c, r] = idx.cell_of({x, y});
      EXPECT_LT(c, static_cast<std::size_t>(cols));
      EXPECT_LT(r, static_cast<std::size_t>(rows));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, GridIndexerProperty,
                         ::testing::Values(std::pair{1, 1}, std::pair{3, 5}, std::pair{16, 2},
                                           std::pair{32, 32}));
