// Global-route kernel equivalence and invariant suite (ctest label: groute).
//
// Covers the four legs of the route-kernel rebuild:
//  * MazeArena windowed A* == brute-force Dijkstra on the same window
//    (path-cost equivalence on random congested grids), plus arena reuse
//    across grids of different sizes;
//  * the GridGraph incremental overflow ledger == brute-force recomputation
//    under randomized usage churn;
//  * rip-up bookkeeping: final edge usage == recount over the committed
//    segment paths;
//  * determinism: serial == 1-thread pool == 8-thread pool, bitwise; and
//    incremental reroute == from-scratch route after a placement
//    perturbation, including the flow-level run_route wiring.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <set>
#include <vector>

#include "exec/executor.hpp"
#include "flow/tools.hpp"
#include "netlist/design_view.hpp"
#include "netlist/generators.hpp"
#include "obs/registry.hpp"
#include "place/placer.hpp"
#include "route/global_router.hpp"
#include "route/maze_arena.hpp"

namespace mn = maestro::netlist;
namespace mp = maestro::place;
namespace mr = maestro::route;
namespace me = maestro::exec;
namespace mf = maestro::flow;
namespace obs = maestro::obs;
using maestro::util::Rng;

namespace {

const mn::CellLibrary& lib() {
  static const mn::CellLibrary l = mn::make_default_library();
  return l;
}

/// The router's congestion-aware edge cost, duplicated here on purpose: the
/// brute-force checker must price edges identically without sharing code
/// with the implementation under test.
double edge_cost(const mr::GridGraph& g, std::size_t e, double pw, double hw) {
  const double util = g.capacity(e) > 0.0 ? g.usage(e) / g.capacity(e) : 10.0;
  double cost = 1.0;
  if (util > 0.6) cost += pw * (util - 0.6) * (util - 0.6) * 12.0;
  if (g.usage(e) >= g.capacity(e)) cost += pw * 8.0;
  cost += hw * g.history(e);
  return cost;
}

/// O(V^2) Dijkstra over the nodes of search_window(g, from, to): the oracle
/// the windowed arena A* must match in path cost.
double dijkstra_cost(const mr::GridGraph& g, const mr::GCell& from, const mr::GCell& to,
                     double pw, double hw) {
  const auto win = mr::search_window(g, from, to);
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(g.node_count(), kInf);
  std::vector<char> done(g.node_count(), 0);
  dist[g.node_id(from)] = 0.0;
  const auto target = g.node_id(to);
  for (;;) {
    std::size_t u = g.node_count();
    double best = kInf;
    for (std::uint32_t r = win.row_lo; r <= win.row_hi; ++r) {
      for (std::uint32_t c = win.col_lo; c <= win.col_hi; ++c) {
        const std::size_t id = g.node_id({c, r});
        if (!done[id] && dist[id] < best) {
          best = dist[id];
          u = id;
        }
      }
    }
    if (u == g.node_count() || u == target) break;
    done[u] = 1;
    const mr::GCell c = g.cell_of(u);
    struct Nb {
      bool ok;
      mr::GCell cell;
      std::size_t edge;
    };
    const Nb nbs[4] = {
        {c.col + 1 < g.cols(), {c.col + 1, c.row},
         c.col + 1 < g.cols() ? g.edge_id(c, mr::Dir::East) : 0},
        {c.col > 0, {c.col - 1, c.row},
         c.col > 0 ? g.edge_id({c.col - 1, c.row}, mr::Dir::East) : 0},
        {c.row + 1 < g.rows(), {c.col, c.row + 1},
         c.row + 1 < g.rows() ? g.edge_id(c, mr::Dir::North) : 0},
        {c.row > 0, {c.col, c.row - 1},
         c.row > 0 ? g.edge_id({c.col, c.row - 1}, mr::Dir::North) : 0},
    };
    for (const auto& nb : nbs) {
      if (!nb.ok || !win.contains(nb.cell)) continue;
      const double nd = dist[u] + edge_cost(g, nb.edge, pw, hw);
      const std::size_t id = g.node_id(nb.cell);
      if (nd < dist[id]) dist[id] = nd;
    }
  }
  return dist[target];
}

double path_cost(const mr::GridGraph& g, const std::vector<std::size_t>& path, double pw,
                 double hw) {
  double c = 0.0;
  for (const std::size_t e : path) c += edge_cost(g, e, pw, hw);
  return c;
}

/// Assert the edge sequence walks contiguously from `from` to `to`.
void expect_connected(const mr::GridGraph& g, const std::vector<std::size_t>& path,
                      const mr::GCell& from, const mr::GCell& to) {
  mr::GCell at = from;
  for (const std::size_t e : path) {
    const auto [a, b] = g.edge_cells(e);
    ASSERT_TRUE(at == a || at == b) << "path breaks at edge " << e;
    at = (at == a) ? b : a;
  }
  EXPECT_EQ(at, to);
}

mr::GridGraph random_grid(std::size_t cols, std::size_t rows, Rng& rng) {
  const maestro::geom::GridIndexer idx{{{0, 0}, {100000, 100000}}, cols, rows};
  mr::GridGraph g{cols, rows, 4.0, 3.0, idx};
  for (std::size_t e = 0; e < g.edge_count(); ++e) {
    if (rng.uniform() < 0.6) g.add_usage(e, static_cast<double>(rng.below(7)));
    if (rng.uniform() < 0.3) g.bump_history(e, static_cast<double>(rng.below(4)));
  }
  return g;
}

mp::Placement placed_design(std::uint64_t seed, std::size_t gates, double util,
                            std::unique_ptr<mn::Netlist>& nl_out,
                            std::unique_ptr<mp::Floorplan>& fp_out) {
  mn::RandomLogicSpec spec;
  spec.gates = gates;
  spec.seed = seed;
  nl_out = std::make_unique<mn::Netlist>(mn::make_random_logic(lib(), spec));
  fp_out = std::make_unique<mp::Floorplan>(mp::Floorplan::for_netlist(*nl_out, util));
  Rng rng{seed};
  auto pl = mp::random_placement(*nl_out, *fp_out, rng);
  mp::AnnealOptions ao;
  ao.moves_per_cell = 6.0;
  mp::anneal_placement(pl, ao, rng);
  mp::legalize(pl);
  return pl;
}

void expect_results_identical(const mr::RouteResult& a, const mr::RouteResult& b) {
  EXPECT_EQ(a.wirelength_gcells, b.wirelength_gcells);
  EXPECT_EQ(a.total_overflow, b.total_overflow);
  EXPECT_EQ(a.overflowed_edges, b.overflowed_edges);
  EXPECT_EQ(a.max_utilization, b.max_utilization);
  EXPECT_EQ(a.rounds_used, b.rounds_used);
  EXPECT_EQ(a.converged, b.converged);
  EXPECT_EQ(a.overflow_per_round, b.overflow_per_round);
  ASSERT_EQ(a.segments.size(), b.segments.size());
  for (std::size_t i = 0; i < a.segments.size(); ++i) {
    EXPECT_EQ(a.segments[i].from, b.segments[i].from);
    EXPECT_EQ(a.segments[i].to, b.segments[i].to);
    EXPECT_EQ(a.segments[i].edges, b.segments[i].edges);
  }
}

void expect_grids_identical(const mr::GridGraph& a, const mr::GridGraph& b) {
  ASSERT_EQ(a.edge_count(), b.edge_count());
  for (std::size_t e = 0; e < a.edge_count(); ++e) {
    ASSERT_EQ(a.usage(e), b.usage(e)) << "usage mismatch at edge " << e;
    ASSERT_EQ(a.history(e), b.history(e)) << "history mismatch at edge " << e;
  }
  EXPECT_EQ(a.total_overflow(), b.total_overflow());
  EXPECT_EQ(a.overflowed_edges(), b.overflowed_edges());
  EXPECT_EQ(a.max_utilization(), b.max_utilization());
}

std::uint64_t counter_value(const char* name) {
  return obs::Registry::global().counter(name).value();
}

}  // namespace

TEST(SearchWindow, ContainsOverlapsAndClamping) {
  const maestro::geom::GridIndexer idx{{{0, 0}, {1000, 1000}}, 20, 20};
  const mr::GridGraph g{20, 20, 4.0, 4.0, idx};
  const auto w = mr::search_window(g, {2, 3}, {9, 5});
  EXPECT_EQ(w.col_lo, 0u);  // 2 - 6 clamps to 0
  EXPECT_EQ(w.col_hi, 15u);
  EXPECT_EQ(w.row_lo, 0u);
  EXPECT_EQ(w.row_hi, 11u);
  EXPECT_TRUE(w.contains({0, 0}));
  EXPECT_TRUE(w.contains({15, 11}));
  EXPECT_FALSE(w.contains({16, 0}));
  EXPECT_FALSE(w.contains({0, 12}));
  const auto far = mr::search_window(g, {19, 19}, {18, 18});
  EXPECT_FALSE(w.overlaps(far));
  EXPECT_TRUE(w.overlaps(mr::search_window(g, {10, 10}, {12, 12})));
}

TEST(MazeArena, MatchesBruteForceDijkstraOnRandomGrids) {
  // Small grids (window covers everything) and larger grids (genuinely
  // windowed): arena A* path cost must equal the Dijkstra oracle's distance
  // over the same window.
  Rng rng{101};
  const std::pair<std::size_t, std::size_t> shapes[] = {{9, 7}, {12, 12}, {40, 33}};
  mr::MazeArena arena;
  for (const auto& [cols, rows] : shapes) {
    for (int trial = 0; trial < 8; ++trial) {
      const mr::GridGraph g = random_grid(cols, rows, rng);
      const mr::GCell from{static_cast<std::uint32_t>(rng.below(cols)),
                           static_cast<std::uint32_t>(rng.below(rows))};
      const mr::GCell to{static_cast<std::uint32_t>(rng.below(cols)),
                         static_cast<std::uint32_t>(rng.below(rows))};
      if (from == to) continue;
      const auto path = mr::arena_maze_route(g, arena, from, to, 1.0, 0.4);
      ASSERT_FALSE(path.empty());
      expect_connected(g, path, from, to);
      const double got = path_cost(g, path, 1.0, 0.4);
      const double want = dijkstra_cost(g, from, to, 1.0, 0.4);
      EXPECT_NEAR(got, want, 1e-9) << cols << "x" << rows << " trial " << trial;
    }
  }
}

TEST(MazeArena, ReuseAcrossGridSizesIsClean) {
  // Scratch reuse must never leak state: a warm arena (used on a different
  // grid, including a larger one) must produce exactly the path a cold
  // arena produces.
  Rng rng{202};
  const mr::GridGraph big = random_grid(40, 33, rng);
  const mr::GridGraph small = random_grid(11, 9, rng);
  mr::MazeArena warm;
  (void)mr::arena_maze_route(big, warm, {1, 1}, {38, 30}, 1.0, 0.4);
  (void)mr::arena_maze_route(small, warm, {0, 0}, {10, 8}, 1.0, 0.4);
  for (int trial = 0; trial < 6; ++trial) {
    const mr::GCell from{static_cast<std::uint32_t>(rng.below(11)),
                         static_cast<std::uint32_t>(rng.below(9))};
    const mr::GCell to{static_cast<std::uint32_t>(rng.below(11)),
                       static_cast<std::uint32_t>(rng.below(9))};
    mr::MazeArena cold;
    const auto warm_path = mr::arena_maze_route(small, warm, from, to, 1.2, 0.6);
    const auto cold_path = mr::arena_maze_route(small, cold, from, to, 1.2, 0.6);
    EXPECT_EQ(warm_path, cold_path);
  }
}

TEST(OverflowLedger, MatchesBruteForceUnderRandomChurn) {
  const maestro::geom::GridIndexer idx{{{0, 0}, {100000, 100000}}, 16, 14};
  mr::GridGraph g{16, 14, 3.0, 2.0, idx};
  Rng rng{303};
  auto check = [&] {
    double total = 0.0;
    std::size_t count = 0;
    double max_util = 0.0;
    for (std::size_t e = 0; e < g.edge_count(); ++e) {
      total += g.overflow(e);
      if (g.usage(e) > g.capacity(e)) ++count;
      if (g.capacity(e) > 0.0) max_util = std::max(max_util, g.usage(e) / g.capacity(e));
    }
    ASSERT_NEAR(g.total_overflow(), total, 1e-12);
    ASSERT_EQ(g.overflowed_edges(), count);
    ASSERT_DOUBLE_EQ(g.max_utilization(), max_util);
    // The ledger set itself matches brute-force membership.
    std::set<std::size_t> in_set(g.overflowed().begin(), g.overflowed().end());
    ASSERT_EQ(in_set.size(), count);
    for (const std::size_t e : in_set) ASSERT_GT(g.usage(e), g.capacity(e));
  };
  for (int step = 0; step < 2000; ++step) {
    const std::size_t e = rng.below(g.edge_count());
    // Mix of additions and removals, crossing the capacity threshold often.
    const double amount = g.usage(e) > 0.0 && rng.uniform() < 0.45 ? -1.0 : 1.0;
    g.add_usage(e, amount);
    if (step % 50 == 0) check();
  }
  check();
  g.reset_usage();
  check();
}

TEST(GlobalRouter, UsageEqualsRecountOverCommittedPaths) {
  // Rip-up bookkeeping invariant: after any number of negotiation rounds,
  // per-edge usage must equal the recount over the final committed paths.
  std::unique_ptr<mn::Netlist> nl;
  std::unique_ptr<mp::Floorplan> fp;
  const auto pl = placed_design(31, 800, 0.8, nl, fp);
  for (const int rounds : {1, 2, 8}) {
    mr::RouteOptions opt;
    opt.gcells_x = opt.gcells_y = 24;
    opt.h_capacity = opt.v_capacity = 7.0;  // congested: rip-up actually runs
    opt.max_rounds = rounds;
    opt.keep_segments = true;
    mr::GridGraph g;
    const auto res = mr::global_route(pl, opt, g);
    std::vector<double> recount(g.edge_count(), 0.0);
    for (const auto& seg : res.segments) {
      for (const std::size_t e : seg.edges) recount[e] += 1.0;
    }
    for (std::size_t e = 0; e < g.edge_count(); ++e) {
      ASSERT_EQ(g.usage(e), recount[e]) << "rounds=" << rounds << " edge=" << e;
    }
  }
}

TEST(GlobalRouter, PerNetSegmentsMatchDeduplicatedPins) {
  // The O(p log p) dedup must leave unique pin GCells in first-seen order,
  // and a net with k distinct pin GCells must produce exactly k-1 segments.
  std::unique_ptr<mn::Netlist> nl;
  std::unique_ptr<mp::Floorplan> fp;
  const auto pl = placed_design(37, 700, 0.75, nl, fp);
  mn::DesignView view{*nl};
  mr::RouteOptions opt;
  opt.gcells_x = opt.gcells_y = 20;
  opt.keep_state = true;
  mr::GridGraph g;
  const auto res = mr::global_route(pl, view, opt, g);
  const auto& st = res.state;
  ASSERT_TRUE(st.valid);
  ASSERT_EQ(st.net_pin_begin.size(), nl->net_count() + 1);
  for (std::size_t n = 0; n < nl->net_count(); ++n) {
    std::set<std::pair<std::uint32_t, std::uint32_t>> seen;
    for (std::uint32_t p = st.net_pin_begin[n]; p < st.net_pin_begin[n + 1]; ++p) {
      ASSERT_TRUE(seen.insert({st.pin_cells[p].col, st.pin_cells[p].row}).second)
          << "duplicate pin GCell in net " << n;
    }
    const std::size_t pins = seen.size();
    const std::size_t segs = st.net_seg_begin[n + 1] - st.net_seg_begin[n];
    EXPECT_EQ(segs, pins >= 2 ? pins - 1 : 0u) << "net " << n;
  }
}

TEST(GlobalRouter, ParallelBitwiseIdenticalToSerial) {
  std::unique_ptr<mn::Netlist> nl;
  std::unique_ptr<mp::Floorplan> fp;
  const auto pl = placed_design(41, 1200, 0.8, nl, fp);
  mr::RouteOptions opt;
  opt.gcells_x = opt.gcells_y = 32;
  opt.h_capacity = opt.v_capacity = 8.0;  // congested: Phase B runs batches
  opt.keep_segments = true;

  mr::GridGraph g_serial;
  const auto serial = mr::global_route(pl, opt, g_serial);
  EXPECT_GT(serial.rounds_used, 1);  // negotiation must actually engage

  me::RunExecutor pool1{{.threads = 1}};
  me::RunExecutor pool8{{.threads = 8}};
  for (me::RunExecutor* pool : {&pool1, &pool8}) {
    mr::RouteOptions popt = opt;
    popt.executor = pool;
    mr::GridGraph g_par;
    const auto par = mr::global_route(pl, popt, g_par);
    expect_results_identical(serial, par);
    expect_grids_identical(g_serial, g_par);
  }
}

TEST(GlobalRouter, IncrementalMatchesFromScratchAfterPerturbation) {
  std::unique_ptr<mn::Netlist> nl;
  std::unique_ptr<mp::Floorplan> fp;
  auto pl = placed_design(43, 1000, 0.75, nl, fp);
  mn::DesignView view{*nl};
  mr::RouteOptions opt;
  opt.gcells_x = opt.gcells_y = 32;
  opt.h_capacity = opt.v_capacity = 9.0;
  opt.keep_segments = true;
  opt.keep_state = true;

  mr::GridGraph g0;
  const auto prev = mr::global_route(pl, view, opt, g0);
  ASSERT_TRUE(prev.state.valid);

  // Perturb ~1% of the cells to random spots (routing needs no legality).
  Rng rng{4444};
  const auto& core = fp->core();
  std::vector<mn::InstanceId> moved;
  for (std::size_t i = 0; i < nl->instance_count(); ++i) {
    if (rng.uniform() < 0.01) {
      const auto id = static_cast<mn::InstanceId>(i);
      pl.set_loc(id, {core.lo.x + static_cast<maestro::geom::Dbu>(
                                      rng.below(static_cast<std::uint64_t>(core.width()))),
                      core.lo.y + static_cast<maestro::geom::Dbu>(
                                      rng.below(static_cast<std::uint64_t>(core.height())))});
      moved.push_back(id);
    }
  }
  ASSERT_FALSE(moved.empty());

  const auto reroutes_before = counter_value("route.incr_nets_rerouted");
  mr::GridGraph g_incr;
  const auto incr = mr::global_route_incremental(pl, view, opt, g_incr, prev, {});
  EXPECT_GT(counter_value("route.incr_nets_rerouted"), reroutes_before);

  mr::GridGraph g_full;
  const auto full = mr::global_route(pl, view, opt, g_full);
  expect_results_identical(full, incr);
  expect_grids_identical(g_full, g_incr);
  EXPECT_EQ(full.state.net_pin_begin, incr.state.net_pin_begin);
  EXPECT_EQ(full.state.net_seg_begin, incr.state.net_seg_begin);
  EXPECT_EQ(full.state.initial_paths, incr.state.initial_paths);
  EXPECT_EQ(full.state.grid_revision, incr.state.grid_revision);

  // Narrowed staleness scan: naming the dirty nets gives the same answer.
  std::vector<mn::NetId> dirty;
  const std::set<mn::InstanceId> moved_set(moved.begin(), moved.end());
  for (std::size_t n = 0; n < view.net_count(); ++n) {
    for (const mn::InstanceId id : view.pins_of(static_cast<mn::NetId>(n))) {
      if (moved_set.count(id)) {
        dirty.push_back(static_cast<mn::NetId>(n));
        break;
      }
    }
  }
  mr::GridGraph g_narrow;
  const auto narrow = mr::global_route_incremental(pl, view, opt, g_narrow, prev, dirty);
  expect_results_identical(full, narrow);
  expect_grids_identical(g_full, g_narrow);
}

TEST(GlobalRouter, IncrementalFastPathAndFallback) {
  std::unique_ptr<mn::Netlist> nl;
  std::unique_ptr<mp::Floorplan> fp;
  auto pl = placed_design(47, 500, 0.7, nl, fp);
  mn::DesignView view{*nl};
  mr::RouteOptions opt;
  opt.gcells_x = opt.gcells_y = 24;
  opt.keep_state = true;
  mr::GridGraph g0;
  const auto prev = mr::global_route(pl, view, opt, g0);

  // Nothing moved, same grid: the fast path returns the previous result.
  const auto hits_before = counter_value("route.incr_clean_hits");
  const auto again = mr::global_route_incremental(pl, view, opt, g0, prev, {});
  EXPECT_EQ(counter_value("route.incr_clean_hits"), hits_before + 1);
  EXPECT_EQ(again.wirelength_gcells, prev.wirelength_gcells);
  EXPECT_EQ(again.overflow_per_round, prev.overflow_per_round);

  // Option-key mismatch: falls back to (and equals) a full route.
  mr::RouteOptions opt2 = opt;
  opt2.h_capacity = opt.h_capacity * 0.5;
  const auto fallbacks_before = counter_value("route.incr_fallbacks");
  mr::GridGraph g_fb;
  const auto fb = mr::global_route_incremental(pl, view, opt2, g_fb, prev, {});
  EXPECT_EQ(counter_value("route.incr_fallbacks"), fallbacks_before + 1);
  mr::GridGraph g_fresh;
  const auto fresh = mr::global_route(pl, view, opt2, g_fresh);
  expect_results_identical(fresh, fb);
  expect_grids_identical(g_fresh, g_fb);
}

TEST(FlowRoute, RepeatedRunRouteUsesIncrementalStateAndMatchesFresh) {
  // The flow wiring: a second run_route on a kept DesignState must take the
  // incremental path and still produce exactly what a from-scratch flow
  // produces on the identically perturbed placement.
  auto make_state = [](mf::DesignState& ds, const mf::ToolContext& ctx) {
    ds.lib = &lib();
    mf::DesignSpec spec;
    spec.kind = mf::DesignSpec::Kind::RandomLogic;
    spec.gates_override = 600;
    spec.rtl_seed = 7;
    spec.name = "groute_flow";
    ASSERT_TRUE(mf::run_synthesis(ds, spec, ctx).ok);
    ASSERT_TRUE(mf::run_floorplan(ds, ctx).ok);
    ASSERT_TRUE(mf::run_place(ds, ctx).ok);
  };
  auto perturb = [](mf::DesignState& ds) {
    Rng rng{99};
    const auto& core = ds.fp->core();
    for (std::size_t i = 0; i < ds.nl->instance_count(); ++i) {
      if (rng.uniform() < 0.01) {
        ds.pl->set_loc(static_cast<mn::InstanceId>(i),
                       {core.lo.x + static_cast<maestro::geom::Dbu>(
                                        rng.below(static_cast<std::uint64_t>(core.width()))),
                        core.lo.y + static_cast<maestro::geom::Dbu>(
                                        rng.below(static_cast<std::uint64_t>(core.height())))});
      }
    }
  };
  mf::ToolContext ctx;
  ctx.seed = 5;

  mf::DesignState incr_ds;
  make_state(incr_ds, ctx);
  ASSERT_TRUE(mf::run_route(incr_ds, ctx).ok);
  ASSERT_TRUE(incr_ds.groute.state.valid);  // flow keeps reroute state
  perturb(incr_ds);
  const auto reroutes_before = counter_value("route.incr_reroutes");
  ASSERT_TRUE(mf::run_route(incr_ds, ctx).ok);
  EXPECT_EQ(counter_value("route.incr_reroutes"), reroutes_before + 1);

  mf::DesignState fresh_ds;
  make_state(fresh_ds, ctx);
  perturb(fresh_ds);
  ASSERT_TRUE(mf::run_route(fresh_ds, ctx).ok);

  EXPECT_EQ(incr_ds.groute.wirelength_gcells, fresh_ds.groute.wirelength_gcells);
  EXPECT_EQ(incr_ds.groute.total_overflow, fresh_ds.groute.total_overflow);
  EXPECT_EQ(incr_ds.groute.overflow_per_round, fresh_ds.groute.overflow_per_round);
  ASSERT_EQ(incr_ds.routed.edge_count(), fresh_ds.routed.edge_count());
  for (std::size_t e = 0; e < incr_ds.routed.edge_count(); ++e) {
    ASSERT_EQ(incr_ds.routed.usage(e), fresh_ds.routed.usage(e));
    ASSERT_EQ(incr_ds.routed.history(e), fresh_ds.routed.history(e));
  }
}
