// Cross-module integration tests: end-to-end scenarios combining the flow,
// the orchestration layer, METRICS and the schedulers — the system working
// as a whole, the way the examples drive it.

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>

#include "core/doomed_guard.hpp"
#include "core/metrics_loop.hpp"
#include "core/robot_engineer.hpp"
#include "core/scheduler.hpp"
#include "core/sizer.hpp"
#include "metrics/miner.hpp"

namespace mc = maestro::core;
namespace mf = maestro::flow;
namespace mm = maestro::metrics;
namespace mn = maestro::netlist;
namespace mr = maestro::route;
using maestro::util::Rng;

namespace {
const mn::CellLibrary& lib() {
  static const mn::CellLibrary l = mn::make_default_library();
  return l;
}
}  // namespace

TEST(Integration, MinedKnobsFeedRobotEngineer) {
  // Collect a small corpus, mine best knobs for WNS, hand the mined
  // trajectory to a robot — the full METRICS -> decision -> execution loop.
  mf::FlowManager fm{lib()};
  mm::Server server;
  mm::Transmitter tx{server};
  Rng rng{1};
  const auto spaces = mf::default_knob_spaces();

  mf::DesignSpec design;
  design.kind = mf::DesignSpec::Kind::RandomLogic;
  design.scale = 1;
  design.name = "loop_dut";
  for (int i = 0; i < 10; ++i) {
    mf::FlowRecipe recipe;
    recipe.design = design;
    recipe.target_ghz = 1.1;
    recipe.knobs = mf::random_trajectory(spaces, rng);
    recipe.seed = rng.next();
    tx.transmit_flow(recipe, fm.run(recipe));
  }
  const auto mined = mm::best_knob_settings(server, mm::names::kWnsPs, false);
  ASSERT_FALSE(mined.empty());

  // Build a trajectory from the mined settings (legal values only).
  mf::FlowTrajectory knobs = mf::default_trajectory(spaces);
  for (const auto& space : spaces) {
    const std::string prefix = std::string(mf::to_string(space.step)) + ".";
    for (const auto& spec : space.knobs) {
      const auto it = mined.find(prefix + spec.name);
      if (it != mined.end() &&
          std::find(spec.values.begin(), spec.values.end(), it->second) != spec.values.end()) {
        knobs.set(space.step, spec.name, it->second);
      }
    }
  }
  mc::RobotEngineer robot{fm};
  mf::FlowRecipe recipe;
  recipe.design = design;
  recipe.target_ghz = 1.0;
  recipe.knobs = knobs;
  recipe.seed = 99;
  const auto out = robot.execute(recipe, mf::FlowConstraints{}, rng);
  EXPECT_TRUE(out.succeeded);
}

TEST(Integration, GuardSavingsImproveProjectSchedule) {
  // Measure the guard's iteration savings on a corpus, then verify the
  // project scheduler turns the same cut fractions into shorter makespan.
  mr::DrvSimOptions dso;
  dso.seed = 5;
  Rng rng{5};
  const auto train = mr::make_drv_corpus(mr::CorpusKind::ArtificialLayouts, 400, dso, rng);
  mc::DoomedRunGuard guard;
  guard.train(train);
  const auto test = mr::make_drv_corpus(mr::CorpusKind::CpuFloorplans, 300, dso, rng);
  const auto err = guard.evaluate(test, 2);
  ASSERT_GT(err.iterations_saved, 0u);

  // Project where each doomed run would be cut at the guard's measured
  // average fraction.
  std::size_t doomed = 0;
  for (const auto& r : test) doomed += r.succeeded ? 0 : 1;
  const double avg_cut = 1.0 - static_cast<double>(err.iterations_saved) /
                                   (static_cast<double>(doomed) * 19.0);
  Rng prng{7};
  auto tasks = mc::make_project(60, 0.3, prng);
  for (auto& t : tasks) t.guard_cut_fraction = std::clamp(avg_cut, 0.05, 0.9);
  mc::ScheduleOptions sopt;
  sopt.licenses = 4;
  sopt.doomed_guard = false;
  const auto before = mc::simulate_schedule(tasks, sopt);
  sopt.doomed_guard = true;
  const auto after = mc::simulate_schedule(tasks, sopt);
  EXPECT_LT(after.makespan_min, before.makespan_min);
}

TEST(Integration, EyechartSurvivesFullFlow) {
  // An eyechart netlist is a legal design: it must place, route and sign off
  // through the standard flow machinery.
  auto ec = mn::make_eyechart(lib(), 12, 60.0);
  // Size it first (the flow's synthesis step is bypassed — we operate on the
  // already-built netlist directly through the placement/timing substrate).
  mc::SizerOptions sopt;
  mc::size_greedy(ec.netlist, sopt);

  const auto fp = maestro::place::Floorplan::for_netlist(ec.netlist, 0.6);
  Rng rng{11};
  auto pl = maestro::place::random_placement(ec.netlist, fp, rng);
  maestro::place::legalize(pl);
  EXPECT_TRUE(maestro::place::check_overlaps(pl).legal());

  const auto clock = maestro::timing::build_clock_tree(pl, maestro::timing::ClockTreeOptions{}, rng);
  maestro::timing::StaOptions so;
  so.clock_period_ps = 5000.0;
  const auto rep = maestro::timing::run_sta(pl, clock, so);
  ASSERT_FALSE(rep.endpoints.empty());
  EXPECT_GT(rep.wns_ps, 0.0);  // relaxed clock: must meet timing
}

TEST(Integration, MetricsRoundTripPreservesMining) {
  // Mining results must be identical after a save/load cycle.
  mf::FlowManager fm{lib()};
  mm::Server server;
  mm::Transmitter tx{server};
  Rng rng{13};
  mf::DesignSpec design;
  design.kind = mf::DesignSpec::Kind::RandomLogic;
  design.scale = 1;
  design.name = "rt_dut";
  const auto spaces = mf::default_knob_spaces();
  for (int i = 0; i < 6; ++i) {
    mf::FlowRecipe recipe;
    recipe.design = design;
    recipe.target_ghz = 1.0;
    recipe.knobs = mf::random_trajectory(spaces, rng);
    recipe.seed = rng.next();
    tx.transmit_flow(recipe, fm.run(recipe));
  }
  const std::string path = "/tmp/maestro_it_roundtrip.jsonl";
  ASSERT_TRUE(server.save(path));
  mm::Server loaded;
  ASSERT_EQ(loaded.load(path), server.size());
  const auto a = mm::best_knob_settings(server, mm::names::kAreaUm2, true);
  const auto b = mm::best_knob_settings(loaded, mm::names::kAreaUm2, true);
  EXPECT_EQ(a, b);
  const auto fa = mm::knob_sensitivity(server, mm::names::kTatMin);
  const auto fb = mm::knob_sensitivity(loaded, mm::names::kTatMin);
  ASSERT_EQ(fa.size(), fb.size());
  for (std::size_t i = 0; i < fa.size(); ++i) {
    EXPECT_EQ(fa[i].knob, fb[i].knob);
    EXPECT_NEAR(fa[i].mean_metric, fb[i].mean_metric, 1e-9);
  }
  std::filesystem::remove(path);
}

TEST(Integration, WholePipelineDeterministic) {
  // Flow + guard training + evaluation must be bit-identical across
  // executions with the same seeds (the reproducibility contract).
  auto run_once = [&] {
    mf::FlowManager fm{lib()};
    mf::FlowRecipe recipe;
    recipe.design.kind = mf::DesignSpec::Kind::CpuLike;
    recipe.design.scale = 1;
    recipe.design.name = "det";
    recipe.target_ghz = 0.7;
    recipe.seed = 21;
    const auto res = fm.run(recipe);

    mr::DrvSimOptions dso;
    dso.seed = 23;
    Rng rng{23};
    const auto corpus = mr::make_drv_corpus(mr::CorpusKind::ArtificialLayouts, 150, dso, rng);
    mc::DoomedRunGuard guard;
    guard.train(corpus);
    return std::tuple{res.area_um2, res.wns_ps, res.final_drvs, guard.card().stop_fraction()};
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Integration, FlowStateConsistentAcrossModules) {
  // The kept DesignState must be internally consistent: STA endpoints match
  // the netlist, power reflects the placement, the clock tree covers the
  // flops, and the routed grid covers the core.
  mf::FlowManager fm{lib()};
  mf::FlowRecipe recipe;
  recipe.design.kind = mf::DesignSpec::Kind::RandomLogic;
  recipe.design.scale = 1;
  recipe.design.name = "consist";
  recipe.target_ghz = 1.0;
  recipe.seed = 31;
  mf::DesignState state;
  const auto res = fm.run_keep_state(recipe, mf::FlowConstraints{}, state);
  ASSERT_TRUE(res.completed);

  const auto flops = state.nl->flops();
  EXPECT_EQ(state.signoff.endpoints.size(), flops.size() + state.nl->primary_outputs().size());
  for (const auto ff : flops) EXPECT_GT(state.clock.insertion_of(ff), 0.0);
  EXPECT_GT(state.routed.node_count(), 0u);
  EXPECT_EQ(state.routed.indexer().region(), state.fp->core());
  const auto pwr = maestro::power::estimate_power(*state.pl, recipe.target_ghz,
                                                  maestro::power::PowerOptions{});
  EXPECT_NEAR(pwr.total_mw(), res.power_mw, 1e-9);
}
