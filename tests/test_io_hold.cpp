// Tests for netlist/placement interchange I/O and hold-time analysis.

#include <gtest/gtest.h>

#include <memory>

#include "netlist/generators.hpp"
#include "netlist/io.hpp"
#include "place/io.hpp"
#include "place/placer.hpp"
#include "timing/sta.hpp"

namespace mn = maestro::netlist;
namespace mp = maestro::place;
namespace mt = maestro::timing;
using maestro::util::Rng;

namespace {
const mn::CellLibrary& lib() {
  static const mn::CellLibrary l = mn::make_default_library();
  return l;
}
}  // namespace

// ------------------------------------------------------------- netlist I/O

TEST(NetlistIo, RoundTripPreservesStructure) {
  mn::RandomLogicSpec spec;
  spec.gates = 300;
  spec.seed = 7;
  const auto nl = mn::make_random_logic(lib(), spec);
  const std::string text = mn::write_netlist(nl);
  mn::ParseError err;
  const auto back = mn::read_netlist(lib(), text, &err);
  ASSERT_TRUE(back.has_value()) << "line " << err.line << ": " << err.message;
  EXPECT_EQ(back->name(), nl.name());
  EXPECT_EQ(back->instance_count(), nl.instance_count());
  EXPECT_EQ(back->net_count(), nl.net_count());
  EXPECT_TRUE(back->validate());
  // Per-instance masters and connectivity identical.
  for (std::size_t i = 0; i < nl.instance_count(); ++i) {
    const auto id = static_cast<mn::InstanceId>(i);
    EXPECT_EQ(back->instance(id).master, nl.instance(id).master);
    EXPECT_EQ(back->instance(id).input_nets, nl.instance(id).input_nets);
  }
  const auto s1 = mn::compute_stats(nl);
  const auto s2 = mn::compute_stats(*back);
  EXPECT_EQ(s1.max_logic_depth, s2.max_logic_depth);
  EXPECT_EQ(s1.max_fanout, s2.max_fanout);
  // Round-trip is a fixed point.
  EXPECT_EQ(mn::write_netlist(*back), text);
}

TEST(NetlistIo, RejectsMalformedInput) {
  mn::ParseError err;
  EXPECT_FALSE(mn::read_netlist(lib(), "", &err).has_value());
  EXPECT_FALSE(mn::read_netlist(lib(), "wrong header\n", &err).has_value());
  const std::string bad_master =
      "maestro_netlist 1\ndesign d\ninstance u0 NOT_A_CELL\n";
  EXPECT_FALSE(mn::read_netlist(lib(), bad_master, &err).has_value());
  EXPECT_EQ(err.line, 3u);
  EXPECT_NE(err.message.find("unknown master"), std::string::npos);
  const std::string bad_driver = "maestro_netlist 1\ndesign d\nnet n0 ghost\n";
  EXPECT_FALSE(mn::read_netlist(lib(), bad_driver, &err).has_value());
  const std::string dup =
      "maestro_netlist 1\ndesign d\ninstance u0 INV_X1\ninstance u0 INV_X1\n";
  EXPECT_FALSE(mn::read_netlist(lib(), dup, &err).has_value());
  EXPECT_NE(err.message.find("duplicate"), std::string::npos);
  const std::string bad_pin =
      "maestro_netlist 1\ndesign d\ninstance a INPUT\ninstance b INV_X1\nnet n a b:7\n";
  EXPECT_FALSE(mn::read_netlist(lib(), bad_pin, &err).has_value());
  EXPECT_NE(err.message.find("pin out of range"), std::string::npos);
}

TEST(NetlistIo, HandlesCommentsAndBlankLines) {
  const std::string text =
      "maestro_netlist 1\n"
      "design tiny\n"
      "# a comment\n"
      "\n"
      "instance pi0 INPUT\n"
      "instance g0 INV_X2\n"
      "instance po0 OUTPUT\n"
      "net a pi0 g0:0\n"
      "net b g0 po0:0\n";
  const auto nl = mn::read_netlist(lib(), text);
  ASSERT_TRUE(nl.has_value());
  EXPECT_TRUE(nl->validate());
  EXPECT_EQ(nl->instance_count(), 3u);
  EXPECT_EQ(nl->master_of(1).drive, 2);
}

// ----------------------------------------------------------- placement I/O

TEST(PlacementIo, RoundTripPreservesLocations) {
  mn::RandomLogicSpec spec;
  spec.gates = 200;
  spec.seed = 9;
  const auto nl = mn::make_random_logic(lib(), spec);
  const auto fp = mp::Floorplan::for_netlist(nl, 0.7);
  Rng rng{9};
  auto pl = mp::random_placement(nl, fp, rng);
  mp::legalize(pl);

  const std::string text = mp::write_placement(pl);
  mn::ParseError err;
  const auto back = mp::read_placement(nl, fp, text, &err);
  ASSERT_TRUE(back.has_value()) << "line " << err.line << ": " << err.message;
  for (std::size_t i = 0; i < nl.instance_count(); ++i) {
    const auto id = static_cast<mn::InstanceId>(i);
    EXPECT_EQ(back->loc(id), pl.loc(id));
  }
  // Identical locations -> identical HPWL.
  EXPECT_EQ(back->total_hpwl(), pl.total_hpwl());
}

TEST(PlacementIo, RejectsUnknownInstance) {
  const auto nl = mn::make_chain(lib(), 2);
  const auto fp = mp::Floorplan::for_netlist(nl, 0.7);
  const std::string text = "maestro_placement 1\nplace ghost 0 0\n";
  mn::ParseError err;
  EXPECT_FALSE(mp::read_placement(nl, fp, text, &err).has_value());
  EXPECT_NE(err.message.find("unknown instance"), std::string::npos);
}

TEST(PlacementIo, RejectsDesignMismatch) {
  const auto nl = mn::make_chain(lib(), 2);
  const auto fp = mp::Floorplan::for_netlist(nl, 0.7);
  const std::string text = "maestro_placement 1\ndesign other\n";
  EXPECT_FALSE(mp::read_placement(nl, fp, text).has_value());
}

// ---------------------------------------------------------- hold analysis

namespace {
struct HoldFixture {
  std::unique_ptr<mn::Netlist> nl;
  std::unique_ptr<mp::Floorplan> fp;
  std::unique_ptr<mp::Placement> pl;
};

HoldFixture hold_fixture(std::uint64_t seed, double flop_ratio = 0.25) {
  HoldFixture f;
  mn::RandomLogicSpec spec;
  spec.gates = 400;
  spec.flop_ratio = flop_ratio;
  spec.seed = seed;
  f.nl = std::make_unique<mn::Netlist>(mn::make_random_logic(lib(), spec));
  f.fp = std::make_unique<mp::Floorplan>(mp::Floorplan::for_netlist(*f.nl, 0.7));
  Rng rng{seed};
  f.pl = std::make_unique<mp::Placement>(mp::random_placement(*f.nl, *f.fp, rng));
  mp::legalize(*f.pl);
  return f;
}
}  // namespace

TEST(Hold, IdealClockGivesPositiveHoldSlack) {
  // With zero skew, every data path (>= one gate) comfortably beats the
  // 6 ps hold requirement.
  const auto f = hold_fixture(1);
  mt::StaOptions opt;
  opt.with_hold = true;
  const auto rep = mt::run_sta(*f.pl, mt::ClockTree{}, opt);
  EXPECT_GT(rep.whs_ps, 0.0);
  EXPECT_EQ(rep.hold_violations, 0u);
}

TEST(Hold, SkewedClockDegradesHoldSlack) {
  const auto f = hold_fixture(2);
  Rng rng{2};
  mt::ClockTreeOptions co;
  const auto clock = mt::build_clock_tree(*f.pl, co, rng);
  mt::StaOptions opt;
  opt.with_hold = true;
  const auto ideal = mt::run_sta(*f.pl, mt::ClockTree{}, opt);
  const auto skewed = mt::run_sta(*f.pl, clock, opt);
  // Hold is a race against the capture clock edge: insertion-delay spread
  // must not IMPROVE the worst hold slack.
  EXPECT_LE(skewed.whs_ps, ideal.whs_ps + 1e-9);
}

TEST(Hold, OnlyFlopEndpointsCarryHoldSlack) {
  const auto f = hold_fixture(3);
  mt::StaOptions opt;
  opt.with_hold = true;
  const auto rep = mt::run_sta(*f.pl, mt::ClockTree{}, opt);
  for (const auto& ep : rep.endpoints) {
    if (!ep.is_flop) EXPECT_DOUBLE_EQ(ep.hold_slack_ps, 0.0);
  }
}

TEST(Hold, DisabledByDefault) {
  const auto f = hold_fixture(4);
  mt::StaOptions opt;
  const auto rep = mt::run_sta(*f.pl, mt::ClockTree{}, opt);
  EXPECT_DOUBLE_EQ(rep.whs_ps, 0.0);
  EXPECT_EQ(rep.hold_violations, 0u);
}

TEST(Hold, GbaEarlyDerateIsPessimistic) {
  // GBA's early derate (<1) shrinks early arrivals, so GBA hold slack must
  // be <= PBA hold slack at every endpoint.
  const auto f = hold_fixture(5);
  Rng rng{5};
  const auto clock = mt::build_clock_tree(*f.pl, mt::ClockTreeOptions{}, rng);
  mt::StaOptions gba;
  gba.mode = mt::AnalysisMode::GraphBased;
  gba.with_hold = true;
  mt::StaOptions pba;
  pba.mode = mt::AnalysisMode::PathBased;
  pba.with_hold = true;
  const auto rep_gba = mt::run_sta(*f.pl, clock, gba);
  const auto rep_pba = mt::run_sta(*f.pl, clock, pba);
  EXPECT_LE(rep_gba.whs_ps, rep_pba.whs_ps + 1e-9);
  for (const auto& ep : rep_gba.endpoints) {
    if (!ep.is_flop) continue;
    const auto* p = rep_pba.endpoint_of(ep.endpoint);
    ASSERT_NE(p, nullptr);
    EXPECT_LE(ep.hold_slack_ps, p->hold_slack_ps + 1e-9);
  }
}
