// Unit tests for maestro::metrics — records, the server/transmitter, and
// the data miner's knob-sensitivity / prescription / outcome-model features.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <limits>

#include "flow/flow.hpp"
#include "metrics/miner.hpp"
#include "metrics/server.hpp"

namespace mm = maestro::metrics;
namespace mf = maestro::flow;
using maestro::util::Rng;

namespace {
mm::Record make_record(const std::string& design, double area, const std::string& util) {
  mm::Record r;
  r.design = design;
  r.step = "flow";
  r.knobs["floorplan.utilization"] = util;
  r.values[mm::names::kAreaUm2] = area;
  return r;
}
}  // namespace

TEST(Record, JsonRoundTrip) {
  mm::Record r;
  r.run_id = 42;
  r.design = "cpu";
  r.step = "route";
  r.seed = 7;
  r.knobs["k"] = "v";
  r.values["m"] = 1.25;
  const auto back = mm::Record::from_json(r.to_json());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->run_id, 42u);
  EXPECT_EQ(back->design, "cpu");
  EXPECT_EQ(back->step, "route");
  EXPECT_EQ(back->seed, 7u);
  EXPECT_EQ(*back->knob("k"), "v");
  EXPECT_DOUBLE_EQ(*back->value("m"), 1.25);
  EXPECT_FALSE(back->value("absent").has_value());
  EXPECT_FALSE(back->knob("absent").has_value());
}

TEST(Record, JsonRoundTripEmbeddedQuotesAndNewlines) {
  mm::Record r;
  r.design = "dut \"quoted\"\nline2\ttabbed";
  r.step = "synth\\elaborate";
  r.knobs["note"] = "value with \"quotes\" and\nnewlines";
  r.values["m"] = -0.0625;
  // Must survive one serialized line: embedded newlines have to be escaped
  // or the JSONL save/load and wire framing would split the record.
  const std::string line = r.to_json().dump();
  EXPECT_EQ(line.find('\n'), std::string::npos);
  const auto parsed = maestro::util::Json::parse(line);
  ASSERT_TRUE(parsed.has_value());
  const auto back = mm::Record::from_json(*parsed);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->design, r.design);
  EXPECT_EQ(back->step, r.step);
  EXPECT_EQ(*back->knob("note"), r.knobs["note"]);
  EXPECT_DOUBLE_EQ(*back->value("m"), -0.0625);
}

TEST(Record, JsonRoundTripNonFiniteValues) {
  mm::Record r;
  r.design = "dut";
  r.step = "sta";
  r.values["wns_ps"] = std::numeric_limits<double>::quiet_NaN();
  r.values["tns_ps"] = std::numeric_limits<double>::infinity();
  r.values["slack_ps"] = -std::numeric_limits<double>::infinity();
  r.values["ok"] = 1.5;
  const auto back = mm::Record::from_json(r.to_json());
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(std::isnan(*back->value("wns_ps")));
  EXPECT_EQ(*back->value("tns_ps"), std::numeric_limits<double>::infinity());
  EXPECT_EQ(*back->value("slack_ps"), -std::numeric_limits<double>::infinity());
  EXPECT_DOUBLE_EQ(*back->value("ok"), 1.5);
  // The non-finite encoding is stable across a second round trip.
  EXPECT_EQ(back->to_json().dump(), r.to_json().dump());
}

TEST(Record, JsonRoundTripLargeSeed) {
  mm::Record r;
  r.design = "dut";
  r.step = "flow";
  r.seed = 0xffffffffffffffffULL;  // does not fit in a JSON double
  const auto back = mm::Record::from_json(r.to_json());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->seed, 0xffffffffffffffffULL);
}

TEST(Record, FromJsonToleratesMissingOptionalFields) {
  const auto minimal = maestro::util::Json::parse(R"({"design":"dut","step":"flow"})");
  ASSERT_TRUE(minimal.has_value());
  const auto back = mm::Record::from_json(*minimal);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->design, "dut");
  EXPECT_EQ(back->step, "flow");
  EXPECT_EQ(back->run_id, 0u);
  EXPECT_EQ(back->seed, 0u);
  EXPECT_TRUE(back->knobs.empty());
  EXPECT_TRUE(back->values.empty());
  // Non-objects are rejected rather than read as empty records.
  EXPECT_FALSE(mm::Record::from_json(maestro::util::Json{3.0}).has_value());
}

TEST(Server, SubmitAssignsIds) {
  mm::Server server;
  const auto id1 = server.submit(make_record("a", 1.0, "0.7"));
  const auto id2 = server.submit(make_record("b", 2.0, "0.7"));
  EXPECT_NE(id1, 0u);
  EXPECT_NE(id2, id1);
  EXPECT_EQ(server.size(), 2u);
}

TEST(Server, QueriesFilter) {
  mm::Server server;
  server.submit(make_record("a", 1.0, "0.7"));
  server.submit(make_record("a", 2.0, "0.8"));
  server.submit(make_record("b", 3.0, "0.7"));
  EXPECT_EQ(server.for_design("a").size(), 2u);
  EXPECT_EQ(server.for_design("b").size(), 1u);
  EXPECT_EQ(server.for_step("flow").size(), 3u);
  EXPECT_EQ(server.for_step("route").size(), 0u);
  const auto big = server.query(
      [](const mm::Record& r) { return r.value(mm::names::kAreaUm2).value_or(0) > 1.5; });
  EXPECT_EQ(big.size(), 2u);
}

TEST(Server, SaveLoadRoundTrip) {
  const std::string path = "/tmp/maestro_metrics_test.jsonl";
  {
    mm::Server server;
    server.submit(make_record("a", 1.0, "0.7"));
    server.submit(make_record("b", 2.0, "0.8"));
    ASSERT_TRUE(server.save(path));
  }
  mm::Server loaded;
  EXPECT_EQ(loaded.load(path), 2u);
  EXPECT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded.for_design("a").size(), 1u);
  std::filesystem::remove(path);
}

TEST(Server, LoadMissingFileReturnsZero) {
  mm::Server server;
  EXPECT_EQ(server.load("/tmp/definitely_not_here.jsonl"), 0u);
}

TEST(Transmitter, FlattensFlowRun) {
  const auto lib = maestro::netlist::make_default_library();
  mf::FlowManager fm{lib};
  mf::FlowRecipe recipe;
  recipe.design.kind = mf::DesignSpec::Kind::RandomLogic;
  recipe.design.scale = 1;
  recipe.design.name = "tx_test";
  recipe.target_ghz = 0.8;
  recipe.seed = 3;
  recipe.knobs = mf::default_trajectory(mf::default_knob_spaces());
  const auto result = fm.run(recipe);

  mm::Server server;
  mm::Transmitter tx{server};
  const auto id = tx.transmit_flow(recipe, result);
  EXPECT_NE(id, 0u);
  // One flow record + one per step log.
  EXPECT_EQ(server.size(), 1u + result.logs.size());
  const auto flows = server.for_step("flow");
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_EQ(flows[0]->design, "tx_test");
  EXPECT_TRUE(flows[0]->value(mm::names::kAreaUm2).has_value());
  EXPECT_TRUE(flows[0]->knob("floorplan.utilization").has_value());
  // Step records present with parsed numeric metadata.
  EXPECT_EQ(server.for_step("synthesis").size(), 1u);
  EXPECT_EQ(server.for_step("route").size(), 1u);
}

TEST(Miner, KnobSensitivityGroupsByValue) {
  mm::Server server;
  // utilization 0.7 -> small area, 0.9 -> big area, clean separation.
  for (int i = 0; i < 10; ++i) {
    server.submit(make_record("d", 100.0 + i, "0.7"));
    server.submit(make_record("d", 200.0 + i, "0.9"));
  }
  const auto effects = mm::knob_sensitivity(server, mm::names::kAreaUm2);
  ASSERT_EQ(effects.size(), 2u);
  double mean07 = 0.0;
  double mean09 = 0.0;
  for (const auto& e : effects) {
    EXPECT_EQ(e.knob, "floorplan.utilization");
    EXPECT_EQ(e.runs, 10u);
    if (e.value == "0.7") mean07 = e.mean_metric;
    if (e.value == "0.9") mean09 = e.mean_metric;
  }
  EXPECT_NEAR(mean07, 104.5, 1e-9);
  EXPECT_NEAR(mean09, 204.5, 1e-9);
}

TEST(Miner, BestKnobSettingsMinimize) {
  mm::Server server;
  for (int i = 0; i < 5; ++i) {
    server.submit(make_record("d", 100.0, "0.7"));
    server.submit(make_record("d", 200.0, "0.9"));
  }
  const auto best_min = mm::best_knob_settings(server, mm::names::kAreaUm2, true);
  EXPECT_EQ(best_min.at("floorplan.utilization"), "0.7");
  const auto best_max = mm::best_knob_settings(server, mm::names::kAreaUm2, false);
  EXPECT_EQ(best_max.at("floorplan.utilization"), "0.9");
}

TEST(Miner, PrescribeFrequencyFindsHighestReliable) {
  mm::Server server;
  auto add_runs = [&](double ghz, int succ, int fail) {
    for (int i = 0; i < succ + fail; ++i) {
      mm::Record r;
      r.design = "cpu";
      r.step = "flow";
      r.values[mm::names::kTargetGhz] = ghz;
      r.values[mm::names::kSuccess] = i < succ ? 1.0 : 0.0;
      server.submit(std::move(r));
    }
  };
  add_runs(0.8, 10, 0);   // 100%
  add_runs(1.0, 9, 1);    // 90%
  add_runs(1.2, 5, 5);    // 50%
  add_runs(1.4, 0, 10);   // 0%
  const auto p = mm::prescribe_frequency(server, "cpu", 0.8);
  EXPECT_DOUBLE_EQ(p.recommended_ghz, 1.0);
  EXPECT_NEAR(p.predicted_success_rate, 0.9, 1e-12);
  EXPECT_EQ(p.supporting_runs, 40u);
  // Different design: no data.
  const auto none = mm::prescribe_frequency(server, "other", 0.8);
  EXPECT_DOUBLE_EQ(none.recommended_ghz, 0.0);
}

TEST(Miner, OutcomeModelLearnsLinearRelation) {
  mm::Server server;
  Rng rng{5};
  for (int i = 0; i < 200; ++i) {
    mm::Record r;
    r.design = "d";
    r.step = "flow";
    const double f = rng.uniform(0.5, 2.0);
    r.values[mm::names::kTargetGhz] = f;
    r.values[mm::names::kPowerMw] = 3.0 * f + rng.gauss(0, 0.01);
    server.submit(std::move(r));
  }
  Rng rng2{7};
  const auto model = mm::fit_outcome_model(server, {mm::names::kTargetGhz},
                                           mm::names::kPowerMw, rng2);
  EXPECT_EQ(model.rows, 200u);
  EXPECT_GT(model.test_r2, 0.99);
  const double pred = model.predict({{mm::names::kTargetGhz, 1.0}});
  EXPECT_NEAR(pred, 3.0, 0.1);
}

TEST(Miner, OutcomeModelNeedsData) {
  mm::Server server;
  Rng rng{9};
  const auto model =
      mm::fit_outcome_model(server, {mm::names::kTargetGhz}, mm::names::kPowerMw, rng);
  EXPECT_EQ(model.rows, 0u);
  EXPECT_DOUBLE_EQ(model.test_r2, 0.0);
}

// --- Degenerate inputs the flow tuner generates -----------------------------
// A tuning campaign mines its own history as it goes, so the miner sees
// buckets with one run, metrics that came back NaN from a diverged signoff,
// and polls against an empty server. None of these may poison the stats.

TEST(Miner, KnobSensitivitySkipsNonFiniteMetrics) {
  mm::Server server;
  server.submit(make_record("d", 100.0, "0.7"));
  server.submit(make_record("d", 102.0, "0.7"));
  server.submit(make_record("d", std::numeric_limits<double>::quiet_NaN(), "0.7"));
  server.submit(make_record("d", std::numeric_limits<double>::infinity(), "0.7"));
  const auto effects = mm::knob_sensitivity(server, mm::names::kAreaUm2);
  ASSERT_EQ(effects.size(), 1u);
  // The NaN/inf records are dropped, not folded: mean stays finite and only
  // the two clean runs count.
  EXPECT_EQ(effects[0].runs, 2u);
  EXPECT_NEAR(effects[0].mean_metric, 101.0, 1e-12);
  EXPECT_TRUE(std::isfinite(effects[0].stddev_metric));
}

TEST(Miner, StreamingFoldMatchesBatchWithNonFiniteMetrics) {
  mm::Server server;
  mm::StreamingKnobStats stream{server, mm::names::kAreaUm2, "flow"};
  server.submit(make_record("d", 10.0, "0.7"));
  server.submit(make_record("d", std::numeric_limits<double>::quiet_NaN(), "0.7"));
  server.submit(make_record("d", 30.0, "0.9"));
  server.submit(make_record("d", -std::numeric_limits<double>::infinity(), "0.9"));
  stream.poll();
  const auto streamed = stream.effects();
  const auto batch = mm::knob_sensitivity(server, mm::names::kAreaUm2);
  ASSERT_EQ(streamed.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(streamed[i].knob, batch[i].knob);
    EXPECT_EQ(streamed[i].value, batch[i].value);
    EXPECT_EQ(streamed[i].runs, batch[i].runs);
    EXPECT_DOUBLE_EQ(streamed[i].mean_metric, batch[i].mean_metric);
    EXPECT_DOUBLE_EQ(streamed[i].stddev_metric, batch[i].stddev_metric);
  }
}

TEST(Miner, KnobSensitivitySingleRunBucket) {
  mm::Server server;
  server.submit(make_record("d", 42.0, "0.7"));
  const auto effects = mm::knob_sensitivity(server, mm::names::kAreaUm2);
  ASSERT_EQ(effects.size(), 1u);
  EXPECT_EQ(effects[0].runs, 1u);
  EXPECT_DOUBLE_EQ(effects[0].mean_metric, 42.0);
  EXPECT_DOUBLE_EQ(effects[0].stddev_metric, 0.0);
}

TEST(Miner, KnobSensitivityEmptyServer) {
  mm::Server server;
  EXPECT_TRUE(mm::knob_sensitivity(server, mm::names::kAreaUm2).empty());
  mm::StreamingKnobStats stream{server, mm::names::kAreaUm2, "flow"};
  EXPECT_EQ(stream.poll(), 0u);
  EXPECT_TRUE(stream.effects().empty());
}

TEST(Miner, OutcomeModelSkipsNonFiniteRows) {
  mm::Server server;
  Rng rng{5};
  for (int i = 0; i < 100; ++i) {
    mm::Record r;
    r.design = "d";
    r.step = "flow";
    const double f = rng.uniform(0.5, 2.0);
    r.values[mm::names::kTargetGhz] = f;
    r.values[mm::names::kPowerMw] = 3.0 * f + rng.gauss(0, 0.01);
    server.submit(std::move(r));
  }
  // NaN target and NaN feature rows are both dropped from the training set.
  mm::Record bad_target;
  bad_target.design = "d";
  bad_target.step = "flow";
  bad_target.values[mm::names::kTargetGhz] = 1.0;
  bad_target.values[mm::names::kPowerMw] = std::numeric_limits<double>::quiet_NaN();
  server.submit(std::move(bad_target));
  mm::Record bad_feature;
  bad_feature.design = "d";
  bad_feature.step = "flow";
  bad_feature.values[mm::names::kTargetGhz] = std::numeric_limits<double>::infinity();
  bad_feature.values[mm::names::kPowerMw] = 3.0;
  server.submit(std::move(bad_feature));

  Rng rng2{7};
  const auto model =
      mm::fit_outcome_model(server, {mm::names::kTargetGhz}, mm::names::kPowerMw, rng2);
  EXPECT_EQ(model.rows, 100u);
  EXPECT_GT(model.test_r2, 0.99);
}
