// METRICS 2.0 service tests: sharded ingest, secondary indexes, streaming
// subscribers, backpressure policies, load semantics, the miner's streaming
// cursor, and the collector wire protocol (in-process and cross-process).
//
// This binary has its own main(): when launched as
//   maestro_metrics_service_tests --metrics-child <socket> <count> <base_id>
// it acts as a remote tool process, streams <count> records with preset run
// ids through a RemoteTransmitter, and exits — the cross-process collector
// test posix_spawns /proc/self/exe in that mode.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <spawn.h>
#include <sys/wait.h>
#include <unistd.h>

#include "metrics/collector.hpp"
#include "metrics/miner.hpp"
#include "metrics/server.hpp"
#include "obs/registry.hpp"

extern char** environ;

namespace mm = maestro::metrics;
namespace obs = maestro::obs;

namespace {

mm::Record make_record(const std::string& design, const std::string& step, std::uint64_t seed,
                       double metric = 0.0) {
  mm::Record r;
  r.design = design;
  r.step = step;
  r.seed = seed;
  r.values["wns_ps"] = metric;
  return r;
}

/// The record stream a `--metrics-child` process transmits: preset nonzero
/// run ids plus awkward payloads, so the parent can check bit-identical
/// arrival. Must stay in sync between parent expectation and child.
mm::Record child_record(std::uint64_t base_id, std::uint64_t i) {
  mm::Record r;
  r.run_id = base_id + i;
  r.design = "remote_dut_" + std::to_string(base_id);
  r.step = i % 2 == 0 ? "route" : "place";
  r.seed = 0x9e3779b97f4a7c15ULL + i;  // exercises the 64-bit seed path
  r.knobs["engine"] = "v" + std::to_string(i % 7);
  r.values["wns_ps"] = static_cast<double>(i) * 0.25 - 100.0;
  r.values["drvs"] = static_cast<double>(i % 13);
  return r;
}

std::vector<std::string> sorted_dumps(const std::vector<mm::Record>& records) {
  std::vector<std::string> out;
  out.reserve(records.size());
  for (const auto& r : records) out.push_back(r.to_json().dump());
  std::sort(out.begin(), out.end());
  return out;
}

std::string temp_socket_path(const char* tag) {
  return "/tmp/maestro_test_" + std::string(tag) + "_" + std::to_string(::getpid()) + ".sock";
}

// ------------------------------------------------------------------ sharding

TEST(MetricsService, ShardCountRoundsUpToPowerOfTwo) {
  mm::Server server{{.shards = 5}};
  EXPECT_EQ(server.options().shards, 8u);
  server.submit(make_record("d", "s", 1));
  EXPECT_EQ(server.size(), 1u);
}

TEST(MetricsService, IndexedLookupsMatchPredicateScan) {
  mm::Server server{{.shards = 4}};
  for (std::uint64_t i = 0; i < 200; ++i) {
    server.submit(make_record("design_" + std::to_string(i % 7),
                              "step_" + std::to_string(i % 5), i, static_cast<double>(i)));
  }
  for (int d = 0; d < 7; ++d) {
    const std::string design = "design_" + std::to_string(d);
    auto indexed = server.for_design(design);
    auto scanned = server.query([&](const mm::Record& r) { return r.design == design; });
    const auto ids = [](std::vector<const mm::Record*> v) {
      std::vector<std::uint64_t> out;
      for (const auto* r : v) out.push_back(r->run_id);
      std::sort(out.begin(), out.end());
      return out;
    };
    EXPECT_EQ(ids(indexed), ids(scanned)) << design;
    EXPECT_FALSE(indexed.empty());
  }
  for (int s = 0; s < 5; ++s) {
    const std::string step = "step_" + std::to_string(s);
    auto indexed = server.for_step(step);
    auto scanned = server.query([&](const mm::Record& r) { return r.step == step; });
    EXPECT_EQ(indexed.size(), scanned.size()) << step;
  }
}

TEST(MetricsService, IndexesSurviveEviction) {
  // Bounded single shard: evictions must prune the index fronts in lockstep.
  mm::Server server{{.shards = 1, .shard_capacity = 8, .overflow = mm::Overflow::DropOldest}};
  for (std::uint64_t i = 0; i < 40; ++i) {
    server.submit(make_record("d" + std::to_string(i % 3), "s", i));
  }
  EXPECT_LE(server.size(), 8u);
  std::size_t total = 0;
  for (int d = 0; d < 3; ++d) {
    const std::string design = "d" + std::to_string(d);
    auto indexed = server.for_design(design);
    auto scanned = server.query([&](const mm::Record& r) { return r.design == design; });
    EXPECT_EQ(indexed.size(), scanned.size());
    for (const auto* r : indexed) EXPECT_EQ(r->design, design);
    total += indexed.size();
  }
  EXPECT_EQ(total, server.size());
}

// ----------------------------------------------------------------- streaming

TEST(MetricsService, PollSinceReconstructsAll) {
  mm::Server server{{.shards = 8}};
  const std::uint64_t sub = server.subscribe(/*from_start=*/true);
  for (std::uint64_t i = 0; i < 300; ++i) {
    server.submit(make_record("d" + std::to_string(i % 11), "s" + std::to_string(i % 3), i,
                              static_cast<double>(i)));
  }
  std::vector<mm::Record> streamed;
  for (;;) {  // bounded polls to exercise cursor resumption
    mm::Poll p = server.poll_since(sub, 64);
    EXPECT_EQ(p.missed, 0u);
    if (p.records.empty()) break;
    for (auto& r : p.records) streamed.push_back(std::move(r));
  }
  server.unsubscribe(sub);
  EXPECT_EQ(sorted_dumps(streamed), sorted_dumps(server.all()));
}

TEST(MetricsService, SubscribeFromTailSeesOnlyNewRecords) {
  mm::Server server{{.shards = 2}};
  server.submit(make_record("d", "s", 1));
  const std::uint64_t sub = server.subscribe(/*from_start=*/false);
  server.submit(make_record("d", "s", 2));
  mm::Poll p = server.poll_since(sub);
  ASSERT_EQ(p.records.size(), 1u);
  EXPECT_EQ(p.records[0].seed, 2u);
  server.unsubscribe(sub);
}

TEST(MetricsService, PerStreamOrderIsSubmissionOrder) {
  mm::Server server{{.shards = 16}};
  const std::uint64_t sub = server.subscribe();
  for (std::uint64_t i = 0; i < 50; ++i) server.submit(make_record("only", "flow", i));
  const mm::Poll p = server.poll_since(sub);
  ASSERT_EQ(p.records.size(), 50u);
  for (std::uint64_t i = 0; i < 50; ++i) EXPECT_EQ(p.records[i].seed, i);
  server.unsubscribe(sub);
}

TEST(MetricsService, ConcurrentSubmitWhilePolling) {
  // The TSan workhorse: 4 producers on distinct streams racing one
  // poll_since consumer; the streamed reconstruction must equal all().
  mm::Server server{{.shards = 8}};
  const std::uint64_t sub = server.subscribe();
  constexpr std::uint64_t kPerProducer = 2000;
  constexpr std::size_t kProducers = 4;
  std::atomic<bool> done{false};
  std::vector<mm::Record> streamed;
  std::uint64_t missed = 0;
  std::thread consumer([&] {
    for (;;) {
      mm::Poll p = server.poll_since(sub, 128);
      missed += p.missed;
      for (auto& r : p.records) streamed.push_back(std::move(r));
      if (p.records.empty()) {
        if (done.load(std::memory_order_acquire)) break;
        std::this_thread::yield();
      }
    }
  });
  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        server.submit(make_record("dut" + std::to_string(p), "flow", i, static_cast<double>(i)));
      }
    });
  }
  for (auto& t : producers) t.join();
  done.store(true, std::memory_order_release);
  consumer.join();
  server.unsubscribe(sub);
  EXPECT_EQ(missed, 0u);
  EXPECT_EQ(streamed.size(), kProducers * kPerProducer);
  EXPECT_EQ(sorted_dumps(streamed), sorted_dumps(server.all()));
}

// -------------------------------------------------------------- backpressure

TEST(MetricsService, DropOldestEvictsAndCountsMisses) {
  mm::Server server{{.shards = 1, .shard_capacity = 4, .overflow = mm::Overflow::DropOldest}};
  auto& dropped = obs::Registry::global().counter("metrics.ingest_dropped");
  const std::uint64_t before = dropped.value();
  const std::uint64_t sub = server.subscribe();  // never polls until the end
  for (std::uint64_t i = 0; i < 10; ++i) server.submit(make_record("d", "s", i));
  EXPECT_EQ(server.size(), 4u);
  EXPECT_EQ(dropped.value() - before, 6u);
  const mm::Poll p = server.poll_since(sub);
  EXPECT_EQ(p.missed, 6u);  // the subscriber saw the gap
  ASSERT_EQ(p.records.size(), 4u);
  EXPECT_EQ(p.records.front().seed, 6u);  // oldest retained
  server.unsubscribe(sub);
}

TEST(MetricsService, ConsumedRecordsAreFreeToEvict) {
  // A subscriber that keeps up turns the bound into pure retention trimming:
  // nothing is dropped and nothing is missed.
  mm::Server server{{.shards = 1, .shard_capacity = 4, .overflow = mm::Overflow::DropOldest}};
  auto& dropped = obs::Registry::global().counter("metrics.ingest_dropped");
  const std::uint64_t before = dropped.value();
  const std::uint64_t sub = server.subscribe();
  std::size_t streamed = 0;
  std::uint64_t missed = 0;
  for (std::uint64_t i = 0; i < 32; ++i) {
    server.submit(make_record("d", "s", i));
    const mm::Poll p = server.poll_since(sub);
    streamed += p.records.size();
    missed += p.missed;
  }
  EXPECT_EQ(streamed, 32u);
  EXPECT_EQ(missed, 0u);
  EXPECT_EQ(dropped.value() - before, 0u);
  server.unsubscribe(sub);
}

TEST(MetricsService, BlockModeDeliversEverythingInOrder) {
  mm::Server server{{.shards = 1, .shard_capacity = 4, .overflow = mm::Overflow::Block}};
  auto& dropped = obs::Registry::global().counter("metrics.ingest_dropped");
  auto& blocked_ms = obs::Registry::global().counter("metrics.ingest_blocked_ms");
  const std::uint64_t dropped_before = dropped.value();
  const std::uint64_t blocked_before = blocked_ms.value();
  const std::uint64_t sub = server.subscribe();
  constexpr std::uint64_t kTotal = 64;
  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kTotal; ++i) server.submit(make_record("d", "s", i));
  });
  // Let the producer fill the shard and block on the condvar before the
  // consumer starts draining, so blocked time is actually accrued.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  std::vector<mm::Record> streamed;
  std::uint64_t missed = 0;
  while (streamed.size() < kTotal) {
    mm::Poll p = server.poll_since(sub, 2);
    missed += p.missed;
    for (auto& r : p.records) streamed.push_back(std::move(r));
    if (p.records.empty()) std::this_thread::yield();
  }
  producer.join();
  server.unsubscribe(sub);
  EXPECT_EQ(missed, 0u);
  EXPECT_EQ(dropped.value() - dropped_before, 0u);
  EXPECT_GE(blocked_ms.value() - blocked_before, 1u);
  ASSERT_EQ(streamed.size(), kTotal);
  for (std::uint64_t i = 0; i < kTotal; ++i) EXPECT_EQ(streamed[i].seed, i);
}

TEST(MetricsService, BlockModeWithoutSubscribersDegradesToDrop) {
  // Nobody will ever consume; waiting would deadlock, so overflow drops.
  mm::Server server{{.shards = 1, .shard_capacity = 4, .overflow = mm::Overflow::Block}};
  for (std::uint64_t i = 0; i < 20; ++i) server.submit(make_record("d", "s", i));
  EXPECT_EQ(server.size(), 4u);
}

// ---------------------------------------------------------- load persistence

TEST(MetricsService, LoadBypassesSinkAndBumpsIds) {
  const std::string path = "/tmp/maestro_test_load_" + std::to_string(::getpid()) + ".jsonl";
  mm::Server source;
  source.submit(make_record("dut", "flow", 1));
  source.submit(make_record("dut", "route", 2));
  ASSERT_TRUE(source.save(path));

  mm::Server server;
  std::atomic<std::size_t> sink_calls{0};
  server.set_sink([&](const mm::Record&) { sink_calls.fetch_add(1); });
  EXPECT_EQ(server.load(path), 2u);
  // The sink is the persistence bridge; replaying a file through it would
  // double-persist every record.
  EXPECT_EQ(sink_calls.load(), 0u);
  // New submissions must not collide with loaded run ids.
  const std::uint64_t id = server.submit(make_record("dut", "place", 3));
  EXPECT_GT(id, 2u);
  EXPECT_EQ(sink_calls.load(), 1u);
  std::remove(path.c_str());
}

TEST(MetricsService, LoadFileCountsSkippedLines) {
  const std::string path = "/tmp/maestro_test_skip_" + std::to_string(::getpid()) + ".jsonl";
  {
    std::ofstream out(path);
    out << make_record("dut", "flow", 1).to_json().dump() << '\n';
    out << "this is not json\n";
    out << make_record("dut", "flow", 2).to_json().dump() << '\n';
    out << "{\"unterminated\": \n";
  }
  auto& skipped = obs::Registry::global().counter("metrics.load_skipped");
  const std::uint64_t before = skipped.value();
  mm::Server server;
  const mm::LoadResult res = server.load_file(path);
  EXPECT_EQ(res.loaded, 2u);
  EXPECT_EQ(res.skipped, 2u);
  EXPECT_EQ(skipped.value() - before, 2u);
  EXPECT_EQ(server.size(), 2u);
  std::remove(path.c_str());
}

// ------------------------------------------------------------ streaming miner

TEST(MetricsService, StreamingKnobStatsMatchesBatchMiner) {
  mm::Server server;
  mm::StreamingKnobStats live{server, "wns_ps", "flow"};
  for (std::uint64_t i = 0; i < 120; ++i) {
    mm::Record r = make_record("dut", i % 4 == 0 ? "route" : "flow", i,
                               static_cast<double>(i % 17) - 8.0);
    r.knobs["effort"] = i % 3 == 0 ? "high" : "low";
    r.knobs["opt.style"] = i % 2 == 0 ? "timing" : "power";
    server.submit(std::move(r));
    if (i % 10 == 0) live.poll();  // interleave polling with collection
  }
  live.poll();
  EXPECT_EQ(live.consumed(), 120u);
  EXPECT_EQ(live.missed(), 0u);
  const auto stream = live.effects();
  const auto batch = mm::knob_sensitivity(server, "wns_ps", "flow");
  ASSERT_EQ(stream.size(), batch.size());
  for (std::size_t i = 0; i < stream.size(); ++i) {
    EXPECT_EQ(stream[i].knob, batch[i].knob);
    EXPECT_EQ(stream[i].value, batch[i].value);
    EXPECT_EQ(stream[i].runs, batch[i].runs);
    EXPECT_DOUBLE_EQ(stream[i].mean_metric, batch[i].mean_metric);
    EXPECT_DOUBLE_EQ(stream[i].stddev_metric, batch[i].stddev_metric);
  }
}

// -------------------------------------------------------------- wire protocol

TEST(MetricsService, WireRoundTripInProcess) {
  const std::string path = temp_socket_path("wire");
  mm::Server server;
  mm::Collector collector(server, {.socket_path = path});
  ASSERT_TRUE(collector.start());

  std::vector<mm::Record> sent;
  {
    mm::RemoteTransmitter tx(path, {.batch_records = 16});
    ASSERT_TRUE(tx.connected());
    for (std::uint64_t i = 0; i < 100; ++i) {
      mm::Record r = child_record(/*base_id=*/1000, i);
      sent.push_back(r);
      ASSERT_TRUE(tx.submit(std::move(r)));
    }
    // flush(): every record submitted so far is queryable on return.
    ASSERT_TRUE(tx.flush());
    EXPECT_EQ(server.size(), 100u);
    ASSERT_TRUE(tx.close());
  }
  collector.stop();
  EXPECT_EQ(collector.records_received(), 100u);
  EXPECT_EQ(collector.connections_accepted(), 1u);
  // Preset run ids survive the wire: arrival is bit-identical.
  EXPECT_EQ(sorted_dumps(sent), sorted_dumps(server.all()));
}

TEST(MetricsService, CollectorAssignsIdsToUnnumberedRecords) {
  const std::string path = temp_socket_path("assign");
  mm::Server server;
  mm::Collector collector(server, {.socket_path = path});
  ASSERT_TRUE(collector.start());
  {
    mm::RemoteTransmitter tx(path);
    ASSERT_TRUE(tx.connected());
    for (std::uint64_t i = 0; i < 10; ++i) tx.submit(make_record("dut", "flow", i));
    ASSERT_TRUE(tx.close());
  }
  collector.stop();
  std::vector<std::uint64_t> ids;
  for (const auto& r : server.all()) ids.push_back(r.run_id);
  std::sort(ids.begin(), ids.end());
  ASSERT_EQ(ids.size(), 10u);
  EXPECT_EQ(std::adjacent_find(ids.begin(), ids.end()), ids.end());  // unique
  EXPECT_GT(ids.front(), 0u);
}

TEST(MetricsService, CrossProcessCollectorRoundTrip) {
  const std::string path = temp_socket_path("xproc");
  mm::Server server;
  mm::Collector collector(server, {.socket_path = path});
  ASSERT_TRUE(collector.start());

  // Two child processes, >= 10k records total, disjoint preset id ranges.
  constexpr std::uint64_t kPerChild = 5000;
  const std::uint64_t bases[] = {100000, 200000};
  std::vector<pid_t> children;
  for (const std::uint64_t base : bases) {
    const std::string count = std::to_string(kPerChild);
    const std::string base_s = std::to_string(base);
    const char* argv[] = {"maestro_metrics_service_tests", "--metrics-child", path.c_str(),
                          count.c_str(), base_s.c_str(), nullptr};
    pid_t pid = -1;
    ASSERT_EQ(::posix_spawn(&pid, "/proc/self/exe", nullptr, nullptr,
                            const_cast<char* const*>(argv), environ),
              0);
    children.push_back(pid);
  }
  for (const pid_t pid : children) {
    int status = -1;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0) << "child transmitter failed";
  }
  collector.stop();

  std::vector<mm::Record> expected;
  for (const std::uint64_t base : bases) {
    for (std::uint64_t i = 0; i < kPerChild; ++i) expected.push_back(child_record(base, i));
  }
  EXPECT_EQ(collector.records_received(), expected.size());
  EXPECT_EQ(collector.connections_accepted(), 2u);
  // Bit-identical round-trip across the process boundary.
  EXPECT_EQ(sorted_dumps(expected), sorted_dumps(server.all()));
}

}  // namespace

/// Child mode: stream records into a collector socket and exit 0 on a fully
/// acknowledged graceful close.
static int run_metrics_child(const char* socket_path, std::uint64_t count, std::uint64_t base_id) {
  mm::RemoteTransmitter tx(socket_path, {.batch_records = 128});
  if (!tx.connected()) return 2;
  for (std::uint64_t i = 0; i < count; ++i) {
    if (!tx.submit(child_record(base_id, i))) return 3;
  }
  return tx.close() ? 0 : 4;
}

int main(int argc, char** argv) {
  if (argc == 5 && std::strcmp(argv[1], "--metrics-child") == 0) {
    return run_metrics_child(argv[2], std::strtoull(argv[3], nullptr, 10),
                             std::strtoull(argv[4], nullptr, 10));
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
