// Unit tests for maestro::ml — bandit policies, MDP solvers, Q-learning,
// hidden Markov models, linear algebra, and regression models.

#include <gtest/gtest.h>

#include <cmath>

#include "ml/bandit.hpp"
#include "ml/hmm.hpp"
#include "ml/linalg.hpp"
#include "ml/mdp.hpp"
#include "ml/regression.hpp"

namespace ml = maestro::ml;
using maestro::util::Rng;

// ---------------------------------------------------------------- bandits

namespace {
std::vector<ml::GaussianArm> three_arms() {
  return {{0.2, 0.1}, {0.5, 0.1}, {0.8, 0.1}};
}
}  // namespace

TEST(Bandit, ArmStatsMoments) {
  ml::ArmStats s;
  s.pulls = 4;
  s.reward_sum = 10.0;
  s.reward_sq_sum = 30.0;
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_NEAR(s.variance(), (30.0 - 4 * 6.25) / 3.0, 1e-12);
}

class BanditConvergence : public ::testing::TestWithParam<int> {};

TEST_P(BanditConvergence, AllPoliciesFindBestArm) {
  const auto arms = three_arms();
  Rng rng{static_cast<std::uint64_t>(GetParam())};
  std::vector<std::unique_ptr<ml::BanditPolicy>> policies;
  policies.push_back(std::make_unique<ml::ThompsonGaussian>(arms.size()));
  policies.push_back(std::make_unique<ml::EpsilonGreedy>(arms.size(), 0.1));
  policies.push_back(std::make_unique<ml::Softmax>(arms.size(), 0.05));
  policies.push_back(std::make_unique<ml::Ucb1>(arms.size()));
  for (auto& p : policies) {
    const auto res = ml::run_bandit(*p, arms, 300, 1, rng);
    EXPECT_EQ(p->best_empirical_arm(), 2u) << p->name();
    // The best arm should dominate pulls.
    EXPECT_GT(res.pulls_per_arm[2], res.pulls_per_arm[0]) << p->name();
    EXPECT_GT(res.pulls_per_arm[2], res.pulls_per_arm[1]) << p->name();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BanditConvergence, ::testing::Values(1, 2, 3));

TEST(Bandit, ThompsonRegretSublinear) {
  const auto arms = three_arms();
  Rng rng{7};
  ml::ThompsonGaussian ts{arms.size()};
  const auto res = ml::run_bandit(ts, arms, 500, 1, rng);
  // Late-half regret accumulation much slower than early half.
  const double early = res.cumulative_regret[249];
  const double late = res.cumulative_regret[499] - early;
  EXPECT_LT(late, 0.6 * early);
}

TEST(Bandit, ThompsonBeatsUniformRandom) {
  const auto arms = three_arms();
  Rng rng{9};
  ml::ThompsonGaussian ts{arms.size()};
  const auto res = ml::run_bandit(ts, arms, 400, 1, rng);
  // Uniform random regret would be ~ (0.6+0.3+0)/3 = 0.3 per pull.
  EXPECT_LT(res.total_regret, 0.3 * 400 * 0.5);
}

TEST(Bandit, BatchedPullsWork) {
  const auto arms = three_arms();
  Rng rng{11};
  ml::ThompsonGaussian ts{arms.size()};
  const auto res = ml::run_bandit(ts, arms, 40, 5, rng);
  EXPECT_EQ(res.cumulative_regret.size(), 40u);
  std::size_t total = 0;
  for (const auto n : res.pulls_per_arm) total += n;
  EXPECT_EQ(total, 200u);  // 40 x 5
  EXPECT_EQ(ts.total_pulls(), 200u);
}

TEST(Bandit, ThompsonBernoulliConverges) {
  Rng rng{13};
  ml::ThompsonBernoulli tb{3};
  const std::vector<double> probs = {0.2, 0.5, 0.8};
  for (int i = 0; i < 600; ++i) {
    const auto arm = tb.select(rng);
    tb.update(arm, rng.chance(probs[arm]) ? 1.0 : 0.0);
  }
  EXPECT_GT(tb.stats(2).pulls, tb.stats(0).pulls);
  EXPECT_GT(tb.stats(2).pulls, tb.stats(1).pulls);
}

TEST(Bandit, EpsilonZeroIsGreedy) {
  Rng rng{15};
  ml::EpsilonGreedy greedy{2, 0.0};
  greedy.update(0, 1.0);
  greedy.update(1, 0.0);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(greedy.select(rng), 0u);
}

// ------------------------------------------------------------------- MDP

namespace {
// Two-state chain: state 0 can GO (to terminal 1 with reward depending on
// action quality) or STOP. Optimal is to GO when the go-reward is higher.
ml::Mdp two_state(double go_reward, double stop_reward) {
  ml::Mdp mdp{2, 2};
  mdp.add_transition(0, 0, {1, 1.0, go_reward});
  mdp.add_transition(0, 1, {1, 1.0, stop_reward});
  return mdp;
}
}  // namespace

TEST(Mdp, ValueIterationPicksBetterAction) {
  const auto pick_go = ml::value_iteration(two_state(2.0, 1.0));
  EXPECT_EQ(pick_go.action[0], 0u);
  const auto pick_stop = ml::value_iteration(two_state(1.0, 2.0));
  EXPECT_EQ(pick_stop.action[0], 1u);
}

TEST(Mdp, PolicyIterationMatchesValueIteration) {
  // Random-ish 6-state MDP; both solvers must agree on values and actions.
  Rng rng{17};
  ml::Mdp mdp{6, 2};
  for (std::size_t s = 0; s < 5; ++s) {
    for (std::size_t a = 0; a < 2; ++a) {
      mdp.add_transition(s, a, {s + 1, 0.7, rng.uniform(-1, 1)});
      mdp.add_transition(s, a, {rng.below(6), 0.3, rng.uniform(-1, 1)});
    }
  }
  mdp.normalize();
  ml::SolveOptions opt;
  opt.gamma = 0.9;
  const auto vi = ml::value_iteration(mdp, opt);
  const auto pi = ml::policy_iteration(mdp, opt);
  for (std::size_t s = 0; s < 6; ++s) {
    EXPECT_NEAR(vi.value[s], pi.value[s], 1e-4) << "state " << s;
    if (!mdp.terminal(s)) EXPECT_EQ(vi.action[s], pi.action[s]) << "state " << s;
  }
}

TEST(Mdp, TerminalDetection) {
  ml::Mdp mdp{3, 2};
  mdp.add_transition(0, 0, {1, 1.0, 0.0});
  EXPECT_FALSE(mdp.terminal(0));
  EXPECT_TRUE(mdp.terminal(1));
  EXPECT_TRUE(mdp.terminal(2));
}

TEST(Mdp, NormalizeMakesDistributions) {
  ml::Mdp mdp{2, 1};
  mdp.add_transition(0, 0, {1, 3.0, 1.0});
  mdp.add_transition(0, 0, {0, 1.0, 0.0});
  mdp.normalize();
  double total = 0.0;
  for (const auto& t : mdp.outcomes(0, 0)) total += t.probability;
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_NEAR(mdp.outcomes(0, 0)[0].probability, 0.75, 1e-12);
}

TEST(Mdp, DiscountAffectsValues) {
  // A chain paying 1 per step forever: value = 1/(1-gamma) at the start.
  ml::Mdp mdp{2, 1};
  mdp.add_transition(0, 0, {0, 1.0, 1.0});
  ml::SolveOptions opt;
  opt.gamma = 0.9;
  opt.tolerance = 1e-10;
  const auto p = ml::value_iteration(mdp, opt);
  EXPECT_NEAR(p.value[0], 10.0, 1e-3);
}

TEST(QLearning, SolvesSmallMdp) {
  // 3-state corridor: action 0 moves right (reward 1 at the end), action 1
  // stays put (reward 0). Q-learning should learn to move right.
  ml::Mdp mdp{4, 2};
  mdp.add_transition(0, 0, {1, 1.0, 0.0});
  mdp.add_transition(1, 0, {2, 1.0, 0.0});
  mdp.add_transition(2, 0, {3, 1.0, 10.0});
  for (std::size_t s = 0; s < 3; ++s) mdp.add_transition(s, 1, {s, 1.0, -0.1});
  ml::MdpEnvironment env{mdp};
  Rng rng{19};
  ml::QLearnOptions opt;
  opt.episodes = 3000;
  const auto policy = ml::q_learning(env, opt, rng);
  EXPECT_EQ(policy.action[0], 0u);
  EXPECT_EQ(policy.action[1], 0u);
  EXPECT_EQ(policy.action[2], 0u);
}

// ------------------------------------------------------------------- HMM

TEST(Hmm, RandomModelIsValid) {
  Rng rng{21};
  const auto h = ml::Hmm::random(3, 4, rng);
  EXPECT_TRUE(h.valid());
  EXPECT_EQ(h.n_states(), 3u);
  EXPECT_EQ(h.n_symbols(), 4u);
}

TEST(Hmm, LikelihoodOfDeterministicModel) {
  // Two states that always self-loop and emit their own symbol.
  ml::Hmm h;
  h.initial = {1.0, 0.0};
  h.transition = {{1.0, 0.0}, {0.0, 1.0}};
  h.emission = {{1.0, 0.0}, {0.0, 1.0}};
  EXPECT_NEAR(ml::log_likelihood(h, {0, 0, 0}), 0.0, 1e-9);  // P = 1
  EXPECT_LT(ml::log_likelihood(h, {0, 1, 0}), -10.0);        // impossible-ish
}

TEST(Hmm, ViterbiDecodesPlantedStates) {
  // Noisy two-state model with distinct emissions.
  ml::Hmm h;
  h.initial = {0.5, 0.5};
  h.transition = {{0.9, 0.1}, {0.1, 0.9}};
  h.emission = {{0.9, 0.1}, {0.1, 0.9}};
  const std::vector<int> obs = {0, 0, 0, 1, 1, 1, 0, 0};
  const auto path = ml::viterbi(h, obs);
  ASSERT_EQ(path.size(), obs.size());
  EXPECT_EQ(path[0], 0u);
  EXPECT_EQ(path[4], 1u);
  EXPECT_EQ(path[7], 0u);
}

TEST(Hmm, PosteriorsAreDistributions) {
  Rng rng{23};
  const auto h = ml::Hmm::random(3, 4, rng);
  const auto obs = ml::sample_sequence(h, 20, rng);
  std::vector<std::vector<double>> post;
  ml::log_likelihood(h, obs, &post);
  ASSERT_EQ(post.size(), obs.size());
  for (const auto& p : post) {
    double total = 0.0;
    for (const double v : p) {
      EXPECT_GE(v, 0.0);
      total += v;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(Hmm, BaumWelchImprovesLikelihood) {
  // Generate data from a planted model; train a random model on it.
  ml::Hmm truth;
  truth.initial = {0.7, 0.3};
  truth.transition = {{0.85, 0.15}, {0.2, 0.8}};
  truth.emission = {{0.8, 0.15, 0.05}, {0.05, 0.25, 0.7}};
  Rng rng{25};
  std::vector<std::vector<int>> seqs;
  for (int i = 0; i < 30; ++i) seqs.push_back(ml::sample_sequence(truth, 40, rng));

  ml::Hmm model = ml::Hmm::random(2, 3, rng);
  double before = 0.0;
  for (const auto& s : seqs) before += ml::log_likelihood(model, s);
  ml::BaumWelchOptions opt;
  opt.max_iterations = 40;
  ml::baum_welch(model, seqs, opt);
  double after = 0.0;
  for (const auto& s : seqs) after += ml::log_likelihood(model, s);
  EXPECT_GT(after, before);
  EXPECT_TRUE(model.valid(1e-6));
}

TEST(Hmm, SampleSequenceSymbolsInRange) {
  Rng rng{27};
  const auto h = ml::Hmm::random(2, 5, rng);
  const auto obs = ml::sample_sequence(h, 100, rng);
  EXPECT_EQ(obs.size(), 100u);
  for (const int o : obs) {
    EXPECT_GE(o, 0);
    EXPECT_LT(o, 5);
  }
}

// ---------------------------------------------------------------- linalg

TEST(Linalg, SolveKnownSystem) {
  ml::Matrix a{2, 2};
  a.at(0, 0) = 2.0;
  a.at(0, 1) = 1.0;
  a.at(1, 0) = 1.0;
  a.at(1, 1) = 3.0;
  const auto x = ml::solve_linear(a, {5.0, 10.0});
  ASSERT_TRUE(x.has_value());
  EXPECT_NEAR((*x)[0], 1.0, 1e-9);
  EXPECT_NEAR((*x)[1], 3.0, 1e-9);
}

TEST(Linalg, SingularReturnsNullopt) {
  ml::Matrix a{2, 2};
  a.at(0, 0) = 1.0;
  a.at(0, 1) = 2.0;
  a.at(1, 0) = 2.0;
  a.at(1, 1) = 4.0;
  EXPECT_FALSE(ml::solve_linear(a, {1.0, 2.0}).has_value());
}

TEST(Linalg, SolveNeedsPivoting) {
  // Zero on the initial diagonal forces a row swap.
  ml::Matrix a{2, 2};
  a.at(0, 0) = 0.0;
  a.at(0, 1) = 1.0;
  a.at(1, 0) = 1.0;
  a.at(1, 1) = 0.0;
  const auto x = ml::solve_linear(a, {3.0, 7.0});
  ASSERT_TRUE(x.has_value());
  EXPECT_NEAR((*x)[0], 7.0, 1e-12);
  EXPECT_NEAR((*x)[1], 3.0, 1e-12);
}

TEST(Linalg, MatrixOps) {
  ml::Matrix m{2, 3};
  m.at(0, 0) = 1;
  m.at(0, 2) = 2;
  m.at(1, 1) = 3;
  const auto t = m.transpose();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t.at(2, 0), 2.0);
  const auto p = m.multiply(t);  // 2x2
  EXPECT_EQ(p.rows(), 2u);
  EXPECT_DOUBLE_EQ(p.at(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(p.at(1, 1), 9.0);
  const auto id = ml::Matrix::identity(3);
  const auto mi = m.multiply(id);
  EXPECT_DOUBLE_EQ(mi.at(0, 2), 2.0);
}

// ------------------------------------------------------------- regression

namespace {
ml::Dataset linear_data(Rng& rng, std::size_t n = 200) {
  ml::Dataset d;
  for (std::size_t i = 0; i < n; ++i) {
    const double x0 = rng.uniform(-5, 5);
    const double x1 = rng.uniform(-5, 5);
    d.add({x0, x1}, 3.0 + 2.0 * x0 - 1.5 * x1 + rng.gauss(0, 0.01));
  }
  return d;
}
}  // namespace

TEST(Regression, RidgeRecoversLinearFunction) {
  Rng rng{31};
  const auto d = linear_data(rng);
  ml::RidgeRegression model{1e-6};
  model.fit(d);
  EXPECT_NEAR(model.intercept(), 3.0, 0.05);
  EXPECT_NEAR(model.weights()[0], 2.0, 0.02);
  EXPECT_NEAR(model.weights()[1], -1.5, 0.02);
  EXPECT_NEAR(model.predict(std::vector<double>{1.0, 1.0}), 3.5, 0.1);
}

TEST(Regression, TrainTestSplitPartitions) {
  Rng rng{33};
  const auto d = linear_data(rng, 100);
  const auto [train, test] = ml::train_test_split(d, 0.25, rng);
  EXPECT_EQ(test.size(), 25u);
  EXPECT_EQ(train.size(), 75u);
}

TEST(Regression, ScalerNormalizes) {
  Rng rng{35};
  ml::Dataset d;
  for (int i = 0; i < 500; ++i) d.add({rng.gauss(100, 20), rng.gauss(-5, 0.1)}, 0.0);
  ml::StandardScaler sc;
  sc.fit(d);
  const auto scaled = sc.transform(d);
  double m0 = 0.0;
  double v0 = 0.0;
  for (const auto& row : scaled.x) m0 += row[0];
  m0 /= 500;
  for (const auto& row : scaled.x) v0 += (row[0] - m0) * (row[0] - m0);
  v0 /= 500;
  EXPECT_NEAR(m0, 0.0, 1e-9);
  EXPECT_NEAR(v0, 1.0, 1e-6);
}

TEST(Regression, KnnInterpolatesLocally) {
  ml::Dataset d;
  for (int i = 0; i <= 10; ++i) d.add({static_cast<double>(i)}, static_cast<double>(i * i));
  ml::KnnRegressor knn{1};
  knn.fit(d);
  EXPECT_DOUBLE_EQ(knn.predict(std::vector<double>{3.1}), 9.0);
  ml::KnnRegressor knn3{3};
  knn3.fit(d);
  // Neighbors of 5.0 are {4,5,6} -> mean(16,25,36) = 25.67.
  EXPECT_NEAR(knn3.predict(std::vector<double>{5.0}), (16 + 25 + 36) / 3.0, 1e-9);
}

TEST(Regression, BoostedStumpsFitNonlinear) {
  Rng rng{37};
  ml::Dataset d;
  for (int i = 0; i < 400; ++i) {
    const double x = rng.uniform(-3, 3);
    d.add({x}, x > 0 ? 5.0 : -5.0);  // step function: stumps' home turf
  }
  ml::BoostedStumps model{100, 0.3};
  model.fit(d);
  EXPECT_GT(model.rounds_fitted(), 10u);
  EXPECT_NEAR(model.predict(std::vector<double>{2.0}), 5.0, 0.5);
  EXPECT_NEAR(model.predict(std::vector<double>{-2.0}), -5.0, 0.5);
}

TEST(Regression, BoostedStumpsBeatRidgeOnNonlinearity) {
  Rng rng{39};
  ml::Dataset d;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform(-3, 3);
    d.add({x}, std::abs(x) + rng.gauss(0, 0.05));
  }
  auto [train, test] = ml::train_test_split(d, 0.3, rng);
  ml::RidgeRegression ridge;
  ridge.fit(train);
  ml::BoostedStumps stumps{200, 0.15};
  stumps.fit(train);
  const double ridge_mse = ml::mse(test.y, ridge.predict_all(test));
  const double stump_mse = ml::mse(test.y, stumps.predict_all(test));
  EXPECT_LT(stump_mse, 0.5 * ridge_mse);
}

namespace {
/// Nonlinear target over 5 features of which only x0 and x2 matter; x4 is
/// constant. The FIST property under test: importances concentrate on the
/// informative features.
ml::Dataset forest_data(Rng& rng, std::size_t n = 300) {
  ml::Dataset d;
  for (std::size_t i = 0; i < n; ++i) {
    const double x0 = rng.uniform(-2, 2);
    const double x1 = rng.uniform(-2, 2);
    const double x2 = rng.uniform(-2, 2);
    const double x3 = rng.uniform(-2, 2);
    d.add({x0, x1, x2, x3, 1.0}, (x0 > 0 ? 4.0 : -4.0) + 2.0 * x2 * x2 + rng.gauss(0, 0.05));
  }
  return d;
}
}  // namespace

TEST(Regression, RandomForestFitsNonlinearAndRanksFeatures) {
  Rng rng{41};
  const auto d = forest_data(rng);
  auto [train, test] = ml::train_test_split(d, 0.3, rng);
  ml::RandomForest::Options opt;
  opt.trees = 40;
  opt.max_depth = 6;
  opt.features_per_split = 3;  // default dims/3 = 1 is too blind at 5 features
  opt.seed = 7;
  ml::RandomForest forest{opt};
  forest.fit(train);
  EXPECT_EQ(forest.trees_fitted(), opt.trees);
  EXPECT_GT(ml::r2_score(test.y, forest.predict_all(test)), 0.85);

  const auto& imp = forest.feature_importances();
  ASSERT_EQ(imp.size(), 5u);
  double total = 0.0;
  for (const double v : imp) {
    EXPECT_GE(v, 0.0);
    total += v;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  // The informative features dominate; the irrelevant ones are ~0 and the
  // constant one exactly 0 (no split can use it).
  EXPECT_GT(imp[0], 0.3);
  EXPECT_GT(imp[2], 0.1);
  EXPECT_LT(imp[1], 0.05);
  EXPECT_LT(imp[3], 0.05);
  EXPECT_DOUBLE_EQ(imp[4], 0.0);
}

TEST(Regression, RandomForestDeterministicUnderFixedSeed) {
  Rng rng{43};
  const auto d = forest_data(rng, 150);
  ml::RandomForest::Options opt;
  opt.trees = 16;
  opt.seed = 99;
  ml::RandomForest a{opt};
  ml::RandomForest b{opt};
  a.fit(d);
  b.fit(d);
  EXPECT_EQ(a.feature_importances(), b.feature_importances());  // bitwise
  Rng probe{5};
  for (int i = 0; i < 50; ++i) {
    const std::vector<double> row = {probe.uniform(-2, 2), probe.uniform(-2, 2),
                                     probe.uniform(-2, 2), probe.uniform(-2, 2), 1.0};
    EXPECT_EQ(a.predict(row), b.predict(row));  // bitwise
  }
  // A different seed draws different bootstraps: almost surely a different
  // model (guards against the seed being ignored).
  opt.seed = 100;
  ml::RandomForest c{opt};
  c.fit(d);
  EXPECT_NE(a.feature_importances(), c.feature_importances());
}

TEST(Regression, RandomForestDegenerateInputs) {
  // Constant target: every tree is a single leaf, importances all zero.
  ml::Dataset flat;
  for (int i = 0; i < 20; ++i) flat.add({static_cast<double>(i)}, 3.25);
  ml::RandomForest forest;
  forest.fit(flat);
  EXPECT_DOUBLE_EQ(forest.predict(std::vector<double>{4.0}), 3.25);
  EXPECT_DOUBLE_EQ(forest.feature_importances()[0], 0.0);

  // Unfit model predicts 0 and exports no importances.
  ml::RandomForest unfit;
  EXPECT_DOUBLE_EQ(unfit.predict(std::vector<double>{1.0}), 0.0);
  EXPECT_TRUE(unfit.feature_importances().empty());

  // Tiny dataset (below 2*min_leaf): still fits, as a bagged mean.
  ml::Dataset tiny;
  tiny.add({0.0}, 1.0);
  tiny.add({1.0}, 2.0);
  ml::RandomForest small;
  small.fit(tiny);
  const double p = small.predict(std::vector<double>{0.5});
  EXPECT_GE(p, 1.0);
  EXPECT_LE(p, 2.0);
}

TEST(Regression, Metrics) {
  const std::vector<double> truth = {1, 2, 3, 4};
  const std::vector<double> pred = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(ml::mse(truth, pred), 0.0);
  EXPECT_DOUBLE_EQ(ml::mae(truth, pred), 0.0);
  EXPECT_DOUBLE_EQ(ml::r2_score(truth, pred), 1.0);
  const std::vector<double> off = {2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(ml::mse(truth, off), 1.0);
  EXPECT_DOUBLE_EQ(ml::mae(truth, off), 1.0);
  EXPECT_LT(ml::r2_score(truth, off), 1.0);
}

TEST(Regression, ConfusionCounts) {
  const std::vector<double> scores = {0.9, 0.8, 0.3, 0.1};
  const std::vector<int> labels = {1, 0, 1, 0};
  const auto c = ml::confusion_at(scores, labels, 0.5);
  EXPECT_EQ(c.tp, 1u);
  EXPECT_EQ(c.fp, 1u);
  EXPECT_EQ(c.fn, 1u);
  EXPECT_EQ(c.tn, 1u);
  EXPECT_DOUBLE_EQ(c.accuracy(), 0.5);
  EXPECT_DOUBLE_EQ(c.precision(), 0.5);
  EXPECT_DOUBLE_EQ(c.recall(), 0.5);
}
