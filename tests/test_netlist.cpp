// Unit tests for maestro::netlist — the cell library, netlist graph
// invariants, and every synthetic generator.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "netlist/cell_library.hpp"
#include "netlist/generators.hpp"
#include "netlist/netlist.hpp"

namespace mn = maestro::netlist;

namespace {
const mn::CellLibrary& lib() {
  static const mn::CellLibrary l = mn::make_default_library();
  return l;
}
}  // namespace

TEST(CellLibrary, HasAllFunctionsAndDrives) {
  for (const auto f : {mn::CellFunction::Inv, mn::CellFunction::Buf, mn::CellFunction::Nand2,
                       mn::CellFunction::Nor2, mn::CellFunction::And2, mn::CellFunction::Or2,
                       mn::CellFunction::Xor2, mn::CellFunction::Mux2}) {
    const auto v = lib().variants(f);
    ASSERT_EQ(v.size(), 4u) << mn::to_string(f);
    for (std::size_t i = 1; i < v.size(); ++i) {
      EXPECT_LT(lib().master(v[i - 1]).drive, lib().master(v[i]).drive);
    }
  }
  EXPECT_EQ(lib().variants(mn::CellFunction::Dff).size(), 2u);
}

TEST(CellLibrary, FindByNameAndFunction) {
  const auto id = lib().find("INV_X4");
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(lib().master(*id).function, mn::CellFunction::Inv);
  EXPECT_EQ(lib().master(*id).drive, 4);
  EXPECT_FALSE(lib().find("BOGUS").has_value());
  EXPECT_FALSE(lib().find(mn::CellFunction::Inv, 3).has_value());
  const auto byf = lib().find(mn::CellFunction::Nand2, 2);
  ASSERT_TRUE(byf.has_value());
  EXPECT_EQ(lib().master(*byf).name, "NAND2_X2");
}

TEST(CellLibrary, DriveScalingIsPhysical) {
  const auto x1 = *lib().find(mn::CellFunction::Inv, 1);
  const auto x8 = *lib().find(mn::CellFunction::Inv, 8);
  // Bigger drive: more area, more input cap, lower resistance, more leakage.
  EXPECT_GT(lib().master(x8).area_um2, lib().master(x1).area_um2);
  EXPECT_GT(lib().master(x8).input_cap_ff, lib().master(x1).input_cap_ff);
  EXPECT_LT(lib().master(x8).drive_res_kohm, lib().master(x1).drive_res_kohm);
  EXPECT_GT(lib().master(x8).leakage_nw, lib().master(x1).leakage_nw);
  // At heavy load the X8 is faster.
  EXPECT_LT(lib().master(x8).delay_ps(50.0), lib().master(x1).delay_ps(50.0));
}

TEST(CellLibrary, WidthsAreSiteMultiples) {
  for (const auto& m : lib().masters()) {
    EXPECT_EQ(m.width_dbu % lib().site_width_dbu(), 0) << m.name;
    EXPECT_GT(m.width_dbu, 0) << m.name;
  }
}

TEST(CellLibrary, InputCounts) {
  EXPECT_EQ(mn::input_count(mn::CellFunction::Inv), 1);
  EXPECT_EQ(mn::input_count(mn::CellFunction::Nand2), 2);
  EXPECT_EQ(mn::input_count(mn::CellFunction::Mux2), 3);
  EXPECT_EQ(mn::input_count(mn::CellFunction::Dff), 1);
  EXPECT_EQ(mn::input_count(mn::CellFunction::Input), 0);
  EXPECT_TRUE(mn::is_sequential(mn::CellFunction::Dff));
  EXPECT_FALSE(mn::is_sequential(mn::CellFunction::Nand2));
}

TEST(Netlist, BuildTinyAndValidate) {
  mn::Netlist nl{lib(), "tiny"};
  const auto pi = nl.add_instance("pi", lib().smallest(mn::CellFunction::Input));
  const auto inv = nl.add_instance("inv", lib().smallest(mn::CellFunction::Inv));
  const auto po = nl.add_instance("po", lib().smallest(mn::CellFunction::Output));
  const auto n0 = nl.add_net("n0", pi);
  const auto n1 = nl.add_net("n1", inv);
  nl.connect(n0, inv, 0);
  nl.connect(n1, po, 0);
  std::string why;
  EXPECT_TRUE(nl.validate(&why)) << why;
  EXPECT_EQ(nl.instance_count(), 3u);
  EXPECT_EQ(nl.net_count(), 2u);
  EXPECT_EQ(nl.net(n0).sinks.size(), 1u);
  EXPECT_EQ(nl.primary_inputs().size(), 1u);
  EXPECT_EQ(nl.primary_outputs().size(), 1u);
}

TEST(Netlist, ValidateCatchesUnconnectedPin) {
  mn::Netlist nl{lib(), "bad"};
  const auto pi = nl.add_instance("pi", lib().smallest(mn::CellFunction::Input));
  nl.add_net("n0", pi);
  nl.add_instance("inv", lib().smallest(mn::CellFunction::Inv));  // pin open
  std::string why;
  EXPECT_FALSE(nl.validate(&why));
  EXPECT_NE(why.find("unconnected"), std::string::npos);
}

TEST(Netlist, TopoOrderRespectsEdges) {
  const auto nl = mn::make_chain(lib(), 10);
  const auto order = nl.topo_order();
  ASSERT_EQ(order.size(), nl.instance_count());
  std::vector<std::size_t> pos(nl.instance_count());
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  for (const auto& net : nl.nets()) {
    for (const auto& sink : net.sinks) {
      if (mn::is_sequential(nl.master_of(sink.instance).function)) continue;
      EXPECT_LT(pos[net.driver], pos[sink.instance]);
    }
  }
}

TEST(Netlist, FlopsBreakCycles) {
  // PI -> NAND -> DFF -> (feedback to NAND) is legal because the flop
  // boundary breaks the combinational cycle.
  mn::Netlist nl{lib(), "loop"};
  const auto pi = nl.add_instance("pi", lib().smallest(mn::CellFunction::Input));
  const auto g = nl.add_instance("g", lib().smallest(mn::CellFunction::Nand2));
  const auto ff = nl.add_instance("ff", lib().smallest(mn::CellFunction::Dff));
  const auto npi = nl.add_net("npi", pi);
  const auto ng = nl.add_net("ng", g);
  const auto nff = nl.add_net("nff", ff);
  nl.connect(npi, g, 0);
  nl.connect(nff, g, 1);  // feedback through flop
  nl.connect(ng, ff, 0);
  EXPECT_FALSE(nl.topo_order().empty());
  EXPECT_TRUE(nl.validate());
}

TEST(Netlist, ResizePreservesFunction) {
  mn::Netlist nl{lib(), "rs"};
  const auto inv = nl.add_instance("i", *lib().find(mn::CellFunction::Inv, 1));
  nl.resize_instance(inv, *lib().find(mn::CellFunction::Inv, 4));
  EXPECT_EQ(nl.master_of(inv).drive, 4);
}

TEST(Netlist, ReconnectMovesSink) {
  mn::Netlist nl{lib(), "rc"};
  const auto pi1 = nl.add_instance("pi1", lib().smallest(mn::CellFunction::Input));
  const auto pi2 = nl.add_instance("pi2", lib().smallest(mn::CellFunction::Input));
  const auto inv = nl.add_instance("inv", lib().smallest(mn::CellFunction::Inv));
  const auto n1 = nl.add_net("n1", pi1);
  const auto n2 = nl.add_net("n2", pi2);
  nl.connect(n1, inv, 0);
  EXPECT_EQ(nl.net(n1).sinks.size(), 1u);
  nl.reconnect(n2, inv, 0);
  EXPECT_EQ(nl.net(n1).sinks.size(), 0u);
  EXPECT_EQ(nl.net(n2).sinks.size(), 1u);
  EXPECT_EQ(nl.instance(inv).input_nets[0], n2);
}

TEST(Netlist, AreaAndLeakageSums) {
  const auto nl = mn::make_chain(lib(), 5);
  const double inv_area = lib().master(lib().smallest(mn::CellFunction::Inv)).area_um2;
  EXPECT_NEAR(nl.total_area_um2(), 5 * inv_area, 1e-9);
  EXPECT_GT(nl.total_leakage_nw(), 0.0);
}

TEST(Generators, ChainStructure) {
  const auto nl = mn::make_chain(lib(), 8);
  EXPECT_TRUE(nl.validate());
  EXPECT_EQ(nl.instance_count(), 10u);  // 8 + pi + po
  const auto stats = mn::compute_stats(nl);
  EXPECT_EQ(stats.max_logic_depth, 8u);
  EXPECT_EQ(stats.max_fanout, 1u);
}

TEST(Generators, BufferChain) {
  const auto nl = mn::make_chain(lib(), 4, /*buffers=*/true);
  EXPECT_TRUE(nl.validate());
  std::size_t bufs = 0;
  for (std::size_t i = 0; i < nl.instance_count(); ++i) {
    if (nl.master_of(static_cast<mn::InstanceId>(i)).function == mn::CellFunction::Buf) ++bufs;
  }
  EXPECT_EQ(bufs, 4u);
}

class RandomLogicProperty : public ::testing::TestWithParam<std::tuple<std::size_t, double, std::uint64_t>> {};

TEST_P(RandomLogicProperty, AlwaysValidAndSized) {
  const auto [gates, flop_ratio, seed] = GetParam();
  mn::RandomLogicSpec spec;
  spec.gates = gates;
  spec.flop_ratio = flop_ratio;
  spec.seed = seed;
  const auto nl = mn::make_random_logic(lib(), spec);
  std::string why;
  EXPECT_TRUE(nl.validate(&why)) << why;
  const auto stats = mn::compute_stats(nl);
  EXPECT_EQ(stats.primary_inputs, spec.primary_inputs);
  EXPECT_EQ(stats.primary_outputs, spec.primary_outputs);
  const auto expected_flops =
      static_cast<std::size_t>(std::round(flop_ratio * static_cast<double>(gates)));
  EXPECT_EQ(stats.flops, expected_flops);
  // Instance count = gates + flops + ios.
  EXPECT_EQ(stats.instances, gates + expected_flops + spec.primary_inputs + spec.primary_outputs);
  EXPECT_GT(stats.max_logic_depth, 2u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomLogicProperty,
    ::testing::Values(std::tuple{200, 0.1, 1}, std::tuple{200, 0.1, 2}, std::tuple{500, 0.0, 3},
                      std::tuple{1000, 0.15, 4}, std::tuple{1000, 0.3, 5},
                      std::tuple{2500, 0.2, 6}));

TEST(Generators, RandomLogicDeterministicBySeed) {
  mn::RandomLogicSpec spec;
  spec.gates = 300;
  spec.seed = 42;
  const auto a = mn::make_random_logic(lib(), spec);
  const auto b = mn::make_random_logic(lib(), spec);
  ASSERT_EQ(a.instance_count(), b.instance_count());
  ASSERT_EQ(a.net_count(), b.net_count());
  for (std::size_t i = 0; i < a.instance_count(); ++i) {
    EXPECT_EQ(a.instance(static_cast<mn::InstanceId>(i)).master,
              b.instance(static_cast<mn::InstanceId>(i)).master);
  }
}

TEST(Generators, RentNetlistValidAndClustered) {
  mn::RentSpec spec;
  spec.levels = 4;
  spec.leaf_gates = 16;
  spec.seed = 9;
  const auto nl = mn::make_rent_netlist(lib(), spec);
  std::string why;
  EXPECT_TRUE(nl.validate(&why)) << why;
  const auto stats = mn::compute_stats(nl);
  // 4^(levels-1) leaves x leaf_gates.
  EXPECT_GE(stats.instances, 64u * 16u);
  EXPECT_GT(stats.flops, 0u);
}

TEST(Generators, EyechartOptimalBeatsUnitSizing) {
  const auto ec = mn::make_eyechart(lib(), 6, 120.0);
  EXPECT_TRUE(ec.netlist.validate());
  EXPECT_EQ(ec.chain.size(), 6u);
  EXPECT_EQ(ec.optimal_drives.size(), 6u);
  EXPECT_LT(ec.optimal_delay_ps, ec.unit_drive_delay_ps);
  // Geometric-sizing intuition: drives should not decrease toward the load.
  for (std::size_t i = 1; i < ec.optimal_drives.size(); ++i) {
    EXPECT_GE(ec.optimal_drives[i], ec.optimal_drives[i - 1]);
  }
}

TEST(Generators, EyechartOptimumMatchesBruteForce) {
  // 3 stages x 4 drives = 64 assignments; brute-force the optimum and check
  // the DP result matches exactly. The effective load is the pad-rounded
  // value the eyechart reports.
  const auto ec = mn::make_eyechart(lib(), 3, 80.0);
  const double load = ec.load_ff;
  const auto variants = lib().variants(mn::CellFunction::Inv);
  double best = 1e300;
  for (const auto v0 : variants) {
    for (const auto v1 : variants) {
      for (const auto v2 : variants) {
        const auto& m0 = lib().master(v0);
        const auto& m1 = lib().master(v1);
        const auto& m2 = lib().master(v2);
        const double d = m0.delay_ps(m1.input_cap_ff) + m1.delay_ps(m2.input_cap_ff) +
                         m2.delay_ps(load);
        best = std::min(best, d);
      }
    }
  }
  EXPECT_NEAR(ec.optimal_delay_ps, best, 1e-9);
}

TEST(Generators, EyechartHeavierLoadWantsBiggerFinalDrive) {
  const auto light = mn::make_eyechart(lib(), 5, 5.0);
  const auto heavy = mn::make_eyechart(lib(), 5, 400.0);
  EXPECT_GE(heavy.optimal_drives.back(), light.optimal_drives.back());
  EXPECT_GT(heavy.optimal_delay_ps, light.optimal_delay_ps);
}

TEST(Generators, CpuLikeHasCpuCharacter) {
  mn::CpuLikeSpec spec;
  spec.scale = 1;
  spec.seed = 3;
  const auto nl = mn::make_cpu_like(lib(), spec);
  EXPECT_TRUE(nl.validate());
  const auto stats = mn::compute_stats(nl);
  EXPECT_GE(stats.instances, 2500u);
  // CPU-ish flop ratio ~22%.
  const double flop_frac =
      static_cast<double>(stats.flops) / static_cast<double>(stats.instances);
  EXPECT_GT(flop_frac, 0.1);
  EXPECT_LT(flop_frac, 0.3);
  EXPECT_GT(stats.max_fanout, 8u);  // control-signal hubs
}

TEST(NetlistStats, FanoutAccounting) {
  mn::Netlist nl{lib(), "f"};
  const auto pi = nl.add_instance("pi", lib().smallest(mn::CellFunction::Input));
  const auto n = nl.add_net("n", pi);
  for (int i = 0; i < 5; ++i) {
    const auto po = nl.add_instance("po" + std::to_string(i),
                                    lib().smallest(mn::CellFunction::Output));
    nl.connect(n, po, 0);
  }
  const auto stats = mn::compute_stats(nl);
  EXPECT_EQ(stats.max_fanout, 5u);
  EXPECT_DOUBLE_EQ(stats.avg_fanout, 5.0);
}
