// Tests for maestro::obs — the observability layer: span recording, nesting
// and thread attribution, the ring buffer, Chrome-trace JSON round-trip
// through util::Json, histogram bucket boundaries, registry snapshots, the
// METRICS bridge, and the disabled-tracer overhead guard.
//
// This file builds as its own binary (maestro_obs_tests) labeled "obs" so it
// can run in isolation under -DMAESTRO_SANITIZE=thread:
//   ctest -L obs

#include <gtest/gtest.h>

#include <chrono>
#include <sstream>
#include <thread>
#include <vector>

#include "exec/executor.hpp"
#include "metrics/server.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace mo = maestro::obs;
namespace mx = maestro::exec;

namespace {

/// Installs a tracer for the test's scope and always uninstalls, so a
/// failing test can't leak an installed tracer into the next one.
struct ScopedTracer {
  explicit ScopedTracer(mo::TracerOptions opt = {}) : tracer(opt) {
    mo::Tracer::install(&tracer);
  }
  ~ScopedTracer() { mo::Tracer::uninstall(); }
  mo::Tracer tracer;
};

const mo::TraceEvent* find_event(const std::vector<mo::TraceEvent>& events,
                                 const std::string& name) {
  for (const auto& ev : events) {
    if (ev.name == name) return &ev;
  }
  return nullptr;
}

double num_arg(const mo::TraceEvent& ev, const std::string& key) {
  for (const auto& [k, v] : ev.num_args) {
    if (k == key) return v;
  }
  ADD_FAILURE() << "missing num arg " << key;
  return 0.0;
}

}  // namespace

// ---------------------------------------------------------------- tracer

TEST(Tracer, DisabledSpanRecordsNothing) {
  ASSERT_EQ(mo::Tracer::current(), nullptr);
  {
    mo::Span span("orphan", "test");
    EXPECT_FALSE(span.enabled());
    span.arg("x", 1.0);  // all no-ops
  }
  // Install afterwards: the buffer starts empty.
  ScopedTracer scoped;
  EXPECT_EQ(scoped.tracer.size(), 0u);
}

TEST(Tracer, SpanNestingAndArgs) {
  ScopedTracer scoped;
  {
    mo::Span outer("outer", "test");
    outer.arg("design", std::string("dut"));
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    {
      mo::Span inner("inner", "test");
      inner.arg("drvs", 42.0);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  const auto events = scoped.tracer.snapshot();
  ASSERT_EQ(events.size(), 2u);
  const auto* inner = find_event(events, "inner");
  const auto* outer = find_event(events, "outer");
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(outer, nullptr);
  // Inner is recorded first (destroyed first) and nests inside outer.
  EXPECT_EQ(events[0].name, "inner");
  EXPECT_GE(inner->ts_us, outer->ts_us);
  EXPECT_LE(inner->ts_us + inner->dur_us, outer->ts_us + outer->dur_us + 1.0);
  EXPECT_GT(outer->dur_us, inner->dur_us);
  EXPECT_EQ(num_arg(*inner, "drvs"), 42.0);
  ASSERT_EQ(outer->str_args.size(), 1u);
  EXPECT_EQ(outer->str_args[0].second, "dut");
}

TEST(Tracer, ThreadAttribution) {
  ScopedTracer scoped;
  {
    mo::Span main_span("on_main", "test");
  }
  std::thread worker([] { mo::Span span("on_worker", "test"); });
  worker.join();
  const auto events = scoped.tracer.snapshot();
  const auto* on_main = find_event(events, "on_main");
  const auto* on_worker = find_event(events, "on_worker");
  ASSERT_NE(on_main, nullptr);
  ASSERT_NE(on_worker, nullptr);
  EXPECT_EQ(on_main->tid, mo::Tracer::this_thread_tid());
  EXPECT_NE(on_worker->tid, on_main->tid);
}

TEST(Tracer, RingDropsOldestWhenFull) {
  ScopedTracer scoped{{.capacity = 4}};
  for (int i = 0; i < 10; ++i) {
    mo::Span span("span", "test");
    span.arg("i", static_cast<double>(i));
  }
  EXPECT_EQ(scoped.tracer.size(), 4u);
  EXPECT_EQ(scoped.tracer.dropped(), 6u);
  const auto events = scoped.tracer.snapshot();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first order: the survivors are spans 6..9.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(num_arg(events[i], "i"), static_cast<double>(6 + i));
  }
  scoped.tracer.clear();
  EXPECT_EQ(scoped.tracer.size(), 0u);
  EXPECT_EQ(scoped.tracer.dropped(), 0u);
}

TEST(Tracer, ChromeTraceJsonRoundTrip) {
  ScopedTracer scoped;
  {
    mo::Span span("route_iter", "route");
    span.arg("drvs", 17.5).arg("engine", std::string("track"));
  }
  scoped.tracer.counter("licenses", 3.0, "exec");
  scoped.tracer.instant("stop_verdict", "sched");

  const std::string json = scoped.tracer.chrome_trace_json();
  const auto parsed = maestro::util::Json::parse(json);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(parsed->is_object());
  const auto& events = parsed->at("traceEvents");
  ASSERT_TRUE(events.is_array());
  ASSERT_EQ(events.as_array().size(), 3u);

  const auto& span_ev = events.as_array()[0];
  EXPECT_EQ(span_ev.at("name").as_string(), "route_iter");
  EXPECT_EQ(span_ev.at("cat").as_string(), "route");
  EXPECT_EQ(span_ev.at("ph").as_string(), "X");
  EXPECT_GE(span_ev.at("dur").as_number(), 0.0);
  EXPECT_EQ(span_ev.at("args").at("drvs").as_number(), 17.5);
  EXPECT_EQ(span_ev.at("args").at("engine").as_string(), "track");

  const auto& counter_ev = events.as_array()[1];
  EXPECT_EQ(counter_ev.at("ph").as_string(), "C");
  EXPECT_EQ(counter_ev.at("args").at("value").as_number(), 3.0);
  EXPECT_EQ(events.as_array()[2].at("ph").as_string(), "i");
}

TEST(Tracer, CsvExportHasOneRowPerEvent) {
  ScopedTracer scoped;
  {
    mo::Span span("step", "flow");
    span.arg("runtime_min", 1.25);
  }
  scoped.tracer.counter("busy", 2.0, "exec");
  std::ostringstream os;
  scoped.tracer.export_csv(os);
  const std::string csv = os.str();
  std::size_t lines = 0;
  for (const char c : csv) lines += c == '\n' ? 1 : 0;
  EXPECT_EQ(lines, 3u);  // header + 2 events
  EXPECT_NE(csv.find("step,flow,span"), std::string::npos);
  EXPECT_NE(csv.find("runtime_min=1.25"), std::string::npos);
  EXPECT_NE(csv.find("busy,exec,counter"), std::string::npos);
}

TEST(Tracer, ExecutorRunsEmitSpansFromWorkerThreads) {
  ScopedTracer scoped;
  {
    mx::RunExecutor pool{{.threads = 2}};
    pool.map("traced", 11, 8, [](std::size_t i, mx::RunContext&) {
      return static_cast<double>(i);
    });
  }
  const auto events = scoped.tracer.snapshot();
  std::size_t runs = 0;
  for (const auto& ev : events) {
    if (ev.name == "run" && ev.category == "exec") ++runs;
  }
  EXPECT_EQ(runs, 8u);
  // licenses_in_use counter samples bracket every run.
  EXPECT_NE(find_event(events, "exec.licenses_in_use"), nullptr);
}

// -------------------------------------------------------------- registry

TEST(Registry, HistogramBucketBoundariesAreUpperInclusive) {
  mo::Histogram h{{1.0, 2.0, 4.0}};
  h.observe(0.5);   // bucket 0: x <= 1
  h.observe(1.0);   // bucket 0: boundary is inclusive
  h.observe(1.001); // bucket 1
  h.observe(4.0);   // bucket 2
  h.observe(99.0);  // overflow
  ASSERT_EQ(h.bucket_count(), 4u);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 1u);
  EXPECT_EQ(h.bucket(3), 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_NEAR(h.sum(), 0.5 + 1.0 + 1.001 + 4.0 + 99.0, 1e-9);
  // Percentiles are monotone in p and bounded by the bucket edges.
  const double p25 = h.percentile(25.0);
  const double p50 = h.percentile(50.0);
  const double p95 = h.percentile(95.0);
  EXPECT_LE(p25, p50);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, 4.0);  // overflow bucket reports its lower edge
  EXPECT_EQ(mo::Histogram{{1.0}}.percentile(50.0), 0.0);  // empty
}

TEST(Registry, InstrumentsAreStableAndSnapshotsMonotone) {
  mo::Registry reg;
  mo::Counter& c = reg.counter("exec.runs");
  c.add(3);
  EXPECT_EQ(&c, &reg.counter("exec.runs"));  // get-or-create returns the same
  reg.gauge("exec.licenses").set(2.0);
  reg.histogram("wall_ms", {10.0, 100.0}).observe(42.0);

  const mo::MetricsSnapshot s1 = reg.snapshot();
  ASSERT_EQ(s1.counters.size(), 1u);
  EXPECT_EQ(s1.counters[0].name, "exec.runs");
  EXPECT_EQ(s1.counters[0].value, 3u);
  ASSERT_EQ(s1.gauges.size(), 1u);
  EXPECT_EQ(s1.gauges[0].value, 2.0);
  ASSERT_EQ(s1.histograms.size(), 1u);
  EXPECT_EQ(s1.histograms[0].count, 1u);
  EXPECT_EQ(s1.histograms[0].counts[1], 1u);  // 42 in (10, 100]

  c.add(2);
  const mo::MetricsSnapshot s2 = reg.snapshot();
  EXPECT_GE(s2.counters[0].value, s1.counters[0].value);  // monotone
  EXPECT_EQ(s2.counters[0].value, 5u);

  const std::string report = reg.report();
  EXPECT_NE(report.find("exec.runs"), std::string::npos);
  EXPECT_NE(report.find("wall_ms"), std::string::npos);
}

TEST(Registry, ConcurrentUpdatesFromPoolWorkers) {
  mo::Registry reg;
  mo::Counter& hits = reg.counter("hits");
  mo::Histogram& h = reg.histogram("values", {0.25, 0.5, 0.75, 1.0});
  {
    mx::RunExecutor pool{{.threads = 4}};
    pool.map("update", 13, 64, [&](std::size_t i, mx::RunContext& ctx) {
      maestro::util::Rng rng{ctx.seed};
      hits.add();
      h.observe(rng.uniform(0.0, 1.0));
      return i;
    });
  }
  EXPECT_EQ(hits.value(), 64u);
  EXPECT_EQ(h.count(), 64u);
  std::uint64_t bucket_total = 0;
  for (std::size_t i = 0; i < h.bucket_count(); ++i) bucket_total += h.bucket(i);
  EXPECT_EQ(bucket_total, 64u);
}

TEST(Registry, SnapshotBridgesIntoMetricsStore) {
  mo::Registry reg;
  reg.counter("sched.mab_pulls").add(10);
  reg.gauge("exec.licenses").set(4.0);
  reg.histogram("exec.wall_ms", {10.0, 100.0, 1000.0}).observe(50.0);

  maestro::metrics::Server server;
  maestro::metrics::Transmitter tx{server};
  const std::uint64_t id = tx.transmit_snapshot(reg.snapshot(), "campaign1");
  EXPECT_GT(id, 0u);
  const auto recs = server.for_step("obs");
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0]->design, "campaign1");
  EXPECT_EQ(recs[0]->values.at("sched.mab_pulls"), 10.0);
  EXPECT_EQ(recs[0]->values.at("exec.licenses"), 4.0);
  EXPECT_EQ(recs[0]->values.at("exec.wall_ms.count"), 1.0);
  EXPECT_NEAR(recs[0]->values.at("exec.wall_ms.mean"), 50.0, 1e-9);
  EXPECT_GT(recs[0]->values.at("exec.wall_ms.p95"), 0.0);
}

// -------------------------------------------------------- overhead guard

namespace {

/// The tight loop: memory-bound splitmix scatter over a small table. The
/// body touches memory (not just registers) so sanitizer instrumentation
/// slows the baseline and the span variant alike, keeping the ratio honest.
double tight_loop(std::size_t iters, bool with_span) {
  std::vector<double> table(256, 0.0);
  std::uint64_t s = 0x9e3779b97f4a7c15ULL;
  for (std::size_t i = 0; i < iters; ++i) {
    if (with_span) {
      mo::Span span("tight", "test");
      for (int k = 0; k < 256; ++k) {
        table[maestro::util::splitmix64(s) & 255] += 1.0;
      }
    } else {
      for (int k = 0; k < 256; ++k) {
        table[maestro::util::splitmix64(s) & 255] += 1.0;
      }
    }
  }
  double acc = 0.0;
  for (const double v : table) acc += v;
  return acc;
}

double timed_seconds(std::size_t iters, bool with_span) {
  const auto t0 = std::chrono::steady_clock::now();
  volatile double sink = tight_loop(iters, with_span);
  (void)sink;
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

// TSan intercepts the Span's one atomic load with a runtime call, inflating
// its cost by a constant factor that plain builds don't pay; allow extra
// headroom there so the guard still catches regressions without flaking.
#if defined(__SANITIZE_THREAD__)
constexpr double kOverheadBar = 1.20;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
constexpr double kOverheadBar = 1.20;
#else
constexpr double kOverheadBar = 1.05;
#endif
#else
constexpr double kOverheadBar = 1.05;
#endif

}  // namespace

TEST(Overhead, DisabledTracerAddsUnderFivePercent) {
  ASSERT_EQ(mo::Tracer::current(), nullptr);
  constexpr std::size_t kIters = 20000;
  tight_loop(kIters, true);  // warm up both paths
  tight_loop(kIters, false);
  // Timing tests are noisy; trials interleave base/spanned so load drift
  // hits both sides, min-of-trials filters jitter, and the first attempt
  // under the bar (of several) passes.
  double ratio = 1e30;
  for (int attempt = 0; attempt < 5 && !(ratio <= kOverheadBar); ++attempt) {
    double base = 1e30;
    double spanned = 1e30;
    for (int t = 0; t < 7; ++t) {
      base = std::min(base, timed_seconds(kIters, false));
      spanned = std::min(spanned, timed_seconds(kIters, true));
    }
    ratio = spanned / base;
  }
  EXPECT_LE(ratio, kOverheadBar) << "disabled-tracer span overhead above the bar";
}
