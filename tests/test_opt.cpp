// Unit tests for maestro::opt — landscapes, local search, multistart
// strategies and go-with-the-winners.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "opt/gwtw.hpp"
#include "opt/landscape.hpp"
#include "opt/local_search.hpp"
#include "opt/multistart.hpp"

namespace mo = maestro::opt;
using maestro::util::Rng;

TEST(Landscape, BigValleyOptimumIsLow) {
  const mo::BigValleyLandscape f{4};
  const double at_opt = f.cost(f.optimum());
  Rng rng{1};
  for (int i = 0; i < 50; ++i) {
    EXPECT_LE(at_opt, f.cost(f.random_point(rng)) + 8.0);  // ripples allow small slack
  }
  // Far from the center the bowl dominates.
  std::vector<double> far(4, 9.5);
  EXPECT_GT(f.cost(far), at_opt + 10.0);
}

TEST(Landscape, RandomPointInBounds) {
  const mo::RastriginLandscape f{6};
  Rng rng{2};
  for (int i = 0; i < 20; ++i) {
    const auto x = f.random_point(rng);
    ASSERT_EQ(x.size(), 6u);
    for (const double v : x) {
      EXPECT_GE(v, f.lower());
      EXPECT_LT(v, f.upper());
    }
  }
}

TEST(Landscape, RastriginGlobalMinimumAtZero) {
  const mo::RastriginLandscape f{3};
  const std::vector<double> zero(3, 0.0);
  EXPECT_NEAR(f.cost(zero), 0.0, 1e-12);
  const std::vector<double> off(3, 0.5);
  EXPECT_GT(f.cost(off), 10.0);
}

TEST(LocalSearch, DescendsToLocalMinimum) {
  const mo::BigValleyLandscape f{3};
  Rng rng{3};
  const auto start = f.random_point(rng);
  const double start_cost = f.cost(start);
  const auto res = mo::local_search(f, start, mo::LocalSearchOptions{});
  EXPECT_LE(res.cost, start_cost);
  EXPECT_GT(res.evals, 1);
  // Result is (approximately) a local minimum: small coordinate moves don't
  // improve.
  for (std::size_t i = 0; i < res.x.size(); ++i) {
    for (const double d : {0.01, -0.01}) {
      auto probe = res.x;
      probe[i] = std::clamp(probe[i] + d, f.lower(), f.upper());
      EXPECT_GE(f.cost(probe), res.cost - 0.01);
    }
  }
}

TEST(LocalSearch, SaStepsRespectTemperature) {
  const mo::BigValleyLandscape f{3};
  Rng rng{5};
  const auto start = f.random_point(rng);
  const double c0 = f.cost(start);
  mo::SaStepOptions cold;
  cold.temperature = 1e-9;
  cold.steps = 300;
  const auto res = mo::sa_steps(f, start, c0, cold, rng);
  // At ~zero temperature SA is greedy: cost can only go down.
  EXPECT_LE(res.cost, c0);
}

TEST(Multistart, BestSoFarIsMonotone) {
  const mo::BigValleyLandscape f{4};
  Rng rng{7};
  mo::MultistartOptions opt;
  opt.starts = 10;
  const auto res = mo::random_multistart(f, opt, rng);
  ASSERT_EQ(res.best_so_far.size(), 10u);
  for (std::size_t i = 1; i < res.best_so_far.size(); ++i) {
    EXPECT_LE(res.best_so_far[i], res.best_so_far[i - 1]);
  }
  EXPECT_EQ(res.minima_costs.size(), 10u);
  EXPECT_GT(res.total_evals, 0);
}

TEST(Multistart, AdaptiveBeatsRandomOnBigValley) {
  // Average over several seeds: adaptive multistart exploits the big valley
  // and should win at equal start budget (paper Fig. 6(b) claim).
  const mo::BigValleyLandscape f{6, 3.0, 3.0, 11};
  mo::MultistartOptions opt;
  opt.starts = 25;
  opt.seed_starts = 5;
  // A conservative local searcher (step below the ripple period) gets
  // trapped in the nearest minimum — the regime where start-point quality,
  // and hence the adaptive bet, matters.
  opt.local.initial_step = 0.3;
  opt.perturb_frac = 0.04;
  double adaptive_total = 0.0;
  double random_total = 0.0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Rng r1{seed};
    Rng r2{seed};
    adaptive_total += mo::adaptive_multistart(f, opt, r1).best_cost;
    random_total += mo::random_multistart(f, opt, r2).best_cost;
  }
  EXPECT_LT(adaptive_total, random_total + 1e-9);
}

TEST(Multistart, AdaptiveNoAdvantageWithoutStructure) {
  // Control: on a scattered-minima landscape the adaptive bet buys little.
  // (It should not be dramatically WORSE either.)
  const mo::ScatteredMinimaLandscape f{6, 13};
  mo::MultistartOptions opt;
  opt.starts = 20;
  double adaptive_total = 0.0;
  double random_total = 0.0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Rng r1{seed};
    Rng r2{seed};
    adaptive_total += mo::adaptive_multistart(f, opt, r1).best_cost;
    random_total += mo::random_multistart(f, opt, r2).best_cost;
  }
  // Advantage (if any) should be small relative to the big-valley case.
  EXPECT_NEAR(adaptive_total, random_total, 0.5 * std::abs(random_total) + 1.0);
}

namespace {
mo::GwtwProblem<std::vector<double>> landscape_problem(const mo::Landscape& f) {
  mo::GwtwProblem<std::vector<double>> prob;
  prob.init = [&f](Rng& rng) { return f.random_point(rng); };
  prob.advance = [&f](const std::vector<double>& x, Rng& rng) {
    mo::SaStepOptions sa;
    sa.temperature = 0.5;
    sa.steps = 60;
    return mo::sa_steps(f, x, f.cost(x), sa, rng).x;
  };
  prob.cost = [&f](const std::vector<double>& x) { return f.cost(x); };
  return prob;
}
}  // namespace

TEST(Gwtw, ImprovesOverRounds) {
  const mo::BigValleyLandscape f{5};
  const auto prob = landscape_problem(f);
  mo::GwtwOptions opt;
  opt.population = 8;
  opt.rounds = 15;
  Rng rng{17};
  const auto res = mo::go_with_the_winners(prob, opt, rng);
  ASSERT_EQ(res.best_per_round.size(), 15u);
  EXPECT_LT(res.best_per_round.back(), res.best_per_round.front());
  EXPECT_GT(res.clones_made, 0u);
  EXPECT_LE(res.best_cost, res.best_per_round.back() + 1e-12);
}

TEST(Gwtw, BeatsIndependentThreadsAtEqualBudget) {
  // GWTW with cloning vs. the same population without resampling
  // (survivor_fraction = 1 disables cloning). Average over seeds.
  const mo::BigValleyLandscape f{6, 3.0, 3.0, 23};
  const auto prob = landscape_problem(f);
  mo::GwtwOptions gwtw;
  gwtw.population = 10;
  gwtw.rounds = 12;
  gwtw.survivor_fraction = 0.4;
  mo::GwtwOptions indep = gwtw;
  indep.survivor_fraction = 1.0;
  double with_clone = 0.0;
  double without_clone = 0.0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Rng r1{seed};
    Rng r2{seed};
    with_clone += mo::go_with_the_winners(prob, gwtw, r1).best_cost;
    without_clone += mo::go_with_the_winners(prob, indep, r2).best_cost;
  }
  EXPECT_LE(with_clone, without_clone + 1e-9);
}

TEST(Gwtw, SingleThreadDegeneratesGracefully) {
  const mo::RastriginLandscape f{3};
  const auto prob = landscape_problem(f);
  mo::GwtwOptions opt;
  opt.population = 1;
  opt.rounds = 5;
  Rng rng{29};
  const auto res = mo::go_with_the_winners(prob, opt, rng);
  EXPECT_EQ(res.best_per_round.size(), 5u);
  EXPECT_EQ(res.clones_made, 0u);
}

TEST(Gwtw, MeanTracksAboveBest) {
  const mo::BigValleyLandscape f{4};
  const auto prob = landscape_problem(f);
  mo::GwtwOptions opt;
  opt.population = 6;
  opt.rounds = 8;
  Rng rng{31};
  const auto res = mo::go_with_the_winners(prob, opt, rng);
  for (std::size_t r = 0; r < res.best_per_round.size(); ++r) {
    EXPECT_GE(res.mean_per_round[r], res.best_per_round[r] - 1e-12);
  }
}
