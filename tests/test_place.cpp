// Unit tests for maestro::place — floorplanning, placement quality,
// legalization invariants, congestion estimation and FM partitioning.

#include <gtest/gtest.h>

#include <set>

#include "netlist/generators.hpp"
#include "place/partition.hpp"
#include "place/placer.hpp"

namespace mn = maestro::netlist;
namespace mp = maestro::place;
using maestro::util::Rng;

namespace {
const mn::CellLibrary& lib() {
  static const mn::CellLibrary l = mn::make_default_library();
  return l;
}

mn::Netlist small_design(std::uint64_t seed = 1, std::size_t gates = 400) {
  mn::RandomLogicSpec spec;
  spec.gates = gates;
  spec.seed = seed;
  return mn::make_random_logic(lib(), spec);
}
}  // namespace

TEST(Floorplan, CoreSizedForUtilization) {
  const auto nl = small_design();
  const auto fp = mp::Floorplan::for_netlist(nl, 0.7);
  const double cell_area_nm2 = nl.total_area_um2() * 1e6;
  const double core_area = static_cast<double>(fp.core().area());
  // Core fits the cells at the target utilization (within rounding).
  EXPECT_GE(core_area, cell_area_nm2 / 0.7 * 0.95);
  EXPECT_LE(core_area, cell_area_nm2 / 0.7 * 1.15);
  EXPECT_FALSE(fp.rows().empty());
  // Rows tile the core height exactly.
  EXPECT_EQ(static_cast<maestro::geom::Dbu>(fp.rows().size()) * fp.rows()[0].height,
            fp.core().height());
}

TEST(Floorplan, AspectRatioRespected) {
  const auto nl = small_design();
  const auto wide = mp::Floorplan::for_netlist(nl, 0.7, 0.5);
  const auto tall = mp::Floorplan::for_netlist(nl, 0.7, 2.0);
  EXPECT_GT(wide.core().width(), wide.core().height());
  EXPECT_LT(tall.core().width(), tall.core().height());
}

TEST(Floorplan, SnapProducesLegalSites) {
  const auto nl = small_design();
  const auto fp = mp::Floorplan::for_netlist(nl, 0.7);
  const auto p = fp.snap({12345, 67890});
  EXPECT_EQ((p.x - fp.core().lo.x) % fp.site_width(), 0);
  // Snapped y is a row origin.
  bool on_row = false;
  for (const auto& r : fp.rows()) on_row = on_row || r.y == p.y;
  EXPECT_TRUE(on_row);
}

TEST(Floorplan, IoPinsOnBoundary) {
  const auto nl = small_design();
  const auto fp = mp::Floorplan::for_netlist(nl, 0.7);
  for (std::size_t i = 0; i < 40; ++i) {
    const auto p = fp.io_pin_location(i, 40);
    const bool on_edge = p.x == fp.core().lo.x || p.x == fp.core().hi.x ||
                         p.y == fp.core().lo.y || p.y == fp.core().hi.y;
    EXPECT_TRUE(on_edge) << "pin " << i << " at (" << p.x << "," << p.y << ")";
  }
}

TEST(Placement, RandomPlacementInsideCore) {
  const auto nl = small_design();
  const auto fp = mp::Floorplan::for_netlist(nl, 0.7);
  Rng rng{5};
  const auto pl = mp::random_placement(nl, fp, rng);
  for (std::size_t i = 0; i < nl.instance_count(); ++i) {
    const auto id = static_cast<mn::InstanceId>(i);
    const auto p = pl.loc(id);
    EXPECT_GE(p.x, fp.core().lo.x);
    EXPECT_LE(p.x, fp.core().hi.x);
    EXPECT_GE(p.y, fp.core().lo.y);
    EXPECT_LE(p.y, fp.core().hi.y);
  }
  EXPECT_GT(pl.total_hpwl(), 0);
}

TEST(Placement, NetHpwlMatchesManual) {
  const auto nl = small_design();
  const auto fp = mp::Floorplan::for_netlist(nl, 0.7);
  Rng rng{5};
  const auto pl = mp::random_placement(nl, fp, rng);
  // Sum of per-net HPWL equals total.
  std::int64_t total = 0;
  for (std::size_t n = 0; n < nl.net_count(); ++n) {
    total += pl.net_hpwl(static_cast<mn::NetId>(n));
  }
  EXPECT_EQ(total, pl.total_hpwl());
}

TEST(Placer, AnnealingImprovesHpwl) {
  const auto nl = small_design(3);
  const auto fp = mp::Floorplan::for_netlist(nl, 0.7);
  Rng rng{7};
  auto pl = mp::random_placement(nl, fp, rng);
  mp::AnnealOptions opt;
  opt.moves_per_cell = 30.0;
  const auto res = mp::anneal_placement(pl, opt, rng);
  EXPECT_LT(res.final_hpwl, res.initial_hpwl);
  // Meaningful improvement, not epsilon.
  EXPECT_LT(static_cast<double>(res.final_hpwl),
            0.8 * static_cast<double>(res.initial_hpwl));
  EXPECT_GT(res.moves_accepted, 0u);
  EXPECT_EQ(res.moves_attempted,
            static_cast<std::size_t>(opt.moves_per_cell * static_cast<double>(
                nl.instance_count() - nl.primary_inputs().size() - nl.primary_outputs().size())));
}

TEST(Placer, MoreEffortNoWorse) {
  const auto nl = small_design(11);
  const auto fp = mp::Floorplan::for_netlist(nl, 0.7);
  std::int64_t hpwl_low = 0;
  std::int64_t hpwl_high = 0;
  {
    Rng rng{13};
    auto pl = mp::random_placement(nl, fp, rng);
    mp::AnnealOptions opt;
    opt.moves_per_cell = 5.0;
    mp::anneal_placement(pl, opt, rng);
    hpwl_low = pl.total_hpwl();
  }
  {
    Rng rng{13};
    auto pl = mp::random_placement(nl, fp, rng);
    mp::AnnealOptions opt;
    opt.moves_per_cell = 60.0;
    mp::anneal_placement(pl, opt, rng);
    hpwl_high = pl.total_hpwl();
  }
  EXPECT_LE(hpwl_high, hpwl_low);
}

class LegalizeProperty : public ::testing::TestWithParam<std::tuple<double, std::uint64_t>> {};

TEST_P(LegalizeProperty, NoOverlapsAtAnyUtilization) {
  const auto [util, seed] = GetParam();
  const auto nl = small_design(seed);
  const auto fp = mp::Floorplan::for_netlist(nl, util);
  Rng rng{seed};
  auto pl = mp::random_placement(nl, fp, rng);
  mp::AnnealOptions opt;
  opt.moves_per_cell = 10.0;
  mp::anneal_placement(pl, opt, rng);
  mp::legalize(pl);
  const auto rep = mp::check_overlaps(pl);
  EXPECT_TRUE(rep.legal()) << rep.overlapping_pairs << " overlapping pairs, total "
                           << rep.total_overlap;
  // All cells on row origins and site grid.
  for (std::size_t i = 0; i < nl.instance_count(); ++i) {
    const auto id = static_cast<mn::InstanceId>(i);
    const auto f = nl.master_of(id).function;
    if (f == mn::CellFunction::Input || f == mn::CellFunction::Output) continue;
    EXPECT_EQ((pl.loc(id).x - fp.core().lo.x) % fp.site_width(), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(UtilSweep, LegalizeProperty,
                         ::testing::Values(std::tuple{0.5, 1}, std::tuple{0.7, 2},
                                           std::tuple{0.8, 3}, std::tuple{0.9, 4},
                                           std::tuple{0.95, 5}));

TEST(Congestion, HigherUtilizationMoreOverflow) {
  const auto nl = small_design(19, 800);
  Rng rng{19};
  // Loose floorplan.
  const auto fp_loose = mp::Floorplan::for_netlist(nl, 0.5);
  auto pl_loose = mp::random_placement(nl, fp_loose, rng);
  mp::legalize(pl_loose);
  const auto cm_loose = mp::estimate_congestion(pl_loose, 16, 16);
  // Tight floorplan -> same wire demand in less area -> denser bins.
  const auto fp_tight = mp::Floorplan::for_netlist(nl, 0.95);
  auto pl_tight = mp::random_placement(nl, fp_tight, rng);
  mp::legalize(pl_tight);
  const auto cm_tight = mp::estimate_congestion(pl_tight, 16, 16);
  EXPECT_GT(cm_tight.avg_utilization, cm_loose.avg_utilization);
}

TEST(Congestion, MapShapesAndTotals) {
  const auto nl = small_design(23);
  const auto fp = mp::Floorplan::for_netlist(nl, 0.7);
  Rng rng{23};
  auto pl = mp::random_placement(nl, fp, rng);
  const auto cm = mp::estimate_congestion(pl, 8, 12);
  EXPECT_EQ(cm.demand.cols(), 8u);
  EXPECT_EQ(cm.demand.rows(), 12u);
  double sum = 0.0;
  for (const double d : cm.demand.flat()) sum += d;
  EXPECT_GT(sum, 0.0);
  EXPECT_GE(cm.max_overflow, 0.0);
  EXPECT_GE(cm.overflow_fraction, 0.0);
  EXPECT_LE(cm.overflow_fraction, 1.0);
}

TEST(Partition, BipartitionBalancedAndBetterThanRandom) {
  const auto nl = small_design(29, 600);
  Rng rng{29};
  mp::FmOptions opt;
  const auto res = mp::fm_bipartition(nl, opt, rng);
  ASSERT_EQ(res.part.size(), nl.instance_count());
  // Balance by area within tolerance.
  double a0 = 0.0;
  double a1 = 0.0;
  for (std::size_t i = 0; i < nl.instance_count(); ++i) {
    const double a = nl.master_of(static_cast<mn::InstanceId>(i)).area_um2;
    (res.part[i] == 0 ? a0 : a1) += a;
  }
  const double total = a0 + a1;
  EXPECT_LE(std::abs(a0 - a1) / total, 2.1 * opt.balance_tolerance + 0.05);

  // FM cut must beat the expected random cut by a wide margin.
  Rng rng2{31};
  std::vector<int> random_part(nl.instance_count());
  for (auto& p : random_part) p = rng2.chance(0.5) ? 1 : 0;
  const auto random_cut = mp::count_cut_nets(nl, random_part);
  EXPECT_LT(res.cut_nets, random_cut / 2);
}

TEST(Partition, RecursiveBisectionBlockCount) {
  const auto nl = small_design(37, 600);
  Rng rng{37};
  mp::FmOptions opt;
  for (const std::size_t k : {2u, 4u, 8u}) {
    const auto res = mp::recursive_bisection(nl, k, opt, rng);
    EXPECT_EQ(res.blocks, k);
    std::set<int> used(res.part.begin(), res.part.end());
    EXPECT_GT(used.size(), k / 2);  // most blocks populated
    EXPECT_LE(used.size(), k);
    for (const int b : used) {
      EXPECT_GE(b, 0);
      EXPECT_LT(b, static_cast<int>(k));
    }
  }
}

TEST(Partition, MoreBlocksMoreCut) {
  const auto nl = small_design(41, 800);
  Rng rng{41};
  mp::FmOptions opt;
  const auto cut2 = mp::recursive_bisection(nl, 2, opt, rng).cut_nets;
  const auto cut8 = mp::recursive_bisection(nl, 8, opt, rng).cut_nets;
  EXPECT_GT(cut8, cut2);
}

TEST(Partition, SingleBlockNoCut) {
  const auto nl = small_design(43, 200);
  Rng rng{43};
  const auto res = mp::recursive_bisection(nl, 1, mp::FmOptions{}, rng);
  EXPECT_EQ(res.blocks, 1u);
  EXPECT_EQ(res.cut_nets, 0u);
}
