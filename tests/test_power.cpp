// Unit tests for maestro::power — power estimation scaling laws and the
// IR-drop grid solver.

#include <gtest/gtest.h>

#include <memory>

#include "netlist/generators.hpp"
#include "place/placer.hpp"
#include "power/ir_drop.hpp"
#include "power/power.hpp"

namespace mn = maestro::netlist;
namespace mp = maestro::place;
namespace mw = maestro::power;
using maestro::util::Rng;

namespace {
const mn::CellLibrary& lib() {
  static const mn::CellLibrary l = mn::make_default_library();
  return l;
}

struct Fixture {
  std::unique_ptr<mn::Netlist> nl;
  std::unique_ptr<mp::Floorplan> fp;
  std::unique_ptr<mp::Placement> pl;
};

Fixture make_fixture(std::uint64_t seed, std::size_t gates = 400) {
  Fixture f;
  mn::RandomLogicSpec spec;
  spec.gates = gates;
  spec.seed = seed;
  f.nl = std::make_unique<mn::Netlist>(mn::make_random_logic(lib(), spec));
  f.fp = std::make_unique<mp::Floorplan>(mp::Floorplan::for_netlist(*f.nl, 0.7));
  Rng rng{seed};
  f.pl = std::make_unique<mp::Placement>(mp::random_placement(*f.nl, *f.fp, rng));
  mp::legalize(*f.pl);
  return f;
}
}  // namespace

TEST(Power, ComponentsPositive) {
  const auto f = make_fixture(1);
  const auto rep = mw::estimate_power(*f.pl, 1.0, mw::PowerOptions{});
  EXPECT_GT(rep.switching_mw, 0.0);
  EXPECT_GT(rep.leakage_mw, 0.0);
  EXPECT_GT(rep.clock_mw, 0.0);
  EXPECT_NEAR(rep.total_mw(), rep.switching_mw + rep.leakage_mw + rep.clock_mw, 1e-12);
}

TEST(Power, SwitchingScalesLinearlyWithFrequency) {
  const auto f = make_fixture(2);
  const auto at1 = mw::estimate_power(*f.pl, 1.0, mw::PowerOptions{});
  const auto at2 = mw::estimate_power(*f.pl, 2.0, mw::PowerOptions{});
  EXPECT_NEAR(at2.switching_mw, 2.0 * at1.switching_mw, 1e-9);
  EXPECT_NEAR(at2.clock_mw, 2.0 * at1.clock_mw, 1e-9);
  // Leakage is frequency independent.
  EXPECT_NEAR(at2.leakage_mw, at1.leakage_mw, 1e-12);
}

TEST(Power, ScalesWithVddSquared) {
  const auto f = make_fixture(3);
  mw::PowerOptions lo;
  lo.vdd_v = 0.6;
  mw::PowerOptions hi;
  hi.vdd_v = 1.2;
  const auto p_lo = mw::estimate_power(*f.pl, 1.0, lo);
  const auto p_hi = mw::estimate_power(*f.pl, 1.0, hi);
  EXPECT_NEAR(p_hi.switching_mw / p_lo.switching_mw, 4.0, 1e-9);
}

TEST(Power, BiggerDesignMorePower) {
  const auto small = make_fixture(4, 200);
  const auto big = make_fixture(4, 1000);
  const auto p_small = mw::estimate_power(*small.pl, 1.0, mw::PowerOptions{});
  const auto p_big = mw::estimate_power(*big.pl, 1.0, mw::PowerOptions{});
  EXPECT_GT(p_big.total_mw(), 2.0 * p_small.total_mw());
}

TEST(IrDrop, SolverConvergesAndBounded) {
  const auto f = make_fixture(5);
  const auto pwr = mw::estimate_power(*f.pl, 1.5, mw::PowerOptions{});
  mw::IrDropOptions opt;
  const auto rep = mw::analyze_ir_drop(*f.pl, pwr, opt);
  EXPECT_TRUE(rep.converged);
  EXPECT_GT(rep.worst_drop_v, 0.0);
  EXPECT_LT(rep.worst_drop_v, opt.vdd_v);
  EXPECT_LE(rep.avg_drop_v, rep.worst_drop_v);
  // All node voltages within [0, vdd].
  for (const double v : rep.voltage.flat()) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, opt.vdd_v + 1e-12);
  }
}

TEST(IrDrop, MorePowerMoreDrop) {
  const auto f = make_fixture(6);
  mw::PowerReport p1;
  p1.switching_mw = 5.0;
  mw::PowerReport p2;
  p2.switching_mw = 50.0;
  mw::IrDropOptions opt;
  const auto r1 = mw::analyze_ir_drop(*f.pl, p1, opt);
  const auto r2 = mw::analyze_ir_drop(*f.pl, p2, opt);
  EXPECT_GT(r2.worst_drop_v, r1.worst_drop_v);
  // Linear system: 10x current -> ~10x drop.
  EXPECT_NEAR(r2.worst_drop_v / r1.worst_drop_v, 10.0, 0.5);
}

TEST(IrDrop, MorePadsLessDrop) {
  const auto f = make_fixture(7);
  const auto pwr = mw::estimate_power(*f.pl, 1.5, mw::PowerOptions{});
  mw::IrDropOptions sparse;
  sparse.pad_every = 16;
  mw::IrDropOptions dense;
  dense.pad_every = 2;
  const auto r_sparse = mw::analyze_ir_drop(*f.pl, pwr, sparse);
  const auto r_dense = mw::analyze_ir_drop(*f.pl, pwr, dense);
  EXPECT_LT(r_dense.worst_drop_v, r_sparse.worst_drop_v);
}

TEST(IrDrop, TimingDerateAboveOne) {
  mw::IrDropReport rep;
  rep.worst_drop_v = 0.04;
  EXPECT_GT(rep.timing_derate(0.8), 1.0);
  EXPECT_NEAR(rep.timing_derate(0.8), 1.1, 1e-9);
  rep.worst_drop_v = 0.0;
  EXPECT_DOUBLE_EQ(rep.timing_derate(0.8), 1.0);
}
