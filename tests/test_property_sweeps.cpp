// Parameterized property sweeps across modules: invariants that must hold
// for every seed / corner / configuration, not just the fixtures unit tests
// happen to pick.

#include <gtest/gtest.h>

#include <memory>

#include "flow/flow.hpp"
#include "netlist/generators.hpp"
#include "netlist/io.hpp"
#include "place/placer.hpp"
#include "timing/sta.hpp"
#include "util/json.hpp"

namespace mf = maestro::flow;
namespace mn = maestro::netlist;
namespace mp = maestro::place;
namespace mt = maestro::timing;
namespace mu = maestro::util;
using maestro::util::Rng;

namespace {
const mn::CellLibrary& lib() {
  static const mn::CellLibrary l = mn::make_default_library();
  return l;
}
}  // namespace

// ---- STA invariants hold at every corner, both engines, several seeds ----

class StaCornerProperty
    : public ::testing::TestWithParam<std::tuple<std::string, int, std::uint64_t>> {};

TEST_P(StaCornerProperty, SlacksWellFormed) {
  const auto [corner_name, mode, seed] = GetParam();
  mn::RandomLogicSpec spec;
  spec.gates = 250;
  spec.seed = seed;
  const auto nl = mn::make_random_logic(lib(), spec);
  const auto fp = mp::Floorplan::for_netlist(nl, 0.7);
  Rng rng{seed};
  auto pl = mp::random_placement(nl, fp, rng);
  mp::legalize(pl);
  const auto clock = mt::build_clock_tree(pl, mt::ClockTreeOptions{}, rng);

  mt::StaOptions opt;
  opt.mode = mode == 0 ? mt::AnalysisMode::GraphBased : mt::AnalysisMode::PathBased;
  opt.corner = mt::corner_by_name(corner_name);
  opt.with_hold = true;
  opt.clock_period_ps = 800.0;
  const auto rep = mt::run_sta(pl, clock, opt);

  // Invariants: every endpoint has slack = required - arrival; WNS is the
  // minimum; TNS sums exactly the negative slacks; arrivals positive.
  double min_slack = 1e300;
  double tns = 0.0;
  for (const auto& ep : rep.endpoints) {
    EXPECT_NEAR(ep.slack_ps, ep.required_ps - ep.arrival_ps, 1e-9);
    EXPECT_GT(ep.arrival_ps, 0.0);
    min_slack = std::min(min_slack, ep.slack_ps);
    if (ep.slack_ps < 0) tns += ep.slack_ps;
  }
  EXPECT_NEAR(rep.wns_ps, min_slack, 1e-9);
  EXPECT_NEAR(rep.tns_ps, tns, 1e-9);
  EXPECT_GT(rep.analysis_cost, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    CornersEnginesSeeds, StaCornerProperty,
    ::testing::Combine(::testing::Values("ss", "tt", "ff"), ::testing::Values(0, 1),
                       ::testing::Values(11u, 12u)));

// ---- Corner ordering: ss <= tt <= ff slack at EVERY endpoint ----

class CornerOrderProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CornerOrderProperty, SlackMonotoneAcrossCorners) {
  const auto seed = GetParam();
  mn::RandomLogicSpec spec;
  spec.gates = 200;
  spec.seed = seed;
  const auto nl = mn::make_random_logic(lib(), spec);
  const auto fp = mp::Floorplan::for_netlist(nl, 0.7);
  Rng rng{seed};
  auto pl = mp::random_placement(nl, fp, rng);
  mp::legalize(pl);

  std::map<std::string, mt::StaReport> reports;
  for (const auto& corner : mt::standard_corners()) {
    mt::StaOptions opt;
    opt.mode = mt::AnalysisMode::PathBased;
    opt.corner = corner;
    reports[corner.name] = mt::run_sta(pl, mt::ClockTree{}, opt);
  }
  for (const auto& ep : reports["ss"].endpoints) {
    const auto* tt = reports["tt"].endpoint_of(ep.endpoint);
    const auto* ff = reports["ff"].endpoint_of(ep.endpoint);
    ASSERT_NE(tt, nullptr);
    ASSERT_NE(ff, nullptr);
    EXPECT_LE(ep.slack_ps, tt->slack_ps + 1e-9);
    EXPECT_LE(tt->slack_ps, ff->slack_ps + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CornerOrderProperty, ::testing::Values(1, 2, 3, 4));

// ---- Netlist I/O round-trip is lossless for every generator ----

class NetlistIoProperty : public ::testing::TestWithParam<int> {};

TEST_P(NetlistIoProperty, RoundTripAllGenerators) {
  mn::Netlist nl = [&] {
    switch (GetParam()) {
      case 0: return mn::make_chain(lib(), 12);
      case 1: {
        mn::RandomLogicSpec s;
        s.gates = 350;
        s.seed = 5;
        return mn::make_random_logic(lib(), s);
      }
      case 2: {
        mn::RentSpec s;
        s.levels = 3;
        s.seed = 5;
        return mn::make_rent_netlist(lib(), s);
      }
      default: return mn::make_eyechart(lib(), 6, 90.0).netlist;
    }
  }();
  const auto text = mn::write_netlist(nl);
  const auto back = mn::read_netlist(lib(), text);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->instance_count(), nl.instance_count());
  EXPECT_EQ(back->net_count(), nl.net_count());
  EXPECT_EQ(mn::write_netlist(*back), text);
  EXPECT_TRUE(back->validate());
}

INSTANTIATE_TEST_SUITE_P(Generators, NetlistIoProperty, ::testing::Values(0, 1, 2, 3));

// ---- Flow success is monotone-ish in target frequency per seed ----

class FlowFrequencyProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FlowFrequencyProperty, HarderTargetsNeverIncreaseSlack) {
  const auto seed = GetParam();
  mf::FlowManager fm{lib()};
  auto run_at = [&](double ghz) {
    mf::FlowRecipe r;
    r.design.kind = mf::DesignSpec::Kind::RandomLogic;
    r.design.scale = 1;
    r.design.name = "sweep";
    r.target_ghz = ghz;
    r.seed = seed;
    return fm.run(r);
  };
  const auto easy = run_at(0.6);
  const auto hard = run_at(1.8);
  // Same seed, same netlist: the tighter clock can only reduce slack.
  EXPECT_GT(easy.wns_ps, hard.wns_ps);
  // Area never shrinks when the tool works harder.
  EXPECT_GE(hard.area_um2, easy.area_um2 - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlowFrequencyProperty, ::testing::Values(101, 102, 103));

// ---- JSON round-trips survive adversarial content ----

class JsonRoundTripProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(JsonRoundTripProperty, RandomToolLogsRoundTrip) {
  Rng rng{GetParam()};
  mu::ToolLog log;
  log.tool = "t\"\\\n" + std::to_string(rng.next());
  log.design = "d\tname";
  log.seed = rng.next();
  log.completed = rng.chance(0.5);
  const int n_meta = static_cast<int>(rng.below(6));
  for (int i = 0; i < n_meta; ++i) {
    log.metadata["k" + std::to_string(i)] = std::string(1, static_cast<char>(rng.range(32, 126)));
  }
  const int n_iters = static_cast<int>(rng.below(10));
  for (int i = 0; i < n_iters; ++i) {
    mu::LogIteration it;
    it.iteration = i;
    it.values["v"] = rng.gauss(0, 1e6);
    it.values["w"] = rng.uniform(-1e-9, 1e-9);
    log.iterations.push_back(it);
  }
  const auto text = log.to_json().dump();
  const auto parsed = mu::Json::parse(text);
  ASSERT_TRUE(parsed.has_value());
  const auto back = mu::ToolLog::from_json(*parsed);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->tool, log.tool);
  EXPECT_EQ(back->design, log.design);
  EXPECT_EQ(back->seed, log.seed);
  EXPECT_EQ(back->metadata, log.metadata);
  ASSERT_EQ(back->iterations.size(), log.iterations.size());
  for (std::size_t i = 0; i < log.iterations.size(); ++i) {
    for (const auto& [k, v] : log.iterations[i].values) {
      EXPECT_DOUBLE_EQ(back->iterations[i].values.at(k), v);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsonRoundTripProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));
