// Tests for timing path reports (report_timing) and the hold-fix ECO.

#include <gtest/gtest.h>

#include <memory>

#include "core/eco.hpp"
#include "flow/flow.hpp"
#include "netlist/generators.hpp"
#include "place/placer.hpp"
#include "timing/report.hpp"

namespace mc = maestro::core;
namespace mf = maestro::flow;
namespace mn = maestro::netlist;
namespace mp = maestro::place;
namespace mt = maestro::timing;
using maestro::util::Rng;

namespace {
const mn::CellLibrary& lib() {
  static const mn::CellLibrary l = mn::make_default_library();
  return l;
}

struct Fx {
  std::unique_ptr<mn::Netlist> nl;
  std::unique_ptr<mp::Floorplan> fp;
  std::unique_ptr<mp::Placement> pl;
  mt::ClockTree clock;
};

Fx fixture(std::uint64_t seed, std::size_t gates = 400) {
  Fx f;
  mn::RandomLogicSpec spec;
  spec.gates = gates;
  spec.flop_ratio = 0.2;
  spec.seed = seed;
  f.nl = std::make_unique<mn::Netlist>(mn::make_random_logic(lib(), spec));
  f.fp = std::make_unique<mp::Floorplan>(mp::Floorplan::for_netlist(*f.nl, 0.7));
  Rng rng{seed};
  f.pl = std::make_unique<mp::Placement>(mp::random_placement(*f.nl, *f.fp, rng));
  mp::legalize(*f.pl);
  f.clock = mt::build_clock_tree(*f.pl, mt::ClockTreeOptions{}, rng);
  return f;
}
}  // namespace

// ------------------------------------------------------------ report_timing

TEST(ReportTiming, WorstPathMatchesStaReport) {
  const auto f = fixture(1);
  mt::StaOptions opt;
  opt.clock_period_ps = 700.0;
  const auto rep = mt::run_sta(*f.pl, f.clock, opt);
  const auto paths = mt::report_timing(*f.pl, f.clock, opt, 5);
  ASSERT_EQ(paths.size(), 5u);
  // Paths sorted worst-first; the first matches the report's WNS endpoint.
  EXPECT_NEAR(paths[0].slack_ps, rep.wns_ps, 1e-9);
  for (std::size_t i = 1; i < paths.size(); ++i) {
    EXPECT_GE(paths[i].slack_ps, paths[i - 1].slack_ps - 1e-9);
  }
}

TEST(ReportTiming, StagesAreConsistent) {
  const auto f = fixture(2);
  mt::StaOptions opt;
  const auto paths = mt::report_timing(*f.pl, f.clock, opt, 3);
  for (const auto& p : paths) {
    ASSERT_GE(p.stages.size(), 2u);
    // Path starts at a source (input or flop), ends at the endpoint.
    const auto first_f = f.nl->master_of(p.stages.front().instance).function;
    EXPECT_TRUE(first_f == mn::CellFunction::Input || first_f == mn::CellFunction::Dff);
    EXPECT_EQ(p.stages.back().instance, p.endpoint);
    // Increments sum to the endpoint arrival; arrivals are nondecreasing.
    double sum = 0.0;
    double prev = -1e300;
    for (const auto& s : p.stages) {
      sum += s.incr_ps;
      EXPECT_GE(s.arrival_ps, prev - 1e-9);
      prev = s.arrival_ps;
    }
    EXPECT_NEAR(sum, p.arrival_ps, 1e-6);
  }
}

TEST(ReportTiming, FormatsReadably) {
  const auto f = fixture(3);
  mt::StaOptions opt;
  const auto paths = mt::report_timing(*f.pl, f.clock, opt, 1);
  ASSERT_EQ(paths.size(), 1u);
  const std::string text = mt::format_path(paths[0], *f.nl);
  EXPECT_NE(text.find("Endpoint:"), std::string::npos);
  EXPECT_NE(text.find("slack"), std::string::npos);
  EXPECT_NE(text.find("arrival"), std::string::npos);
  // One line per stage.
  EXPECT_GE(std::count(text.begin(), text.end(), '\n'), static_cast<long>(paths[0].stages.size()));
}

TEST(ReportTiming, GbaPathsSlowerThanPba) {
  const auto f = fixture(4);
  mt::StaOptions gba;
  gba.mode = mt::AnalysisMode::GraphBased;
  mt::StaOptions pba;
  pba.mode = mt::AnalysisMode::PathBased;
  const auto g = mt::report_timing(*f.pl, f.clock, gba, 1);
  const auto p = mt::report_timing(*f.pl, f.clock, pba, 1);
  ASSERT_FALSE(g.empty());
  ASSERT_FALSE(p.empty());
  EXPECT_GE(g[0].arrival_ps, p[0].arrival_ps - 1e-9);
}

// ------------------------------------------------------------- hold ECO

TEST(HoldEco, FixesManufacturedViolations) {
  mf::DesignState state;
  state.lib = &lib();
  {
    auto f = fixture(5, 300);
    state.nl = std::move(f.nl);
    state.fp = std::move(f.fp);
    state.pl = std::move(f.pl);
  }
  // Build the skewed clock against the actual state.
  mt::ClockTree clock;
  clock.insertion_ps.assign(state.nl->instance_count(), 0.0);
  const auto flops = state.nl->flops();
  for (std::size_t i = 0; i < flops.size(); ++i) {
    clock.insertion_ps[flops[i]] = (i % 2 == 0) ? 120.0 : 0.0;
  }
  clock.max_insertion_ps = 120.0;
  state.clock = clock;

  mt::StaOptions sta;
  sta.mode = mt::AnalysisMode::PathBased;
  sta.clock_period_ps = 2000.0;  // relaxed setup so hold dominates
  sta.with_hold = true;
  const auto before = mt::run_sta(*state.pl, state.clock, sta);
  ASSERT_GT(before.hold_violations, 0u) << "fixture failed to create violations";

  const auto res = mc::fix_hold(state, sta);
  EXPECT_GT(res.buffers_added, 0u);
  EXPECT_GT(res.whs_after_ps, res.whs_before_ps);
  const auto after = mt::run_sta(*state.pl, state.clock, sta);
  EXPECT_LT(after.hold_violations, before.hold_violations);
  // Setup must survive (relaxed clock: still positive).
  EXPECT_GT(res.wns_after_ps, 0.0);
  // Netlist still valid after the surgery.
  std::string why;
  EXPECT_TRUE(state.nl->validate(&why)) << why;
}

TEST(HoldEco, NoOpOnCleanDesign) {
  mf::DesignState state;
  state.lib = &lib();
  {
    auto f = fixture(7, 300);
    state.nl = std::move(f.nl);
    state.fp = std::move(f.fp);
    state.pl = std::move(f.pl);
    state.clock = mt::ClockTree{};  // ideal clock: no skew, no violations
  }
  mt::StaOptions sta;
  sta.clock_period_ps = 2000.0;
  const std::size_t before_count = state.nl->instance_count();
  const auto res = mc::fix_hold(state, sta);
  EXPECT_EQ(res.buffers_added, 0u);
  EXPECT_EQ(state.nl->instance_count(), before_count);
  EXPECT_DOUBLE_EQ(res.whs_after_ps, res.whs_before_ps);
}

TEST(HoldEco, RespectsBufferBudget) {
  mf::DesignState state;
  state.lib = &lib();
  {
    auto f = fixture(9, 300);
    state.nl = std::move(f.nl);
    state.fp = std::move(f.fp);
    state.pl = std::move(f.pl);
  }
  mt::ClockTree clock;
  clock.insertion_ps.assign(state.nl->instance_count(), 0.0);
  for (const auto ff : state.nl->flops()) clock.insertion_ps[ff] = 400.0;  // extreme
  clock.max_insertion_ps = 400.0;
  // Leave half the flops at 0 to create massive skew.
  const auto flops = state.nl->flops();
  for (std::size_t i = 0; i < flops.size(); i += 2) clock.insertion_ps[flops[i]] = 0.0;
  state.clock = clock;

  mt::StaOptions sta;
  sta.clock_period_ps = 3000.0;
  sta.with_hold = true;
  mc::HoldFixOptions opt;
  opt.max_total_buffers = 10;
  const auto res = mc::fix_hold(state, sta, opt);
  EXPECT_LE(res.buffers_added, 10u);
}
