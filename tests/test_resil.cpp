// maestro::resil — fault injection, retry/hedging and failure-aware
// orchestration (ctest label "resil"; clean under -DMAESTRO_SANITIZE=thread).
//
// The contract under test: every injected fault is a pure function of
// (plan seed, site, run seed), so chaos campaigns replay bitwise-identically
// at any thread count; retries, hedges and deadlines never leak licenses or
// double-settle futures; and schedulers degrade gracefully — censored
// samples, cooled-down arms, dead branches, partial fleets — instead of
// aborting.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>

#include "core/flow_search.hpp"
#include "core/mab_scheduler.hpp"
#include "core/robot_engineer.hpp"
#include "exec/executor.hpp"
#include "flow/flow.hpp"
#include "obs/registry.hpp"
#include "opt/gwtw.hpp"
#include "resil/circuit.hpp"
#include "resil/fault.hpp"
#include "resil/retry.hpp"
#include "store/run_store.hpp"

namespace {

using namespace maestro;
using namespace std::chrono_literals;

/// Clears the process-global fault plan when a test scope exits, so one
/// test's chaos never leaks into the next.
struct FaultGuard {
  ~FaultGuard() { resil::FaultInjector::clear(); }
};

std::uint64_t counter_value(const char* name) {
  return obs::Registry::global().counter(name).value();
}

/// Poll `pred` for up to two seconds (terminal journal states lag the
/// future's resolution by one worker step).
template <typename Pred>
bool eventually(Pred pred) {
  for (int i = 0; i < 2000; ++i) {
    if (pred()) return true;
    std::this_thread::sleep_for(1ms);
  }
  return pred();
}

// ---------------------------------------------------------------------------
// FaultPlan / FaultInjector

TEST(FaultPlan, DecideIsPureAndSeedDerived) {
  resil::FaultRates rates;
  rates.crash = 0.2;
  rates.hang = 0.05;
  const resil::FaultPlan plan{rates, 7};

  // Pure: the same (site, run seed) always reproduces the same decision.
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    EXPECT_EQ(plan.decide("route", seed), plan.decide("route", seed));
  }
  // The rates are respected in aggregate and sites are decorrelated.
  std::size_t crashes = 0;
  std::size_t site_diffs = 0;
  const std::size_t n = 4000;
  for (std::uint64_t seed = 0; seed < n; ++seed) {
    const auto a = plan.decide("synthesis", seed);
    if (a == resil::FaultKind::Crash) ++crashes;
    if (a != plan.decide("signoff", seed)) ++site_diffs;
  }
  const double crash_rate = static_cast<double>(crashes) / static_cast<double>(n);
  EXPECT_NEAR(crash_rate, 0.2, 0.03);
  EXPECT_GT(site_diffs, n / 10);  // sites roll independent deviates
  // A different plan seed reschedules the faults.
  const resil::FaultPlan other{rates, 8};
  std::size_t plan_diffs = 0;
  for (std::uint64_t seed = 0; seed < n; ++seed) {
    if (plan.decide("place", seed) != other.decide("place", seed)) ++plan_diffs;
  }
  EXPECT_GT(plan_diffs, n / 10);
}

TEST(FaultPlan, ParseSpecRoundTripsAndRejectsTypos) {
  const auto plan =
      resil::FaultPlan::parse("crash=0.2,hang=0.05,license=0.01,corrupt=0.02,seed=9,hang_ms=40");
  ASSERT_TRUE(plan.has_value());
  EXPECT_DOUBLE_EQ(plan->rates().crash, 0.2);
  EXPECT_DOUBLE_EQ(plan->rates().hang, 0.05);
  EXPECT_DOUBLE_EQ(plan->rates().license_drop, 0.01);
  EXPECT_DOUBLE_EQ(plan->rates().corrupt_result, 0.02);
  EXPECT_EQ(plan->seed(), 9u);
  EXPECT_DOUBLE_EQ(plan->hang_ms(), 40.0);

  EXPECT_FALSE(resil::FaultPlan::parse("crsh=0.2").has_value());    // typo'd key
  EXPECT_FALSE(resil::FaultPlan::parse("crash=lots").has_value());  // malformed value
  EXPECT_FALSE(resil::FaultPlan::parse("crash=-0.1").has_value());  // negative rate
}

TEST(FaultInjector, InactiveIsNoneAndInstallClearWork) {
  FaultGuard guard;
  resil::FaultInjector::clear();
  EXPECT_FALSE(resil::FaultInjector::active());
  EXPECT_EQ(resil::FaultInjector::decide("route", 1), resil::FaultKind::None);

  resil::FaultRates rates;
  rates.crash = 1.0;
  resil::FaultInjector::install(resil::FaultPlan{rates, 3});
  EXPECT_TRUE(resil::FaultInjector::active());
  EXPECT_EQ(resil::FaultInjector::decide("route", 1), resil::FaultKind::Crash);
  resil::FaultInjector::clear();
  EXPECT_EQ(resil::FaultInjector::decide("route", 1), resil::FaultKind::None);
}

// ---------------------------------------------------------------------------
// Retry policy and circuit breaker

TEST(Retry, SeedDerivationAndBackoff) {
  EXPECT_EQ(resil::retry_seed(42, 0), 42u);  // first attempt is the base seed
  EXPECT_NE(resil::retry_seed(42, 1), 42u);
  EXPECT_NE(resil::retry_seed(42, 1), resil::retry_seed(42, 2));
  EXPECT_EQ(resil::retry_seed(42, 3), resil::retry_seed(42, 3));  // pure
  EXPECT_EQ(resil::retry_seed(42, 5, /*perturb=*/false), 42u);

  resil::RetryPolicy policy;
  policy.backoff_ms = 10.0;
  policy.backoff_factor = 3.0;
  policy.max_backoff_ms = 50.0;
  EXPECT_DOUBLE_EQ(policy.backoff_for(1), 10.0);
  EXPECT_DOUBLE_EQ(policy.backoff_for(2), 30.0);
  EXPECT_DOUBLE_EQ(policy.backoff_for(3), 50.0);  // capped
}

TEST(CircuitBreaker, TripsCoolsAndRedirects) {
  resil::CircuitBreaker::Options opt;
  opt.failure_threshold = 2;
  opt.cooldown_rounds = 2;
  resil::CircuitBreaker breaker{4, opt};

  breaker.record_failure(1);
  EXPECT_FALSE(breaker.open(1));  // below threshold
  breaker.record_success(1);
  breaker.record_failure(1);
  EXPECT_FALSE(breaker.open(1));  // success reset the streak
  breaker.record_failure(1);
  EXPECT_TRUE(breaker.open(1));
  EXPECT_EQ(breaker.open_count(), 1u);
  EXPECT_EQ(breaker.nearest_closed(1), 0u);  // ties go low
  EXPECT_EQ(breaker.nearest_closed(2), 2u);  // closed arms map to themselves

  breaker.advance_round();
  EXPECT_TRUE(breaker.open(1));
  breaker.advance_round();
  EXPECT_FALSE(breaker.open(1));  // cooled down
}

// ---------------------------------------------------------------------------
// submit_resilient: retry, deadline, hedging, license drops

TEST(SubmitResilient, RetryUntilSuccessIsBitwiseStableAcrossPoolSizes) {
  const std::uint64_t base = 42;
  const std::uint64_t winning = resil::retry_seed(base, 2);

  const auto campaign = [&](std::size_t threads) {
    exec::RunExecutor pool{{.threads = threads}};
    resil::ResilOptions opt;
    opt.retry.max_attempts = 4;
    auto fut = pool.submit_resilient(
        "flaky", base,
        [&](exec::RunContext& ctx) -> std::uint64_t {
          if (ctx.seed != winning) throw resil::InjectedCrash{"flaky"};
          return ctx.seed;
        },
        opt);
    const std::uint64_t value = fut.get();
    EXPECT_TRUE(eventually([&] { return pool.journal().summarize().failed == 2; }));
    return value;
  };

  const std::uint64_t before = counter_value("exec.retries");
  EXPECT_EQ(campaign(1), winning);
  EXPECT_EQ(counter_value("exec.retries") - before, 2u);
  EXPECT_EQ(campaign(4), winning);  // identical value on a wide pool
  EXPECT_EQ(counter_value("exec.retries") - before, 4u);
}

TEST(SubmitResilient, DeadlineTimesOutJournalsAndReleasesLicense) {
  // One license: if the overdue run leaked it, the follow-up run below
  // could never start and wait_for would expire instead of completing.
  exec::RunExecutor pool{{.threads = 2, .licenses = 1}};
  resil::ResilOptions opt;
  opt.deadline_ms = 50.0;

  const std::uint64_t timeouts_before = counter_value("exec.timeouts");
  auto fut = pool.submit_resilient(
      "overdue", 1,
      [](exec::RunContext& ctx) -> int {
        // Cooperative body that only polls its token — the watchdog must
        // reel it in. Capped so a watchdog bug fails the test, not CI.
        for (int i = 0; i < 10000 && !ctx.should_stop(); ++i) {
          std::this_thread::sleep_for(1ms);
        }
        return 1;
      },
      opt);
  EXPECT_THROW(fut.get(), resil::RunTimedOut);

  auto after = pool.submit("after", 2, [](exec::RunContext&) { return 2; });
  ASSERT_EQ(after.wait_for(10s), std::future_status::ready);
  EXPECT_EQ(after.get(), 2);
  EXPECT_TRUE(eventually([&] { return pool.journal().summarize().timed_out >= 1; }));
  EXPECT_GE(counter_value("exec.timeouts"), timeouts_before + 1);
}

TEST(SubmitResilient, HedgedLoserIsCancelledExactlyOnce) {
  exec::RunExecutor pool{{.threads = 4}};
  resil::ResilOptions opt;
  opt.hedge.enabled = true;
  opt.hedge.delay_ms = 5.0;

  std::atomic<int> calls{0};
  std::atomic<int> cancelled_seen{0};
  const std::uint64_t wins_before = counter_value("exec.hedge_wins");
  auto fut = pool.submit_resilient(
      "straggler", 9,
      [&](exec::RunContext& ctx) -> int {
        if (calls.fetch_add(1) == 0) {
          // The primary stalls until the hedge twin wins and cancels it.
          for (int i = 0; i < 2000 && !ctx.should_stop(); ++i) {
            std::this_thread::sleep_for(1ms);
          }
          if (ctx.should_stop()) cancelled_seen.fetch_add(1);
          return 7;
        }
        return 7;  // the twin shares the seed, so the value is identical
      },
      opt);
  EXPECT_EQ(fut.get(), 7);
  EXPECT_TRUE(eventually([&] { return pool.journal().summarize().cancelled == 1; }));
  EXPECT_EQ(cancelled_seen.load(), 1);
  EXPECT_EQ(counter_value("exec.hedge_wins") - wins_before, 1u);
  EXPECT_EQ(pool.journal().summarize().completed, 1u);
}

TEST(TimerThread, EarlierActionPreemptsArmedLongWait) {
  exec::RunExecutor pool{{.threads = 1}};
  // Arm the timer with a far deadline, then insert a near action: the timer
  // must re-arm for the new front instead of sleeping toward the stale one
  // (a short deadline watchdog submitted while a long one is queued).
  pool.schedule_at(std::chrono::steady_clock::now() + 60s, [] {});
  std::this_thread::sleep_for(20ms);  // let the timer thread arm the long wait
  std::promise<void> fired;
  auto fired_fut = fired.get_future();
  pool.schedule_at(std::chrono::steady_clock::now() + 20ms,
                   [&fired] { fired.set_value(); });
  ASSERT_EQ(fired_fut.wait_for(5s), std::future_status::ready);
}

TEST(SubmitResilient, CallerTokenCancelsTheLogicalRun) {
  exec::RunExecutor pool{{.threads = 2, .licenses = 1}};
  resil::ResilOptions opt;
  opt.retry.max_attempts = 3;
  exec::CancelToken cancel;
  auto fut = pool.submit_resilient(
      "cancellable", 5,
      [](exec::RunContext& ctx) -> int {
        for (int i = 0; i < 10000 && !ctx.should_stop(); ++i) {
          std::this_thread::sleep_for(1ms);
        }
        return 1;
      },
      opt, cancel);
  std::this_thread::sleep_for(20ms);
  cancel.request_cancel();
  EXPECT_THROW(fut.get(), exec::RunCancelled);
  // The cancelled attempt released its (only) license and no retry of the
  // cancelled logical run stole it.
  auto after = pool.submit("after", 6, [](exec::RunContext&) { return 2; });
  ASSERT_EQ(after.wait_for(10s), std::future_status::ready);
  EXPECT_EQ(after.get(), 2);
}

TEST(SubmitResilient, InjectedLicenseDropExercisesRetries) {
  FaultGuard guard;
  resil::FaultRates rates;
  rates.license_drop = 1.0;  // every attempt's license acquisition fails
  resil::FaultInjector::install(resil::FaultPlan{rates, 5});

  exec::RunExecutor pool{{.threads = 2}};
  resil::ResilOptions opt;
  opt.retry.max_attempts = 3;
  const std::uint64_t retries_before = counter_value("exec.retries");
  auto fut = pool.submit_resilient("licensed", 11,
                                   [](exec::RunContext&) { return 1; }, opt);
  EXPECT_THROW(fut.get(), resil::LicenseDropped);
  EXPECT_EQ(counter_value("exec.retries") - retries_before, 2u);
  EXPECT_TRUE(eventually([&] { return pool.journal().summarize().failed == 3; }));
}

// ---------------------------------------------------------------------------
// submit_memo: in-flight dedup and threaded deadlines

/// Minimal copyable cache handle for submit_memo.
template <typename V>
struct MapCacheT {
  std::shared_ptr<std::mutex> mu = std::make_shared<std::mutex>();
  std::shared_ptr<std::map<std::uint64_t, V>> m =
      std::make_shared<std::map<std::uint64_t, V>>();

  std::optional<V> lookup(std::uint64_t fp) {
    const std::lock_guard<std::mutex> lock(*mu);
    const auto it = m->find(fp);
    if (it == m->end()) return std::nullopt;
    return it->second;
  }
  void insert(std::uint64_t fp, const V& v) {
    const std::lock_guard<std::mutex> lock(*mu);
    (*m)[fp] = v;
  }
};
using MapCache = MapCacheT<int>;

TEST(SubmitMemo, DuplicateInflightFingerprintsExecuteOnce) {
  exec::RunExecutor pool{{.threads = 4}};
  MapCache cache;
  std::atomic<int> executions{0};
  const auto body = [&](exec::RunContext&) {
    executions.fetch_add(1);
    std::this_thread::sleep_for(50ms);
    return 5;
  };
  const std::uint64_t joins_before = counter_value("exec.inflight_joins");
  const std::uint64_t hits_before = counter_value("exec.cache_hits");
  auto first = pool.submit_memo("memo#0", 1, /*fingerprint=*/99, cache, body);
  auto second = pool.submit_memo("memo#1", 2, /*fingerprint=*/99, cache, body);
  EXPECT_EQ(first.get(), 5);
  EXPECT_EQ(second.get(), 5);
  EXPECT_EQ(executions.load(), 1);  // the duplicate joined, not re-ran
  EXPECT_EQ(counter_value("exec.inflight_joins") - joins_before, 1u);

  // After completion the fingerprint answers from the cache, not in-flight.
  auto third = pool.submit_memo("memo#2", 3, /*fingerprint=*/99, cache, body);
  EXPECT_EQ(third.get(), 5);
  EXPECT_EQ(executions.load(), 1);
  EXPECT_EQ(counter_value("exec.cache_hits") - hits_before, 1u);
}

TEST(SubmitMemo, JoinerFutureIsPromiseBackedAndSeesTheRunsError) {
  exec::RunExecutor pool{{.threads = 2}};
  MapCache cache;
  std::atomic<bool> release{false};
  const auto body = [&](exec::RunContext&) -> int {
    while (!release.load()) std::this_thread::sleep_for(1ms);
    throw std::runtime_error("boom");
  };
  auto first = pool.submit_memo("err#0", 1, /*fingerprint=*/7, cache, body);
  auto second = pool.submit_memo("err#1", 2, /*fingerprint=*/7, cache, body);
  // The join is promise-backed: polling reports timeout, never deferred.
  EXPECT_EQ(second.wait_for(0ms), std::future_status::timeout);
  release.store(true);
  EXPECT_THROW(first.get(), std::runtime_error);
  ASSERT_EQ(second.wait_for(10s), std::future_status::ready);
  EXPECT_THROW(second.get(), std::runtime_error);
  // The join row is journaled with the run's *terminal* state, not a
  // premature Completed: both rows count as Failed.
  EXPECT_TRUE(eventually([&] { return pool.journal().summarize().failed == 2; }));
  bool saw_join = false;
  for (const auto& rec : pool.journal().snapshot()) {
    if (rec.note == "inflight_join") {
      saw_join = true;
      EXPECT_EQ(rec.state, exec::RunState::Failed);
    }
  }
  EXPECT_TRUE(saw_join);
}

TEST(SubmitMemo, MismatchedResultTypeForOneFingerprintThrows) {
  exec::RunExecutor pool{{.threads = 2}};
  MapCache int_cache;
  MapCacheT<double> double_cache;
  std::atomic<bool> release{false};
  auto first = pool.submit_memo("typed#0", 1, /*fingerprint=*/55, int_cache,
                                [&](exec::RunContext&) {
                                  while (!release.load()) std::this_thread::sleep_for(1ms);
                                  return 1;
                                });
  // Same fingerprint, different result type: detected, not undefined behavior.
  EXPECT_THROW(pool.submit_memo("typed#1", 2, /*fingerprint=*/55, double_cache,
                                [](exec::RunContext&) { return 2.5; }),
               std::logic_error);
  release.store(true);
  EXPECT_EQ(first.get(), 1);
}

TEST(SubmitMemo, CallerTokenCancelsResilientMemoRun) {
  exec::RunExecutor pool{{.threads = 2}};
  MapCache cache;
  resil::ResilOptions resilience;
  resilience.retry.max_attempts = 2;
  exec::CancelToken cancel;
  auto fut = pool.submit_memo(
      "memo_cancellable", 4, /*fingerprint=*/77, cache,
      [](exec::RunContext& ctx) {
        for (int i = 0; i < 10000 && !ctx.should_stop(); ++i) {
          std::this_thread::sleep_for(1ms);
        }
        return 9;
      },
      cancel, std::chrono::steady_clock::time_point{}, resilience);
  std::this_thread::sleep_for(20ms);
  cancel.request_cancel();
  EXPECT_THROW(fut.get(), exec::RunCancelled);
  // The partial result never reached the cache and the fingerprint was
  // released, so a fresh submission re-runs instead of joining a corpse.
  EXPECT_FALSE(cache.lookup(77).has_value());
  auto again = pool.submit_memo("memo_again", 5, /*fingerprint=*/77, cache,
                                [](exec::RunContext&) { return 3; });
  EXPECT_EQ(again.get(), 3);
}

TEST(SubmitMemo, ThreadsDeadlineThroughToResilientDispatch) {
  exec::RunExecutor pool{{.threads = 2}};
  MapCache cache;
  resil::ResilOptions resilience;
  resilience.deadline_ms = 50.0;
  auto fut = pool.submit_memo(
      "memo_deadline", 4, /*fingerprint=*/123, cache,
      [](exec::RunContext& ctx) {
        for (int i = 0; i < 10000 && !ctx.should_stop(); ++i) {
          std::this_thread::sleep_for(1ms);
        }
        return 9;
      },
      exec::CancelToken{}, std::chrono::steady_clock::time_point{}, resilience);
  EXPECT_THROW(fut.get(), resil::RunTimedOut);
  // The timed-out partial result must not have been memoized.
  EXPECT_FALSE(cache.lookup(123).has_value());
}

// ---------------------------------------------------------------------------
// MabScheduler: chaos campaigns, censoring, breaker

/// Synthetic feasibility-cliff oracle: feasible below 1.6 GHz, with injected
/// crashes/hangs decided at site "oracle" purely from the attempt seed.
flow::FlowResult chaos_oracle(double freq, std::uint64_t seed, exec::RunContext& ctx) {
  switch (resil::FaultInjector::decide("oracle", seed)) {
    case resil::FaultKind::Crash:
      throw resil::InjectedCrash{"oracle"};
    case resil::FaultKind::Hang:
      resil::injected_hang([&] { return ctx.should_stop(); },
                           resil::FaultInjector::plan()->hang_ms());
      break;
    default:
      break;
  }
  flow::FlowResult r;
  r.completed = true;
  const bool feasible = freq <= 1.6;
  r.timing_met = feasible;
  r.drc_clean = true;
  r.constraints_met = true;
  r.wns_ps = feasible ? 10.0 : -50.0;
  return r;
}

TEST(MabResilient, ChaosCampaignCompletesDeterministicallyAcrossPoolSizes) {
  FaultGuard guard;
  resil::FaultRates rates;
  rates.crash = 0.2;  // the ISSUE acceptance point: 20% crash, 5% hang
  rates.hang = 0.05;
  resil::FaultPlan plan{rates, 7};
  plan.set_hang_ms(5.0);
  resil::FaultInjector::install(plan);

  core::MabOptions opt;
  opt.frequency_arms_ghz = core::frequency_arms(0.8, 2.4, 9);
  opt.iterations = 12;
  opt.concurrency = 4;
  opt.resilience.retry.max_attempts = 3;

  const core::MabScheduler sched{opt};
  const auto campaign = [&](std::size_t threads) {
    exec::RunExecutor pool{{.threads = threads}};
    util::Rng rng{2018};
    return sched.run_resilient(chaos_oracle, rng, pool);
  };

  const std::uint64_t retries_before = counter_value("exec.retries");
  const auto serial = campaign(1);
  const std::uint64_t serial_retries = counter_value("exec.retries") - retries_before;
  const auto parallel = campaign(8);
  const std::uint64_t parallel_retries =
      counter_value("exec.retries") - retries_before - serial_retries;

  // Chaos is seed-derived, so the campaign retries deterministically and
  // the two trajectories are bitwise identical.
  EXPECT_GT(serial_retries, 0u);
  EXPECT_EQ(serial_retries, parallel_retries);
  ASSERT_EQ(serial.samples.size(), parallel.samples.size());
  EXPECT_EQ(serial.samples.size(), opt.iterations * opt.concurrency);
  for (std::size_t i = 0; i < serial.samples.size(); ++i) {
    EXPECT_EQ(serial.samples[i].frequency_ghz, parallel.samples[i].frequency_ghz);
    EXPECT_EQ(serial.samples[i].success, parallel.samples[i].success);
    EXPECT_EQ(serial.samples[i].reward, parallel.samples[i].reward);
    EXPECT_EQ(serial.samples[i].censored, parallel.samples[i].censored);
  }
  EXPECT_EQ(serial.censored_runs, parallel.censored_runs);
  EXPECT_EQ(serial.total_regret, parallel.total_regret);
  // Despite the chaos the campaign converged on the feasible region.
  EXPECT_GT(serial.best_feasible_ghz, 0.0);
  EXPECT_LE(serial.best_feasible_ghz, 1.6);
  EXPECT_GT(serial.successful_runs, 0u);
}

TEST(MabPlain, FailedFuturesBecomeCensoredSamples) {
  // No retries here: the plain run() path must also survive crashed pulls,
  // censoring them instead of updating the posterior with fake zeros.
  const core::FlowOracle oracle = [](double freq, std::uint64_t seed) {
    if (seed % 2 == 0) throw resil::InjectedCrash{"oracle"};
    flow::FlowResult r;
    r.completed = true;
    r.timing_met = freq <= 1.2;
    r.drc_clean = true;
    r.constraints_met = true;
    return r;
  };
  core::MabOptions opt;
  opt.frequency_arms_ghz = core::frequency_arms(0.8, 1.6, 3);
  opt.iterations = 5;
  opt.concurrency = 3;
  const core::MabScheduler sched{opt};
  util::Rng rng{99};
  exec::RunExecutor pool{{.threads = 2}};
  const auto res = sched.run(oracle, rng, pool);
  EXPECT_EQ(res.total_runs, opt.iterations * opt.concurrency);
  EXPECT_GT(res.censored_runs, 0u);
  EXPECT_EQ(res.best_per_iteration.size(), opt.iterations);
  for (const auto& s : res.samples) {
    if (s.censored) {
      EXPECT_FALSE(s.success);
      EXPECT_EQ(s.reward, 0.0);
    }
  }
}

// ---------------------------------------------------------------------------
// Search / GWTW / fleet degradation

TEST(FlowSearch, DeadBranchesDropInsteadOfAborting) {
  const core::TrajectoryOracle oracle = [](const flow::FlowTrajectory&, std::uint64_t seed) {
    if (seed % 2 == 0) throw resil::InjectedCrash{"oracle"};
    flow::FlowResult r;
    r.completed = true;
    r.timing_met = true;
    r.drc_clean = true;
    r.constraints_met = true;
    r.area_um2 = static_cast<double>(seed % 1000);
    return r;
  };
  core::FlowSearchOptions opt;
  opt.strategy = core::SearchStrategy::Gwtw;
  opt.population = 4;
  opt.rounds = 3;
  const std::uint64_t dead_before = counter_value("sched.search_dead_branches");
  core::FlowTreeSearch search{flow::default_knob_spaces(), opt};
  util::Rng rng{5};
  const auto res = search.run(oracle, rng);
  EXPECT_EQ(res.flow_runs, opt.population * opt.rounds);
  EXPECT_GT(counter_value("sched.search_dead_branches") - dead_before, 0u);
  // A surviving branch won: the best is a real result, not the crash penalty.
  EXPECT_LT(res.best_cost, core::QorWeights{}.incomplete_penalty);
  EXPECT_TRUE(res.best_result.completed);
}

TEST(Gwtw, DeadThreadsKeepPriorStateAndPopulationWidth) {
  opt::GwtwProblem<double> prob;
  prob.init = [](util::Rng& rng) { return rng.uniform(1.0, 2.0); };
  prob.advance = [](const double& s, util::Rng& rng) {
    if (rng.uniform() < 0.3) throw std::runtime_error("injected advance crash");
    return s * 0.9;
  };
  prob.cost = [](const double& s) { return s; };
  opt::GwtwOptions options;
  options.population = 8;
  options.rounds = 6;
  const std::uint64_t dead_before = counter_value("opt.gwtw_dead_threads");
  util::Rng rng{12};
  const auto res = opt::go_with_the_winners(prob, options, rng);
  EXPECT_GT(counter_value("opt.gwtw_dead_threads") - dead_before, 0u);
  EXPECT_LT(res.best_cost, 2.0);  // progress despite crashed advances
  EXPECT_EQ(res.best_per_round.size(), static_cast<std::size_t>(options.rounds));
}

TEST(RobotFleet, CrashedRobotsReportPartialFleet) {
  FaultGuard guard;
  resil::FaultRates rates;
  rates.crash = 1.0;  // every tool step crashes: all robots die immediately
  resil::FaultInjector::install(resil::FaultPlan{rates, 2});

  const auto lib = netlist::make_default_library();
  const flow::FlowManager manager{lib};
  core::RobotOptions ropt;
  ropt.max_attempts = 1;
  const core::RobotEngineer robot{manager, ropt};
  std::vector<core::FleetTask> fleet(2);
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    fleet[i].recipe.design.kind = flow::DesignSpec::Kind::RandomLogic;
    fleet[i].recipe.design.gates_override = 200;
    fleet[i].recipe.design.name = "blk" + std::to_string(i);
    fleet[i].recipe.seed = 10 + i;
  }
  exec::RunExecutor pool{{.threads = 2}};
  const std::uint64_t partial_before = counter_value("sched.fleet_partial");
  const auto outcomes = robot.run_fleet(std::move(fleet), pool, 77);
  ASSERT_EQ(outcomes.size(), 2u);
  for (const auto& out : outcomes) {
    EXPECT_FALSE(out.succeeded);
    ASSERT_FALSE(out.journal.empty());
    EXPECT_EQ(out.journal.front().diagnosis.rfind("crashed:", 0), 0u);
  }
  EXPECT_EQ(counter_value("sched.fleet_partial") - partial_before, 1u);
}

// ---------------------------------------------------------------------------
// Flow tool fault sites

TEST(FlowFaults, CrashSiteThrowsAndCorruptSiteFailsTheStep) {
  FaultGuard guard;
  const auto lib = netlist::make_default_library();
  const flow::FlowManager manager{lib};
  flow::FlowRecipe recipe;
  recipe.design.kind = flow::DesignSpec::Kind::RandomLogic;
  recipe.design.gates_override = 200;
  recipe.design.name = "fault_probe";
  recipe.seed = 3;

  resil::FaultRates crash;
  crash.crash = 1.0;
  resil::FaultInjector::install(resil::FaultPlan{crash, 4});
  EXPECT_THROW(manager.run(recipe), resil::InjectedCrash);

  resil::FaultRates corrupt;
  corrupt.corrupt_result = 1.0;
  resil::FaultInjector::install(resil::FaultPlan{corrupt, 4});
  const auto res = manager.run(recipe);
  EXPECT_FALSE(res.completed);  // garbage output fails the first step
  EXPECT_EQ(res.failed_step, "synthesis");

  resil::FaultInjector::clear();
  EXPECT_TRUE(manager.run(recipe).completed);  // chaos off: flow is healthy
}

// ---------------------------------------------------------------------------
// Store WAL degradation

TEST(StoreFaults, WalErrorDegradesToMemoryAndCompactionRecovers) {
  FaultGuard guard;
  const std::string dir = ::testing::TempDir() + "maestro_resil_store";
  std::filesystem::remove_all(dir);

  store::RunStore db{dir};
  store::StoredRun run;
  run.fingerprint = 1;
  db.append_run(run);  // healthy append
  EXPECT_FALSE(db.degraded());

  resil::FaultRates rates;
  rates.crash = 1.0;  // injected EIO on every WAL write
  resil::FaultInjector::install(resil::FaultPlan{rates, 6});
  const std::uint64_t errors_before = counter_value("store.wal_errors");
  run.fingerprint = 2;
  db.append_run(run);
  EXPECT_TRUE(db.degraded());
  EXPECT_GE(counter_value("store.wal_errors") - errors_before, 1u);
  resil::FaultInjector::clear();

  // Degraded: appends keep full in-memory service but skip the dead disk.
  run.fingerprint = 3;
  db.append_run(run);
  EXPECT_EQ(db.run_count(), 3u);
  EXPECT_TRUE(db.degraded());

  // Compaction folds the mirror into the snapshot and recovers the store.
  EXPECT_TRUE(db.compact());
  EXPECT_FALSE(db.degraded());
  run.fingerprint = 4;
  db.append_run(run);

  store::RunStore reopened{dir};
  EXPECT_EQ(reopened.run_count(), 4u);  // nothing was lost to the dead WAL
}

TEST(StoreFaults, InjectedShortWriteLeavesRecoverableTornTail) {
  FaultGuard guard;
  const std::string dir = ::testing::TempDir() + "maestro_resil_torn";
  std::filesystem::remove_all(dir);
  {
    store::RunStore db{dir};
    store::StoredRun run;
    run.fingerprint = 10;
    db.append_run(run);  // complete line

    resil::FaultRates rates;
    rates.corrupt_result = 1.0;  // short write: half a record, then death
    resil::FaultInjector::install(resil::FaultPlan{rates, 8});
    run.fingerprint = 11;
    db.append_run(run);
    EXPECT_TRUE(db.degraded());
    resil::FaultInjector::clear();
  }
  store::RunStore recovered{dir};
  EXPECT_EQ(recovered.run_count(), 1u);  // the torn record is dropped...
  EXPECT_GT(recovered.dropped_tail_bytes(), 0u);
  store::StoredRun run;
  run.fingerprint = 12;
  recovered.append_run(run);  // ...and the WAL appends cleanly again
  EXPECT_FALSE(recovered.degraded());
  store::RunStore again{dir};
  EXPECT_EQ(again.run_count(), 2u);
}

// ---------------------------------------------------------------------------
// Journal per-state summary

TEST(Journal, SummaryCountsTerminalStates) {
  exec::RunExecutor pool{{.threads = 2}};
  auto ok = pool.submit("ok", 1, [](exec::RunContext&) { return 1; });
  EXPECT_EQ(ok.get(), 1);
  auto bad = pool.submit("bad", 2,
                         [](exec::RunContext&) -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(bad.get(), std::runtime_error);
  exec::CancelToken cancelled;
  cancelled.request_cancel();
  auto skipped = pool.submit("skipped", 3, [](exec::RunContext&) { return 3; }, cancelled);
  EXPECT_THROW(skipped.get(), exec::RunCancelled);

  EXPECT_TRUE(eventually([&] {
    const auto s = pool.journal().summarize();
    return s.completed == 1 && s.failed == 1 && s.cancelled == 1;
  }));
  const auto s = pool.journal().summarize();
  EXPECT_EQ(s.runs, 3u);
  EXPECT_EQ(s.timed_out, 0u);
}

}  // namespace
