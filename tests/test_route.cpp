// Unit tests for maestro::route — grid graph indexing, the negotiated-
// congestion global router, and the DRV-convergence simulator.

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "netlist/generators.hpp"
#include "place/placer.hpp"
#include "route/drv_sim.hpp"
#include "route/global_router.hpp"

namespace mn = maestro::netlist;
namespace mp = maestro::place;
namespace mr = maestro::route;
using maestro::util::Rng;

namespace {
const mn::CellLibrary& lib() {
  static const mn::CellLibrary l = mn::make_default_library();
  return l;
}

mp::Placement placed_design(std::uint64_t seed, std::size_t gates, double util,
                            std::unique_ptr<mn::Netlist>& nl_out,
                            std::unique_ptr<mp::Floorplan>& fp_out) {
  mn::RandomLogicSpec spec;
  spec.gates = gates;
  spec.seed = seed;
  nl_out = std::make_unique<mn::Netlist>(mn::make_random_logic(lib(), spec));
  fp_out = std::make_unique<mp::Floorplan>(mp::Floorplan::for_netlist(*nl_out, util));
  Rng rng{seed};
  auto pl = mp::random_placement(*nl_out, *fp_out, rng);
  mp::AnnealOptions ao;
  ao.moves_per_cell = 10.0;
  mp::anneal_placement(pl, ao, rng);
  mp::legalize(pl);
  return pl;
}
}  // namespace

TEST(GridGraph, EdgeIdsAreUniqueAndComplete) {
  const maestro::geom::GridIndexer idx{{{0, 0}, {100, 100}}, 4, 3};
  mr::GridGraph g{4, 3, 10.0, 8.0, idx};
  EXPECT_EQ(g.node_count(), 12u);
  EXPECT_EQ(g.edge_count(), 3u * 3u + 4u * 2u);  // east + north
  std::set<std::size_t> ids;
  for (std::uint32_t r = 0; r < 3; ++r) {
    for (std::uint32_t c = 0; c + 1 < 4; ++c) ids.insert(g.edge_id({c, r}, mr::Dir::East));
  }
  for (std::uint32_t r = 0; r + 1 < 3; ++r) {
    for (std::uint32_t c = 0; c < 4; ++c) ids.insert(g.edge_id({c, r}, mr::Dir::North));
  }
  EXPECT_EQ(ids.size(), g.edge_count());
  // Capacities by direction.
  EXPECT_DOUBLE_EQ(g.capacity(g.edge_id({0, 0}, mr::Dir::East)), 10.0);
  EXPECT_DOUBLE_EQ(g.capacity(g.edge_id({0, 0}, mr::Dir::North)), 8.0);
}

TEST(GridGraph, UsageAndOverflowAccounting) {
  const maestro::geom::GridIndexer idx{{{0, 0}, {10, 10}}, 2, 2};
  mr::GridGraph g{2, 2, 1.0, 1.0, idx};
  const auto e = g.edge_id({0, 0}, mr::Dir::East);
  g.add_usage(e, 3.0);
  EXPECT_DOUBLE_EQ(g.usage(e), 3.0);
  EXPECT_DOUBLE_EQ(g.overflow(e), 2.0);
  EXPECT_DOUBLE_EQ(g.total_overflow(), 2.0);
  EXPECT_EQ(g.overflowed_edges(), 1u);
  EXPECT_DOUBLE_EQ(g.max_utilization(), 3.0);
  g.reset_usage();
  EXPECT_DOUBLE_EQ(g.total_overflow(), 0.0);
}

TEST(GridGraph, EveryMutatorBumpsRevision) {
  const maestro::geom::GridIndexer idx{{{0, 0}, {10, 10}}, 2, 2};
  mr::GridGraph g{2, 2, 1.0, 1.0, idx};
  const auto e = g.edge_id({0, 0}, mr::Dir::East);
  const auto r0 = g.revision();
  g.add_usage(e, 1.0);
  const auto r1 = g.revision();
  EXPECT_GT(r1, r0);
  g.bump_history(e, 1.0);  // historically forgot to bump the revision
  const auto r2 = g.revision();
  EXPECT_GT(r2, r1);
  g.reset_usage();
  EXPECT_GT(g.revision(), r2);
}

TEST(GlobalRouter, RoutesEasyDesignCleanly) {
  std::unique_ptr<mn::Netlist> nl;
  std::unique_ptr<mp::Floorplan> fp;
  const auto pl = placed_design(1, 300, 0.5, nl, fp);
  mr::RouteOptions opt;
  opt.gcells_x = opt.gcells_y = 16;
  opt.h_capacity = 60.0;
  opt.v_capacity = 60.0;
  const auto res = mr::global_route(pl, opt);
  EXPECT_TRUE(res.converged);
  EXPECT_DOUBLE_EQ(res.total_overflow, 0.0);
  EXPECT_GT(res.wirelength_gcells, 0.0);
}

TEST(GlobalRouter, TightCapacityCausesOverflowOrMoreWire) {
  std::unique_ptr<mn::Netlist> nl;
  std::unique_ptr<mp::Floorplan> fp;
  const auto pl = placed_design(2, 600, 0.85, nl, fp);
  mr::RouteOptions loose;
  loose.gcells_x = loose.gcells_y = 16;
  loose.h_capacity = loose.v_capacity = 100.0;
  mr::RouteOptions tight = loose;
  tight.h_capacity = tight.v_capacity = 4.0;
  const auto easy = mr::global_route(pl, loose);
  const auto hard = mr::global_route(pl, tight);
  EXPECT_GT(hard.total_overflow + (hard.wirelength_gcells - easy.wirelength_gcells), 0.0);
  EXPECT_GE(hard.max_utilization, easy.max_utilization);
}

TEST(GlobalRouter, NegotiationReducesOverflow) {
  std::unique_ptr<mn::Netlist> nl;
  std::unique_ptr<mp::Floorplan> fp;
  const auto pl = placed_design(5, 700, 0.8, nl, fp);
  mr::RouteOptions opt;
  opt.gcells_x = opt.gcells_y = 16;
  opt.h_capacity = opt.v_capacity = 9.0;
  opt.max_rounds = 8;
  const auto res = mr::global_route(pl, opt);
  ASSERT_GE(res.overflow_per_round.size(), 2u);
  // Overflow after negotiation no worse than the first round.
  EXPECT_LE(res.overflow_per_round.back(), res.overflow_per_round.front());
}

TEST(DifficultyFromCongestion, MonotoneInOverflow) {
  mr::RouteResult a;
  a.max_utilization = 0.5;
  a.total_overflow = 0.0;
  mr::RouteResult b = a;
  b.max_utilization = 1.2;
  b.total_overflow = 100.0;
  mr::RouteResult c = b;
  c.total_overflow = 500.0;
  EXPECT_LT(mr::difficulty_from_congestion(a).value, mr::difficulty_from_congestion(b).value);
  EXPECT_LE(mr::difficulty_from_congestion(b).value, mr::difficulty_from_congestion(c).value);
  EXPECT_GE(mr::difficulty_from_congestion(a).value, 0.0);
  EXPECT_LE(mr::difficulty_from_congestion(c).value, 1.0);
}

TEST(DrvSim, EasyRunConvergesHardRunDoesNot) {
  mr::DrvSimOptions opt;
  Rng easy_rng{7};
  const auto easy = mr::simulate_drv_run({0.1}, opt, easy_rng);
  EXPECT_TRUE(easy.succeeded);
  EXPECT_LT(easy.drvs.back(), opt.success_threshold);

  Rng hard_rng{7};
  const auto hard = mr::simulate_drv_run({0.95}, opt, hard_rng);
  EXPECT_FALSE(hard.succeeded);
  EXPECT_GT(hard.drvs.back(), opt.success_threshold);
}

TEST(DrvSim, TrajectoryLengthAndLog) {
  mr::DrvSimOptions opt;
  opt.iterations = 25;
  Rng rng{9};
  const auto run = mr::simulate_drv_run({0.4}, opt, rng);
  EXPECT_EQ(run.drvs.size(), 25u);
  EXPECT_EQ(run.log.iterations.size(), 25u);
  EXPECT_EQ(run.log.tool, "detail_route");
  // Log series matches the trajectory.
  const auto series = run.log.series("drvs");
  for (std::size_t i = 0; i < series.size(); ++i) EXPECT_DOUBLE_EQ(series[i], run.drvs[i]);
}

TEST(DrvSim, SuccessRateFallsWithDifficulty) {
  mr::DrvSimOptions opt;
  Rng rng{11};
  auto success_rate = [&](double difficulty) {
    int ok = 0;
    for (int i = 0; i < 60; ++i) {
      ok += mr::simulate_drv_run({difficulty}, opt, rng).succeeded ? 1 : 0;
    }
    return ok / 60.0;
  };
  const double easy = success_rate(0.15);
  const double mid = success_rate(0.55);
  const double hard = success_rate(0.9);
  EXPECT_GT(easy, 0.9);
  EXPECT_LT(hard, 0.1);
  EXPECT_GE(easy, mid);
  EXPECT_GT(mid, hard);
}

TEST(DrvSim, ExhibitsDivergentRegime) {
  // Among hard runs, some must *increase* DRVs late (Fig. 9 red curve).
  mr::DrvSimOptions opt;
  Rng rng{13};
  bool saw_divergence = false;
  for (int i = 0; i < 40 && !saw_divergence; ++i) {
    const auto run = mr::simulate_drv_run({0.85}, opt, rng);
    const auto mid = run.drvs[run.drvs.size() / 2];
    if (run.drvs.back() > 1.5 * mid) saw_divergence = true;
  }
  EXPECT_TRUE(saw_divergence);
}

TEST(DrvSim, ExhibitsPlateauRegime) {
  // Moderately hard runs should stall well above zero but below start.
  mr::DrvSimOptions opt;
  Rng rng{17};
  bool saw_plateau = false;
  for (int i = 0; i < 40 && !saw_plateau; ++i) {
    const auto run = mr::simulate_drv_run({0.65}, opt, rng);
    const double last = run.drvs.back();
    const double prev5 = run.drvs[run.drvs.size() - 6];
    if (last > opt.success_threshold && last < 0.3 * run.drvs.front() &&
        std::abs(last - prev5) < 0.5 * prev5) {
      saw_plateau = true;
    }
  }
  EXPECT_TRUE(saw_plateau);
}

TEST(DrvCorpus, SizesAndKinds) {
  mr::DrvSimOptions opt;
  Rng rng{19};
  const auto train = mr::make_drv_corpus(mr::CorpusKind::ArtificialLayouts, 100, opt, rng);
  EXPECT_EQ(train.size(), 100u);
  const auto test = mr::make_drv_corpus(mr::CorpusKind::CpuFloorplans, 50, opt, rng);
  EXPECT_EQ(test.size(), 50u);
  // Artificial corpus spreads difficulty broadly.
  double lo = 1.0;
  double hi = 0.0;
  for (const auto& r : train) {
    lo = std::min(lo, r.difficulty);
    hi = std::max(hi, r.difficulty);
  }
  EXPECT_LT(lo, 0.2);
  EXPECT_GT(hi, 0.8);
  // Both corpora contain successes and failures.
  auto count_success = [](const std::vector<mr::DrvRun>& c) {
    std::size_t n = 0;
    for (const auto& r : c) n += r.succeeded ? 1 : 0;
    return n;
  };
  EXPECT_GT(count_success(train), 0u);
  EXPECT_LT(count_success(train), train.size());
  EXPECT_GT(count_success(test), 0u);
  EXPECT_LT(count_success(test), test.size());
}

TEST(DrvCorpus, DeterministicBySeed) {
  mr::DrvSimOptions opt;
  Rng a{21};
  Rng b{21};
  const auto c1 = mr::make_drv_corpus(mr::CorpusKind::CpuFloorplans, 10, opt, a);
  const auto c2 = mr::make_drv_corpus(mr::CorpusKind::CpuFloorplans, 10, opt, b);
  for (std::size_t i = 0; i < 10; ++i) {
    ASSERT_EQ(c1[i].drvs.size(), c2[i].drvs.size());
    for (std::size_t t = 0; t < c1[i].drvs.size(); ++t) {
      EXPECT_DOUBLE_EQ(c1[i].drvs[t], c2[i].drvs[t]);
    }
  }
}
