// Tests for the Section-4 sharing infrastructure (anonymization, corpus
// persistence) and k-fold cross-validation.

#include <gtest/gtest.h>

#include <filesystem>

#include "core/doomed_guard.hpp"
#include "metrics/sharing.hpp"
#include "ml/regression.hpp"

namespace mm = maestro::metrics;
namespace mc = maestro::core;
namespace mr = maestro::route;
namespace ml = maestro::ml;
using maestro::util::Rng;

TEST(Pseudonym, DeterministicPerKeyAndDistinctAcrossKeys) {
  const auto a1 = mm::pseudonym("pulpino_top", 1);
  const auto a2 = mm::pseudonym("pulpino_top", 1);
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, mm::pseudonym("pulpino_top", 2));
  EXPECT_NE(a1, mm::pseudonym("other_design", 1));
  EXPECT_EQ(a1.rfind("d_", 0), 0u);
  // The original name must not leak.
  EXPECT_EQ(a1.find("pulpino"), std::string::npos);
}

TEST(Anonymize, ScrubsRecordFields) {
  mm::Record r;
  r.design = "secret_soc";
  r.seed = 424242;
  r.step = "flow";
  r.knobs["synthesis.effort"] = "high";
  r.knobs["floorplan.utilization"] = "0.85";
  r.values[mm::names::kAreaUm2] = 1234.5;
  r.values[mm::names::kWnsPs] = -3.2;

  mm::AnonymizeOptions opt;
  opt.quantize[mm::names::kAreaUm2] = 100.0;
  opt.drop_knob_values = {"floorplan.utilization"};
  const auto a = mm::anonymize(r, opt);
  EXPECT_EQ(a.design.find("secret"), std::string::npos);
  EXPECT_EQ(a.seed, 0u);
  EXPECT_DOUBLE_EQ(*a.value(mm::names::kAreaUm2), 1200.0);       // quantized
  EXPECT_DOUBLE_EQ(*a.value(mm::names::kWnsPs), -3.2);           // untouched
  EXPECT_EQ(*a.knob("floorplan.utilization"), "<redacted>");
  EXPECT_EQ(*a.knob("synthesis.effort"), "high");                // kept
  EXPECT_EQ(a.step, "flow");
}

TEST(Anonymize, ServerJoinsSurviveWithinKey) {
  mm::Server server;
  for (int i = 0; i < 3; ++i) {
    mm::Record r;
    r.design = "design_a";
    r.step = "flow";
    r.values[mm::names::kAreaUm2] = 100.0 + i;
    server.submit(std::move(r));
  }
  mm::Record other;
  other.design = "design_b";
  other.step = "flow";
  server.submit(std::move(other));

  const auto anon = mm::anonymize(server, mm::AnonymizeOptions{});
  EXPECT_EQ(anon.size(), 4u);
  // Same source design -> same pseudonym: per-design queries still work.
  const auto pseud = mm::pseudonym("design_a", mm::AnonymizeOptions{}.key);
  EXPECT_EQ(anon.for_design(pseud).size(), 3u);
}

TEST(DrvCorpusSharing, RoundTripPreservesTrainingValue) {
  mr::DrvSimOptions opt;
  opt.seed = 31;
  Rng rng{31};
  const auto corpus = mr::make_drv_corpus(mr::CorpusKind::ArtificialLayouts, 300, opt, rng);

  const std::string path = "/tmp/maestro_shared_corpus.jsonl";
  ASSERT_TRUE(mm::save_drv_corpus(corpus, path, mm::AnonymizeOptions{}));
  const auto loaded = mm::load_drv_corpus(path);
  ASSERT_EQ(loaded.size(), corpus.size());

  // Trajectories and labels survive; provenance does not.
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    EXPECT_EQ(loaded[i].succeeded, corpus[i].succeeded);
    ASSERT_EQ(loaded[i].drvs.size(), corpus[i].drvs.size());
    for (std::size_t t = 0; t < corpus[i].drvs.size(); ++t) {
      EXPECT_DOUBLE_EQ(loaded[i].drvs[t], corpus[i].drvs[t]);
    }
    EXPECT_EQ(loaded[i].log.seed, 0u);
    EXPECT_EQ(loaded[i].log.metadata.count("difficulty"), 0u);
    EXPECT_EQ(loaded[i].log.design.find("art"), std::string::npos);
  }

  // The shared corpus trains a guard as well as the original.
  mc::DoomedRunGuard guard_orig;
  guard_orig.train(corpus);
  mc::DoomedRunGuard guard_shared;
  guard_shared.train(loaded);
  mr::DrvSimOptions topt;
  topt.seed = 33;
  Rng trng{33};
  const auto test = mr::make_drv_corpus(mr::CorpusKind::CpuFloorplans, 300, topt, trng);
  const auto e1 = guard_orig.evaluate(test, 2);
  const auto e2 = guard_shared.evaluate(test, 2);
  EXPECT_EQ(e1.type1, e2.type1);
  EXPECT_EQ(e1.type2, e2.type2);
  std::filesystem::remove(path);
}

TEST(CrossValidate, FoldsPartitionData) {
  ml::Dataset d;
  Rng rng{41};
  for (int i = 0; i < 50; ++i) d.add({static_cast<double>(i)}, 2.0 * i);
  std::size_t total_test = 0;
  const auto scores =
      ml::cross_validate(d, 5, rng, [&](const ml::Dataset& train, const ml::Dataset& test) {
        total_test += test.size();
        EXPECT_EQ(train.size() + test.size(), d.size());
        return 1.0;
      });
  EXPECT_EQ(scores.size(), 5u);
  EXPECT_EQ(total_test, d.size());  // every sample tested exactly once
}

TEST(CrossValidate, R2OfLinearModelOnLinearData) {
  ml::Dataset d;
  Rng rng{43};
  for (int i = 0; i < 120; ++i) {
    const double x = rng.uniform(-5, 5);
    d.add({x}, 3.0 * x + 1.0 + rng.gauss(0, 0.01));
  }
  const double r2 =
      ml::cross_validated_r2(d, 4, rng, [] { return ml::RidgeRegression{1e-6}; });
  EXPECT_GT(r2, 0.999);
}

TEST(CrossValidate, DegenerateInputsRejected) {
  ml::Dataset d;
  d.add({1.0}, 1.0);
  Rng rng{45};
  EXPECT_TRUE(ml::cross_validate(d, 5, rng, [](const auto&, const auto&) { return 0.0; }).empty());
  EXPECT_TRUE(ml::cross_validate(d, 1, rng, [](const auto&, const auto&) { return 0.0; }).empty());
}
