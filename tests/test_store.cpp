// Tests for maestro::store — the durable run store: fingerprint stability,
// WAL append/recover, kill-the-writer torn-tail recovery, snapshot
// compaction, content-addressed memoization through RunExecutor, the
// metrics-server persistence bridge, and campaign checkpoint/resume for
// MabScheduler and FlowTreeSearch.
//
// This file builds as its own binary (maestro_store_tests) labeled "store"
// so it can run in isolation under -DMAESTRO_SANITIZE=thread:
//   ctest -L store

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string_view>
#include <thread>
#include <vector>

#include "core/flow_search.hpp"
#include "core/mab_scheduler.hpp"
#include "exec/executor.hpp"
#include "metrics/server.hpp"
#include "obs/registry.hpp"
#include "resil/fault.hpp"
#include "store/cache_server.hpp"
#include "store/fingerprint.hpp"
#include "store/remote_cache.hpp"
#include "store/run_cache.hpp"
#include "store/run_store.hpp"
#include "store/wal_frame.hpp"

namespace fs = std::filesystem;
namespace mc = maestro::core;
namespace mf = maestro::flow;
namespace mm = maestro::metrics;
namespace ms = maestro::store;
namespace mx = maestro::exec;
using maestro::obs::Registry;
using maestro::util::Rng;

namespace {

/// A fresh, empty store directory under the system temp dir.
std::string temp_store(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / "maestro_store_tests" / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

mf::FlowResult sample_result(double area) {
  mf::FlowResult r;
  r.completed = true;
  r.timing_met = true;
  r.drc_clean = true;
  r.constraints_met = true;
  r.area_um2 = area;
  r.wns_ps = 12.5;
  r.power_mw = 3.25;
  r.tat_minutes = 42.0;
  return r;
}

ms::StoredRun sample_run(std::uint64_t seed, double area) {
  ms::StoredRun run;
  run.key.design = "unit";
  run.key.seed = seed;
  run.key.set("place.effort", "high");
  run.fingerprint = run.key.fingerprint();
  run.result = sample_result(area);
  return run;
}

/// Global obs counters are cumulative per process: tests must diff.
std::uint64_t counter(const char* name) {
  return Registry::global().counter(name).value();
}

/// Same synthetic cliff oracle as the exec/core MAB tests: pure function of
/// (target_ghz, seed).
mc::FlowOracle cliff_oracle(double max_ghz, double noise = 0.03) {
  return [max_ghz, noise](double target_ghz, std::uint64_t seed) {
    Rng rng{seed};
    mf::FlowResult res;
    res.completed = true;
    const double margin = max_ghz + rng.gauss(0.0, noise) - target_ghz;
    res.timing_met = margin > 0.0;
    res.drc_clean = true;
    res.constraints_met = true;
    res.wns_ps = margin * 100.0;
    res.area_um2 = 1000.0;
    res.power_mw = target_ghz * 2.0;
    res.tat_minutes = 60.0;
    return res;
  };
}

/// Synthetic trajectory oracle: cost is a pure function of the flattened
/// knob assignment plus seed noise, so searches are deterministic and fast.
mc::TrajectoryOracle knob_oracle() {
  return [](const mf::FlowTrajectory& t, std::uint64_t seed) {
    Rng rng{seed};
    double score = 0.0;
    for (const auto& [name, value] : mf::flatten(t)) {
      std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a: platform-stable
      for (const char c : name + "=" + value) {
        h = (h ^ static_cast<unsigned char>(c)) * 0x100000001b3ULL;
      }
      Rng knob_rng{h};
      score += knob_rng.uniform() * 300.0;
    }
    mf::FlowResult res;
    res.completed = true;
    res.timing_met = true;
    res.drc_clean = true;
    res.constraints_met = true;
    res.area_um2 = 500.0 + score + rng.gauss(0.0, 5.0);
    res.power_mw = 10.0;
    res.tat_minutes = 30.0;
    return res;
  };
}

}  // namespace

// -------------------------------------------------------------- fingerprint

TEST(RunKeyFingerprint, IndependentOfKnobInsertionOrder) {
  ms::RunKey a;
  a.design = "jpeg";
  a.seed = 7;
  a.set("syn.effort", "high");
  a.set("place.density", "0.7");
  a.set("route.layers", "6");

  ms::RunKey b;
  b.design = "jpeg";
  b.seed = 7;
  b.set("route.layers", "6");
  b.set("syn.effort", "high");
  b.set("place.density", "0.7");

  EXPECT_EQ(a, b);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  EXPECT_EQ(a.fingerprint(), a.fingerprint());  // pure
}

TEST(RunKeyFingerprint, AnySingleComponentChangesTheHash) {
  ms::RunKey base;
  base.design = "jpeg";
  base.seed = 7;
  base.set("syn.effort", "high");
  base.set("place.density", "0.7");
  const std::uint64_t fp = base.fingerprint();

  ms::RunKey design = base;
  design.design = "aes";
  EXPECT_NE(design.fingerprint(), fp);

  ms::RunKey step = base;
  step.step = "route";
  EXPECT_NE(step.fingerprint(), fp);

  ms::RunKey seed = base;
  seed.seed = 8;
  EXPECT_NE(seed.fingerprint(), fp);

  ms::RunKey value = base;
  value.set("syn.effort", "low");
  EXPECT_NE(value.fingerprint(), fp);

  ms::RunKey extra = base;
  extra.set("cts.skew", "tight");
  EXPECT_NE(extra.fingerprint(), fp);

  // Knob name/value boundaries are length-prefixed: shuffling characters
  // between name and value must not collide.
  ms::RunKey shifted;
  shifted.design = "jpeg";
  shifted.seed = 7;
  shifted.set("syn.effor", "thigh");
  shifted.set("place.density", "0.7");
  EXPECT_NE(shifted.fingerprint(), fp);
}

TEST(RunKeyFingerprint, NumericKnobsUseCanonicalEncoding) {
  EXPECT_EQ(ms::canonical_number(2.0), "2");
  EXPECT_EQ(ms::canonical_number(0.5), "0.5");
  EXPECT_EQ(ms::canonical_number(1.0 / 3.0), ms::canonical_number(1.0 / 3.0));

  ms::RunKey a;
  a.set("target_ghz", 2.0);
  ms::RunKey b;
  b.set("target_ghz", "2");
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
}

TEST(RunKeyFingerprint, RecipeKeyFlattensTrajectoryAndContext) {
  const auto spaces = mf::default_knob_spaces();
  mf::FlowRecipe recipe;
  recipe.design.name = "soc";
  recipe.target_ghz = 1.5;
  recipe.knobs = mf::default_trajectory(spaces);
  recipe.seed = 11;

  const ms::RunKey key = ms::run_key_for(recipe);
  EXPECT_EQ(key.design, "soc");
  EXPECT_EQ(key.step, "flow");
  EXPECT_EQ(key.seed, 11u);
  EXPECT_EQ(key.knobs.at("target_ghz"), ms::canonical_number(1.5));
  for (const auto& [name, value] : mf::flatten(recipe.knobs)) {
    EXPECT_EQ(key.knobs.at(name), value);
  }

  mf::FlowRecipe other = recipe;
  other.knobs.set(mf::FlowStep::Place, "density", "different");
  EXPECT_NE(ms::run_key_for(other).fingerprint(), key.fingerprint());
}

// ------------------------------------------------------------ rng state json

TEST(RngStateJson, RoundTripsIncludingGaussSpare) {
  Rng a{5};
  (void)a.uniform();
  (void)a.gauss(0.0, 1.0);  // leaves the Marsaglia spare armed

  const maestro::util::Json j = ms::rng_state_to_json(a);
  Rng b{999};
  ASSERT_TRUE(ms::rng_state_from_json(b, j));
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(a.next(), b.next());
    EXPECT_EQ(a.gauss(0.0, 1.0), b.gauss(0.0, 1.0));
  }

  const maestro::util::Json bad =
      maestro::util::Json{maestro::util::JsonArray{maestro::util::Json{"1"}}};
  EXPECT_FALSE(ms::rng_state_from_json(b, bad));
}

// ------------------------------------------------------------------ RunStore

TEST(RunStore, AppendRecoverRoundTrip) {
  const std::string dir = temp_store("roundtrip");
  mm::Record rec;
  rec.run_id = 3;
  rec.design = "unit";
  rec.step = "flow";
  rec.values["area_um2"] = 123.0;
  {
    ms::RunStore store(dir);
    EXPECT_EQ(store.recovered_entries(), 0u);
    store.append_run(sample_run(1, 100.0));
    store.append_run(sample_run(2, 200.0));
    store.append_metric(rec);
    store.put_state("campaign", maestro::util::Json{"half-done"});
    EXPECT_EQ(store.wal_entries(), 4u);
  }
  ms::RunStore store(dir);
  EXPECT_EQ(store.recovered_entries(), 4u);
  EXPECT_EQ(store.wal_entries(), 0u);
  EXPECT_EQ(store.dropped_tail_bytes(), 0u);
  ASSERT_EQ(store.run_count(), 2u);
  ASSERT_EQ(store.metric_count(), 1u);

  const auto runs = store.runs();
  EXPECT_EQ(runs[0].key.seed, 1u);
  EXPECT_EQ(runs[0].fingerprint, runs[0].key.fingerprint());
  EXPECT_DOUBLE_EQ(runs[0].result.area_um2, 100.0);
  EXPECT_DOUBLE_EQ(runs[1].result.area_um2, 200.0);
  EXPECT_EQ(runs[1].key.knobs.at("place.effort"), "high");
  EXPECT_TRUE(runs[0].result.timing_met);

  const auto metrics = store.metric_records();
  EXPECT_EQ(metrics[0].design, "unit");
  EXPECT_DOUBLE_EQ(metrics[0].values.at("area_um2"), 123.0);

  const auto state = store.get_state("campaign");
  ASSERT_TRUE(state.has_value());
  EXPECT_EQ(state->as_string(), "half-done");
  EXPECT_FALSE(store.get_state("missing").has_value());
}

TEST(RunStore, StateLastWriteWins) {
  const std::string dir = temp_store("state_lww");
  {
    ms::RunStore store(dir);
    store.put_state("k", maestro::util::Json{1.0});
    store.put_state("k", maestro::util::Json{2.0});
    EXPECT_DOUBLE_EQ(store.get_state("k")->as_number(), 2.0);
  }
  ms::RunStore store(dir);
  EXPECT_DOUBLE_EQ(store.get_state("k")->as_number(), 2.0);
}

TEST(RunStore, KillTheWriterDropsOnlyTheTornTail) {
  const std::string dir = temp_store("torn_tail");
  ms::RunStoreOptions one_shard;
  one_shard.shards = 1;  // single WAL so the torn bytes land deterministically
  {
    ms::RunStore store(dir, one_shard);
    store.append_run(sample_run(1, 100.0));
    store.append_run(sample_run(2, 200.0));
    store.append_run(sample_run(3, 300.0));
  }
  // Simulate a writer killed mid-append: a torn, unterminated final record.
  const std::string partial = "deadbeef 40 {\"t\":\"run\",\"fp\":\"12";
  {
    std::ofstream wal(fs::path(dir) / "wal-00.jsonl", std::ios::app | std::ios::binary);
    wal << partial;
  }
  {
    ms::RunStore store(dir);
    EXPECT_EQ(store.run_count(), 3u);  // every complete record survives
    EXPECT_EQ(store.recovered_entries(), 3u);
    EXPECT_EQ(store.dropped_tail_bytes(), partial.size());
    EXPECT_DOUBLE_EQ(store.runs()[2].result.area_um2, 300.0);
    // The tail was truncated away, so post-recovery appends start clean.
    store.append_run(sample_run(4, 400.0));
  }
  ms::RunStore store(dir);
  EXPECT_EQ(store.run_count(), 4u);
  EXPECT_EQ(store.dropped_tail_bytes(), 0u);
  EXPECT_DOUBLE_EQ(store.runs()[3].result.area_um2, 400.0);
}

TEST(RunStore, CorruptMidFileLineIsSkippedNotFatal) {
  // The recovery bugfix this PR ships: a bad line in the *middle* of the
  // WAL no longer drops everything after it. The CRC frame classifies it
  // as corruption; replay skips it, counts store.corrupt_lines and keeps
  // every complete neighbour — before and after.
  const std::string dir = temp_store("mid_corrupt");
  ms::RunStoreOptions one_shard;
  one_shard.shards = 1;
  {
    ms::RunStore store(dir, one_shard);
    store.append_run(sample_run(1, 100.0));
    store.append_run(sample_run(2, 200.0));
    store.append_run(sample_run(3, 300.0));
  }
  // Flip one byte inside the *second* entry's payload.
  const fs::path wal = fs::path(dir) / "wal-00.jsonl";
  std::string bytes;
  {
    std::ifstream in(wal, std::ios::binary);
    bytes.assign((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  }
  const std::size_t first_nl = bytes.find('\n');
  ASSERT_NE(first_nl, std::string::npos);
  bytes[first_nl + 20] ^= 0x40;
  {
    std::ofstream out(wal, std::ios::trunc | std::ios::binary);
    out << bytes;
  }
  const std::uint64_t corrupt0 = counter("store.corrupt_lines");
  ms::RunStore store(dir);
  EXPECT_EQ(store.run_count(), 2u);  // entries 1 and 3 survive
  EXPECT_EQ(store.corrupt_lines(), 1u);
  EXPECT_EQ(counter("store.corrupt_lines"), corrupt0 + 1);
  EXPECT_EQ(store.dropped_tail_bytes(), 0u);  // not a tear: nothing truncated
  double areas = 0.0;
  for (const auto& run : store.runs()) areas += run.result.area_um2;
  EXPECT_DOUBLE_EQ(areas, 400.0);  // 100 + 300; the flipped 200 is gone
  // The store stays appendable and a reopen still sees both survivors.
  store.append_run(sample_run(4, 400.0));
  ms::RunStore reopened(dir);
  EXPECT_EQ(reopened.run_count(), 3u);
}

TEST(RunStore, UnframedGarbageLineIsCountedAndSkipped) {
  const std::string dir = temp_store("garbage_line");
  ms::RunStoreOptions one_shard;
  one_shard.shards = 1;
  {
    ms::RunStore store(dir, one_shard);
    store.append_run(sample_run(1, 100.0));
  }
  {
    std::ofstream wal(fs::path(dir) / "wal-00.jsonl", std::ios::app | std::ios::binary);
    wal << "not json at all\n";
    wal << "{\"t\":\"state\",\"key\":\"after\",\"value\":1}\n";  // unframed: invalid
  }
  // Both injected lines fail the CRC frame; both are skipped, neither kills
  // replay, and the complete first entry survives.
  ms::RunStore store(dir);
  EXPECT_EQ(store.run_count(), 1u);
  EXPECT_EQ(store.corrupt_lines(), 2u);
  EXPECT_FALSE(store.get_state("after").has_value());
  store.append_run(sample_run(2, 200.0));
  ms::RunStore reopened(dir);
  EXPECT_EQ(reopened.run_count(), 2u);
}

TEST(RunStore, CompactionFoldsWalIntoSnapshot) {
  const std::string dir = temp_store("compact");
  const std::uint64_t compactions0 = counter("store.compactions");
  ms::RunStoreOptions one_shard;
  one_shard.shards = 1;
  {
    ms::RunStore store(dir, one_shard);
    store.append_run(sample_run(1, 100.0));
    store.append_run(sample_run(2, 200.0));
    store.put_state("k", maestro::util::Json{"v1"});
    store.put_state("k", maestro::util::Json{"v2"});
    ASSERT_TRUE(store.compact());
    EXPECT_EQ(store.wal_entries(), 0u);
    EXPECT_TRUE(fs::exists(fs::path(dir) / "snapshot-00.jsonl"));
    EXPECT_FALSE(fs::exists(fs::path(dir) / "snapshot-00.jsonl.tmp"));
    EXPECT_EQ(fs::file_size(fs::path(dir) / "wal-00.jsonl"), 0u);
    // The store stays writable after compaction.
    store.append_run(sample_run(3, 300.0));
    EXPECT_EQ(store.wal_entries(), 1u);
  }
  EXPECT_EQ(counter("store.compactions"), compactions0 + 1);
  ms::RunStore store(dir);
  EXPECT_EQ(store.run_count(), 3u);
  // Compaction folds last-write-wins state: only one entry per key survives.
  EXPECT_EQ(store.get_state("k")->as_string(), "v2");
  EXPECT_EQ(store.recovered_entries(), 4u);  // 2 runs + 1 state + 1 WAL run
}

TEST(RunStore, ShardedLayoutAndMetaNegotiation) {
  const std::string dir = temp_store("sharded");
  {
    ms::RunStore store(dir);  // default: 8 shards
    EXPECT_EQ(store.shard_count(), 8u);
    for (int i = 0; i < 8; ++i) {
      char name[32];
      std::snprintf(name, sizeof(name), "wal-%02d.jsonl", i);
      EXPECT_TRUE(fs::exists(fs::path(dir) / name)) << name;
    }
    for (std::uint64_t seed = 1; seed <= 32; ++seed) {
      store.append_run(sample_run(seed, 100.0 + static_cast<double>(seed)));
    }
    EXPECT_EQ(store.run_count(), 32u);
  }
  // A reopen that *requests* a different shard count still honours the
  // directory's store.meta — every opener must agree on the layout.
  ms::RunStoreOptions other;
  other.shards = 2;
  ms::RunStore store(dir, other);
  EXPECT_EQ(store.shard_count(), 8u);
  EXPECT_EQ(store.recovered_entries(), 32u);
  EXPECT_EQ(store.run_count(), 32u);
  // Every appended run is findable by fingerprint regardless of shard.
  for (std::uint64_t seed = 1; seed <= 32; ++seed) {
    const auto want = sample_run(seed, 0.0).fingerprint;
    bool found = false;
    for (const auto& run : store.runs()) found = found || run.fingerprint == want;
    EXPECT_TRUE(found) << "seed " << seed;
  }
}

TEST(RunStore, FsyncPolicyCountsAndHonoursModes) {
  const std::uint64_t fsyncs0 = counter("store.fsyncs");
  {
    ms::RunStoreOptions opt;
    opt.shards = 1;
    opt.fsync = ms::FsyncMode::Always;
    ms::RunStore store(temp_store("fsync_always"), opt);
    store.append_run(sample_run(1, 1.0));
    store.append_run(sample_run(2, 2.0));
    store.append_run(sample_run(3, 3.0));
  }
  const std::uint64_t always = counter("store.fsyncs") - fsyncs0;
  EXPECT_GE(always, 3u);  // one per append

  const std::uint64_t fsyncs1 = counter("store.fsyncs");
  {
    ms::RunStoreOptions opt;
    opt.shards = 1;
    opt.fsync = ms::FsyncMode::Batch;
    opt.fsync_batch = 2;
    ms::RunStore store(temp_store("fsync_batch"), opt);
    for (std::uint64_t i = 1; i <= 6; ++i) store.append_run(sample_run(i, 1.0));
  }
  const std::uint64_t batch = counter("store.fsyncs") - fsyncs1;
  EXPECT_GE(batch, 3u);  // every 2nd append
  EXPECT_LT(batch, 6u);  // but strictly fewer than one per append

  const std::uint64_t fsyncs2 = counter("store.fsyncs");
  {
    ms::RunStoreOptions opt;
    opt.shards = 1;
    opt.fsync = ms::FsyncMode::Off;
    ms::RunStore store(temp_store("fsync_off"), opt);
    for (std::uint64_t i = 1; i <= 6; ++i) store.append_run(sample_run(i, 1.0));
  }
  EXPECT_EQ(counter("store.fsyncs") - fsyncs2, 0u);
}

TEST(RunStore, RefreshIngestsAnotherWritersAppends) {
  // Two RunStore instances over one directory model two processes sharing
  // it. B opens first, A appends, B.refresh() catches up without the lease.
  const std::string dir = temp_store("refresh");
  ms::RunStore a(dir);
  ms::RunStore b(dir);
  EXPECT_EQ(b.run_count(), 0u);
  a.append_run(sample_run(1, 100.0));
  a.append_run(sample_run(2, 200.0));
  a.put_state("owner", maestro::util::Json{"a"});
  EXPECT_EQ(b.run_count(), 0u);  // nothing until B looks
  EXPECT_EQ(b.refresh(), 3u);
  EXPECT_EQ(b.run_count(), 2u);
  ASSERT_TRUE(b.get_state("owner").has_value());
  EXPECT_EQ(b.get_state("owner")->as_string(), "a");
  EXPECT_EQ(b.refresh(), 0u);  // idempotent when nothing new arrived

  // Cross-writer interleaving: B appends too, then A catches up on its next
  // append (under the lease) — neither writer loses the other's entries.
  b.append_run(sample_run(3, 300.0));
  a.append_run(sample_run(4, 400.0));
  (void)a.refresh();
  EXPECT_EQ(a.run_count(), 4u);
  ms::RunStore fresh(dir);
  EXPECT_EQ(fresh.run_count(), 4u);
}

TEST(RunStore, RefreshReloadsAfterForeignCompaction) {
  const std::string dir = temp_store("refresh_compact");
  ms::RunStore a(dir);
  ms::RunStore b(dir);
  a.append_run(sample_run(1, 100.0));
  a.append_run(sample_run(2, 200.0));
  (void)b.refresh();
  EXPECT_EQ(b.run_count(), 2u);
  // A compacts: WALs shrink under B. B's next refresh must detect the
  // shrink and reload from the new snapshot instead of mis-reading offsets.
  ASSERT_TRUE(a.compact());
  a.append_run(sample_run(3, 300.0));
  (void)b.refresh();
  EXPECT_EQ(b.run_count(), 3u);
}

TEST(RunStore, CrashBetweenRenameAndTruncateDeduplicatesOnReplay) {
  // A compactor that dies after renaming the snapshot but before truncating
  // the WAL leaves every pre-compaction entry in *both* files. Replay must
  // not double them.
  const std::string dir = temp_store("compact_dup");
  ms::RunStoreOptions opt;
  opt.shards = 1;
  std::string wal_before;
  opt.compact_hook = [&](const char* phase, std::size_t) {
    if (std::string_view(phase) == "pre_truncate") {
      std::ifstream in(fs::path(dir) / "wal-00.jsonl", std::ios::binary);
      wal_before.assign((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    }
  };
  {
    ms::RunStore store(dir, opt);
    store.append_run(sample_run(1, 100.0));
    store.append_run(sample_run(2, 200.0));
    ASSERT_TRUE(store.compact());
  }
  ASSERT_FALSE(wal_before.empty());
  {
    // Re-materialize the pre-truncate WAL: snapshot and WAL now both carry
    // both entries, exactly the crashed-compactor state.
    std::ofstream out(fs::path(dir) / "wal-00.jsonl", std::ios::trunc | std::ios::binary);
    out << wal_before;
  }
  ms::RunStore store(dir);
  EXPECT_EQ(store.run_count(), 2u);  // deduplicated, not 4
  EXPECT_EQ(store.corrupt_lines(), 0u);
  double areas = 0.0;
  for (const auto& run : store.runs()) areas += run.result.area_um2;
  EXPECT_DOUBLE_EQ(areas, 300.0);
}

TEST(RunStore, ConcurrentAppendsAreThreadSafe) {
  const std::string dir = temp_store("concurrent");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 25;
  {
    ms::RunStore store(dir);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&store, t] {
        for (int i = 0; i < kPerThread; ++i) {
          const auto n = static_cast<std::uint64_t>(t * kPerThread + i);
          store.append_run(sample_run(n, 100.0 + static_cast<double>(n)));
          mm::Record rec;
          rec.design = "unit";
          rec.step = "flow";
          rec.values["n"] = static_cast<double>(n);
          store.append_metric(rec);
          store.put_state("t" + std::to_string(t), maestro::util::Json{static_cast<double>(i)});
        }
      });
    }
    for (auto& th : threads) th.join();
    EXPECT_EQ(store.run_count(), static_cast<std::size_t>(kThreads * kPerThread));
    EXPECT_EQ(store.metric_count(), static_cast<std::size_t>(kThreads * kPerThread));
  }
  ms::RunStore store(dir);
  EXPECT_EQ(store.run_count(), static_cast<std::size_t>(kThreads * kPerThread));
  EXPECT_EQ(store.metric_count(), static_cast<std::size_t>(kThreads * kPerThread));
  EXPECT_EQ(store.dropped_tail_bytes(), 0u);
  for (int t = 0; t < kThreads; ++t) {
    const auto v = store.get_state("t" + std::to_string(t));
    ASSERT_TRUE(v.has_value());
    EXPECT_DOUBLE_EQ(v->as_number(), kPerThread - 1.0);
  }
}

// ------------------------------------------------------------------ RunCache

TEST(RunCache, LookupInsertAndCounters) {
  const std::string dir = temp_store("cache_basic");
  ms::RunStore store(dir);
  ms::RunCache cache(store);

  ms::RunKey key;
  key.design = "unit";
  key.seed = 9;
  const std::uint64_t fp = key.fingerprint();

  const std::uint64_t miss0 = counter("store.cache_miss");
  const std::uint64_t hit0 = counter("store.cache_hit");
  EXPECT_FALSE(cache.lookup(fp).has_value());
  EXPECT_EQ(counter("store.cache_miss"), miss0 + 1);

  cache.insert(fp, key, sample_result(77.0));
  const auto hit = cache.lookup(fp);
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(hit->area_um2, 77.0);
  EXPECT_EQ(counter("store.cache_hit"), hit0 + 1);
  EXPECT_EQ(cache.size(), 1u);
  // Inserts write through to the backing store.
  EXPECT_EQ(store.run_count(), 1u);
}

TEST(RunCache, WarmStartsFromExistingStore) {
  const std::string dir = temp_store("cache_warm");
  {
    ms::RunStore store(dir);
    store.append_run(sample_run(1, 111.0));
    store.append_run(sample_run(2, 222.0));
  }
  ms::RunStore store(dir);
  ms::RunCache cache(store);
  EXPECT_EQ(cache.size(), 2u);
  const auto hit = cache.lookup(sample_run(2, 0.0).fingerprint);
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(hit->area_um2, 222.0);
}

// ----------------------------------------------------- executor memoization

TEST(SubmitMemo, SecondSubmitResolvesFromCacheWithoutExecuting) {
  const std::string dir = temp_store("memo");
  ms::RunStore store(dir);
  ms::RunCache cache(store);
  ms::RunKey key;
  key.design = "unit";
  key.seed = 4;
  const ms::KeyedRunCache keyed{cache, key};

  mx::RunExecutor pool{{.threads = 2}};
  std::atomic<int> executions{0};
  auto body = [&executions](mx::RunContext&) {
    executions.fetch_add(1);
    return sample_result(55.0);
  };

  const std::uint64_t hits0 = counter("exec.cache_hits");
  auto first = pool.submit_memo("memo", key.seed, keyed.fingerprint(), keyed, body);
  EXPECT_DOUBLE_EQ(first.get().area_um2, 55.0);
  auto second = pool.submit_memo("memo", key.seed, keyed.fingerprint(), keyed, body);
  EXPECT_DOUBLE_EQ(second.get().area_um2, 55.0);

  EXPECT_EQ(executions.load(), 1);
  EXPECT_EQ(counter("exec.cache_hits"), hits0 + 1);

  // The hit is journaled as a zero-wall-time completed run, note "cache_hit".
  const auto records = pool.journal().snapshot();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[1].state, mx::RunState::Completed);
  EXPECT_EQ(records[1].note, "cache_hit");
  EXPECT_DOUBLE_EQ(records[1].wall_ms(), 0.0);
}

TEST(SubmitMemo, CancelledRunDoesNotPoisonTheCache) {
  const std::string dir = temp_store("memo_cancel");
  ms::RunStore store(dir);
  ms::RunCache cache(store);
  ms::RunKey key;
  key.design = "unit";
  key.seed = 6;
  const ms::KeyedRunCache keyed{cache, key};

  mx::RunExecutor pool{{.threads = 1}};
  auto body = [](mx::RunContext& ctx) {
    ctx.cancel.request_cancel();  // a guard killed this run mid-flight
    return sample_result(1.0);    // partial result
  };
  auto fut = pool.submit_memo("doomed", key.seed, keyed.fingerprint(), keyed, body);
  (void)fut.get();

  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(store.run_count(), 0u);
  EXPECT_FALSE(cache.lookup(keyed.fingerprint()).has_value());
}

// -------------------------------------------------------- metrics sink bridge

TEST(MetricsSink, ServerSubmissionsPersistToTheStore) {
  const std::string dir = temp_store("sink");
  {
    mm::Server server;
    ms::RunStore store(dir);
    ms::bind_metrics_sink(server, store);

    mm::Record rec;
    rec.design = "soc";
    rec.step = "flow";
    rec.values["wns_ps"] = -3.0;
    const std::uint64_t id = server.submit(rec);
    EXPECT_GT(id, 0u);
    EXPECT_EQ(store.metric_count(), 1u);
    // The sink sees the record after id assignment.
    EXPECT_EQ(store.metric_records()[0].run_id, id);

    server.set_sink(nullptr);  // detach before the store dies
    server.submit(rec);
    EXPECT_EQ(server.size(), 2u);
    EXPECT_EQ(store.metric_count(), 1u);
  }
  ms::RunStore store(dir);
  ASSERT_EQ(store.metric_count(), 1u);
  EXPECT_EQ(store.metric_records()[0].design, "soc");
  EXPECT_DOUBLE_EQ(store.metric_records()[0].values.at("wns_ps"), -3.0);
}

// ------------------------------------------------------- MAB checkpoint/resume

namespace {

mc::MabOptions mab_base_options() {
  mc::MabOptions opt;
  opt.frequency_arms_ghz = mc::frequency_arms(1.0, 2.0, 5);
  opt.iterations = 6;
  opt.concurrency = 3;
  opt.algorithm = mc::MabAlgorithm::Thompson;
  return opt;
}

void expect_same_mab_result(const mc::MabRunResult& a, const mc::MabRunResult& b) {
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    EXPECT_EQ(a.samples[i].iteration, b.samples[i].iteration);
    EXPECT_EQ(a.samples[i].frequency_ghz, b.samples[i].frequency_ghz);  // bitwise
    EXPECT_EQ(a.samples[i].success, b.samples[i].success);
    EXPECT_EQ(a.samples[i].reward, b.samples[i].reward);
  }
  EXPECT_EQ(a.best_per_iteration, b.best_per_iteration);
  EXPECT_EQ(a.best_feasible_ghz, b.best_feasible_ghz);
  EXPECT_EQ(a.total_runs, b.total_runs);
  EXPECT_EQ(a.successful_runs, b.successful_runs);
  EXPECT_EQ(a.total_regret, b.total_regret);
}

}  // namespace

TEST(MabResume, InterruptedCampaignMatchesUninterruptedBitwise) {
  const auto oracle = cliff_oracle(1.6);

  mc::MabOptions uninterrupted = mab_base_options();
  Rng rng_full{99};
  const auto full = mc::MabScheduler(uninterrupted).run(oracle, rng_full);

  const std::string dir = temp_store("mab_resume");
  ms::RunStore store(dir);

  // First half: dies (returns) after 3 of 6 iterations, checkpointing as it
  // goes.
  mc::MabOptions half = mab_base_options();
  half.iterations = 3;
  half.checkpoint = &store;
  half.campaign_id = "campaign-A";
  Rng rng_half{99};
  const auto partial = mc::MabScheduler(half).run(oracle, rng_half);
  EXPECT_EQ(partial.samples.size(), 3u * half.concurrency);
  ASSERT_TRUE(store.get_state("mab:campaign-A").has_value());

  // Resume with the full iteration budget; the initial rng is irrelevant —
  // the checkpoint restores the campaign's own random stream.
  mc::MabOptions resumed = mab_base_options();
  resumed.checkpoint = &store;
  resumed.campaign_id = "campaign-A";
  const std::uint64_t resumes0 = counter("store.campaign_resumed");
  Rng rng_resume{12345};
  const auto cont = mc::MabScheduler(resumed).run(oracle, rng_resume);
  EXPECT_EQ(counter("store.campaign_resumed"), resumes0 + 1);

  expect_same_mab_result(full, cont);
}

TEST(MabResume, FinishedCampaignShortCircuits) {
  const auto oracle = cliff_oracle(1.6);
  const std::string dir = temp_store("mab_finished");
  ms::RunStore store(dir);

  mc::MabOptions opt = mab_base_options();
  opt.checkpoint = &store;
  opt.campaign_id = "done";
  Rng rng{7};
  const auto first = mc::MabScheduler(opt).run(oracle, rng);

  const std::size_t runs_before = store.run_count();
  Rng rng2{8};
  const auto again = mc::MabScheduler(opt).run(oracle, rng2);
  expect_same_mab_result(first, again);
  EXPECT_EQ(store.run_count(), runs_before);  // nothing re-executed
}

TEST(MabResume, MismatchedOptionsStartFresh) {
  const auto oracle = cliff_oracle(1.6);
  const std::string dir = temp_store("mab_mismatch");
  ms::RunStore store(dir);

  mc::MabOptions opt = mab_base_options();
  opt.iterations = 3;
  opt.checkpoint = &store;
  opt.campaign_id = "shape";
  Rng rng{7};
  (void)mc::MabScheduler(opt).run(oracle, rng);

  // Different arm set: the persisted posteriors no longer apply; the
  // campaign must restart rather than resume into the wrong shape.
  mc::MabOptions changed = mab_base_options();
  changed.frequency_arms_ghz = mc::frequency_arms(1.0, 2.0, 7);
  changed.iterations = 3;
  changed.checkpoint = &store;
  changed.campaign_id = "shape";
  Rng rng2{7};
  const auto fresh = mc::MabScheduler(changed).run(oracle, rng2);
  EXPECT_EQ(fresh.total_runs, changed.iterations * changed.concurrency);
  EXPECT_EQ(fresh.samples.front().iteration, 0u);
}

// ------------------------------------------------------- FTS checkpoint/resume

TEST(FtsResume, InterruptedSearchMatchesUninterruptedBitwise) {
  const auto spaces = mf::default_knob_spaces();
  const auto oracle = knob_oracle();

  mc::FlowSearchOptions base;
  base.strategy = mc::SearchStrategy::Gwtw;
  base.population = 4;
  base.rounds = 4;
  base.mutations_per_round = 2;

  Rng rng_full{7};
  const auto full = mc::FlowTreeSearch(spaces, base).run(oracle, rng_full);

  const std::string dir = temp_store("fts_resume");
  ms::RunStore store(dir);

  mc::FlowSearchOptions half = base;
  half.rounds = 2;
  half.checkpoint = &store;
  half.campaign_id = "search-A";
  Rng rng_half{7};
  const auto partial = mc::FlowTreeSearch(spaces, half).run(oracle, rng_half);
  EXPECT_EQ(partial.best_per_round.size(), 2u);
  ASSERT_TRUE(store.get_state("fts:search-A").has_value());

  mc::FlowSearchOptions resumed = base;
  resumed.checkpoint = &store;
  resumed.campaign_id = "search-A";
  Rng rng_resume{424242};
  const auto cont = mc::FlowTreeSearch(spaces, resumed).run(oracle, rng_resume);

  ASSERT_EQ(cont.best_per_round.size(), full.best_per_round.size());
  EXPECT_EQ(cont.best_per_round, full.best_per_round);  // bitwise doubles
  EXPECT_EQ(cont.best_cost, full.best_cost);
  EXPECT_EQ(cont.flow_runs, full.flow_runs);
  EXPECT_EQ(mf::flatten(cont.best_trajectory), mf::flatten(full.best_trajectory));
}

// --------------------------------------------- repeated campaigns hit the cache

TEST(RepeatedCampaign, SecondMabPassExecutesFarFewerRuns) {
  const auto oracle = cliff_oracle(1.6);
  const std::string dir = temp_store("repeat_mab");
  ms::RunStore store(dir);

  mc::MabOptions opt = mab_base_options();
  opt.iterations = 5;
  opt.cache_key.design = "repeat";

  const std::uint64_t miss0 = counter("store.cache_miss");
  ms::RunCache first_cache(store);
  opt.cache = &first_cache;
  Rng rng1{7};
  const auto first = mc::MabScheduler(opt).run(oracle, rng1);
  const std::uint64_t first_misses = counter("store.cache_miss") - miss0;
  EXPECT_EQ(first_misses, first.total_runs);  // cold store: every run executed

  // Second campaign, same knobs and seed, fresh cache over the same store:
  // every run is answered from the store. The acceptance bar is >= 30% fewer
  // executed (non-cached) runs; identical campaigns achieve 100%.
  const std::uint64_t miss1 = counter("store.cache_miss");
  const std::uint64_t hit1 = counter("store.cache_hit");
  ms::RunCache second_cache(store);
  opt.cache = &second_cache;
  Rng rng2{7};
  const auto second = mc::MabScheduler(opt).run(oracle, rng2);
  const std::uint64_t second_misses = counter("store.cache_miss") - miss1;
  const std::uint64_t second_hits = counter("store.cache_hit") - hit1;

  EXPECT_LE(10 * second_misses, 7 * first_misses);  // >= 30% fewer executions
  EXPECT_EQ(second_misses, 0u);
  EXPECT_EQ(second_hits, second.total_runs);
  expect_same_mab_result(first, second);  // memoized results are bit-identical
}

TEST(RepeatedCampaign, SecondFtsPassHitsTheCacheSerially) {
  const auto spaces = mf::default_knob_spaces();
  const auto oracle = knob_oracle();
  const std::string dir = temp_store("repeat_fts");
  ms::RunStore store(dir);

  mc::FlowSearchOptions opt;
  opt.strategy = mc::SearchStrategy::RandomMultistart;
  opt.population = 3;
  opt.rounds = 3;
  opt.cache_key.design = "repeat";

  const std::uint64_t miss0 = counter("store.cache_miss");
  ms::RunCache first_cache(store);
  opt.cache = &first_cache;
  Rng rng1{11};
  const auto first = mc::FlowTreeSearch(spaces, opt).run(oracle, rng1);
  const std::uint64_t first_misses = counter("store.cache_miss") - miss0;
  EXPECT_EQ(first_misses, first.flow_runs);

  const std::uint64_t miss1 = counter("store.cache_miss");
  ms::RunCache second_cache(store);
  opt.cache = &second_cache;
  Rng rng2{11};
  const auto second = mc::FlowTreeSearch(spaces, opt).run(oracle, rng2);
  const std::uint64_t second_misses = counter("store.cache_miss") - miss1;

  EXPECT_LE(10 * second_misses, 7 * first_misses);
  EXPECT_EQ(second_misses, 0u);
  EXPECT_EQ(second.best_cost, first.best_cost);
}

// ------------------------------------------------------------- WAL framing

TEST(WalFrame, EncodeDecodeRoundTrip) {
  const std::string payload = "{\"t\":\"run\",\"fp\":\"42\"}";
  const std::string line = ms::wal_frame::encode(payload);
  ASSERT_FALSE(line.empty());
  EXPECT_EQ(line.back(), '\n');
  const auto decoded = ms::wal_frame::decode(
      std::string_view(line).substr(0, line.size() - 1));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, payload);
}

TEST(WalFrame, RejectsEveryKindOfDamage) {
  const std::string line = ms::wal_frame::encode("{\"k\":1}");
  const std::string_view body = std::string_view(line).substr(0, line.size() - 1);
  // Pristine decodes; then flip any single byte and it must not.
  ASSERT_TRUE(ms::wal_frame::decode(body).has_value());
  for (std::size_t i = 0; i < body.size(); ++i) {
    std::string damaged(body);
    damaged[i] ^= 0x01;
    EXPECT_FALSE(ms::wal_frame::decode(damaged).has_value()) << "byte " << i;
  }
  // Truncations, unframed text, and empty lines are all rejected too.
  for (std::size_t i = 0; i < body.size(); ++i) {
    EXPECT_FALSE(ms::wal_frame::decode(body.substr(0, i)).has_value());
  }
  EXPECT_FALSE(ms::wal_frame::decode("not a frame").has_value());
  EXPECT_FALSE(ms::wal_frame::decode("").has_value());
}

TEST(WalFrame, Crc32MatchesKnownVector) {
  // The classic zlib check value: crc32("123456789") == 0xcbf43926.
  EXPECT_EQ(ms::wal_frame::crc32("123456789"), 0xcbf43926u);
  EXPECT_EQ(ms::wal_frame::crc32(""), 0x00000000u);
}

// ------------------------------------------------- cache server + remote

namespace {

std::string temp_socket(const char* tag) {
  return "/tmp/maestro_store_" + std::string(tag) + "_" +
         std::to_string(::getpid()) + ".sock";
}

}  // namespace

TEST(CacheServer, ServesHitsAcrossClientsWithTenantAttribution) {
  const std::string dir = temp_store("srv_basic");
  ms::RunStore store(dir);
  ms::RunCache cache(store);
  const auto run = sample_run(1, 123.0);
  cache.insert(run.fingerprint, run.key, run.result);

  const std::string sock = temp_socket("basic");
  ms::CacheServer server(cache, {.socket_path = sock});
  ASSERT_TRUE(server.start());

  ms::RemoteCacheOptions opt_a;
  opt_a.socket_path = sock;
  opt_a.tenant = "team-a";
  ms::RemoteRunCache a(opt_a);
  ms::RemoteCacheOptions opt_b;
  opt_b.socket_path = sock;
  opt_b.tenant = "team-b";
  ms::RemoteRunCache b(opt_b);

  // Both clients see team-local work through the shared tier.
  const auto hit_a = a.lookup(run.fingerprint);
  ASSERT_TRUE(hit_a.has_value());
  EXPECT_DOUBLE_EQ(hit_a->area_um2, 123.0);
  ASSERT_TRUE(b.lookup(run.fingerprint).has_value());
  ASSERT_TRUE(b.lookup(run.fingerprint).has_value());
  EXPECT_EQ(a.remote_hits(), 1u);
  EXPECT_EQ(b.remote_hits(), 2u);
  EXPECT_FALSE(a.lookup(999999).has_value());

  const auto tenants = server.tenant_hits();
  ASSERT_TRUE(tenants.count("team-a"));
  ASSERT_TRUE(tenants.count("team-b"));
  EXPECT_EQ(tenants.at("team-a"), 1u);
  EXPECT_EQ(tenants.at("team-b"), 2u);
  EXPECT_EQ(server.hits(), 3u);
  EXPECT_EQ(server.misses(), 1u);
  server.stop();
}

TEST(CacheServer, InsertIsVisibleToOtherClientsButResidencyOnly) {
  const std::string dir = temp_store("srv_insert");
  ms::RunStore store(dir);
  ms::RunCache cache(store);
  const std::string sock = temp_socket("insert");
  ms::CacheServer server(cache, {.socket_path = sock});
  ASSERT_TRUE(server.start());

  // Writer's local rung is its own store-backed cache in a *different* dir,
  // modelling a fleet without a shared store directory.
  const std::string wdir = temp_store("srv_insert_writer");
  ms::RunStore wstore(wdir);
  ms::RunCache wcache(wstore);
  ms::RemoteRunCache writer({.socket_path = sock, .tenant = "writer"}, &wcache);
  const auto run = sample_run(7, 77.0);
  writer.insert(run.fingerprint, run.key, run.result);
  EXPECT_EQ(wstore.run_count(), 1u);  // durability rung: the writer's store
  EXPECT_EQ(store.run_count(), 0u);   // server never writes through

  ms::RemoteRunCache reader({.socket_path = sock, .tenant = "reader"});
  const auto hit = reader.lookup(run.fingerprint);
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(hit->area_um2, 77.0);
  EXPECT_EQ(server.inserts(), 1u);
  server.stop();
}

TEST(CacheServer, LruEvictionAndTtlExpiryStayBounded) {
  const std::string dir = temp_store("srv_evict");
  ms::RunStore store(dir);
  ms::RunCache cache(store);
  const std::string sock = temp_socket("evict");
  ms::CacheServer server(cache, {.socket_path = sock, .max_entries = 2, .ttl_ms = 0.0});
  ASSERT_TRUE(server.start());

  ms::RemoteRunCache client({.socket_path = sock});
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto run = sample_run(seed, static_cast<double>(seed));
    client.insert(run.fingerprint, run.key, run.result);
  }
  EXPECT_EQ(server.inserts(), 5u);
  EXPECT_GE(server.evictions(), 3u);  // capacity 2, five inserts

  // Evicted entries are refilled from the backing RunCache when the store
  // has them; this writer had no store, so a *fresh* reader (no memory rung
  // of its own) sees plain misses for the evicted entries.
  ms::RemoteRunCache reader({.socket_path = sock});
  const auto oldest = sample_run(1, 0.0);
  EXPECT_FALSE(reader.lookup(oldest.fingerprint).has_value());
  const auto newest = sample_run(5, 0.0);
  EXPECT_TRUE(reader.lookup(newest.fingerprint).has_value());
  // The writer itself still answers everything from its memory rung.
  EXPECT_TRUE(client.lookup(oldest.fingerprint).has_value());
  server.stop();
}

TEST(CacheServer, TtlExpiryRefetchesFromBackingStore) {
  const std::string dir = temp_store("srv_ttl");
  ms::RunStore store(dir);
  ms::RunCache cache(store);
  const auto run = sample_run(3, 33.0);
  cache.insert(run.fingerprint, run.key, run.result);  // durable

  const std::string sock = temp_socket("ttl");
  ms::CacheServer server(cache, {.socket_path = sock, .ttl_ms = 5.0});
  ASSERT_TRUE(server.start());
  ms::RemoteRunCache client({.socket_path = sock});
  ASSERT_TRUE(client.lookup(run.fingerprint).has_value());  // now resident
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  // Expired in the LRU, but the store is authoritative: still a hit.
  const std::uint64_t expired0 = counter("store.server_expired");
  ASSERT_TRUE(client.lookup(run.fingerprint).has_value());
  EXPECT_EQ(counter("store.server_expired"), expired0 + 1);
  server.stop();
}

TEST(RemoteCache, DeadServerDegradesToLocalThenGivesUp) {
  const std::string dir = temp_store("remote_dead");
  ms::RunStore store(dir);
  ms::RunCache local(store);
  const auto run = sample_run(2, 22.0);
  local.insert(run.fingerprint, run.key, run.result);

  ms::RemoteCacheOptions opt;
  opt.socket_path = "/tmp/maestro_no_such_server.sock";
  opt.reconnect.max_attempts = 3;
  opt.reconnect.backoff_ms = 0.0;
  ms::RemoteRunCache client(opt, &local);

  // Every lookup still answers from the local rung, immediately.
  for (int i = 0; i < 6; ++i) {
    const auto hit = client.lookup(run.fingerprint);
    ASSERT_TRUE(hit.has_value());
    EXPECT_DOUBLE_EQ(hit->area_um2, 22.0);
  }
  EXPECT_FALSE(client.connected());
  EXPECT_TRUE(client.gave_up());  // after max_attempts consecutive failures
  EXPECT_LE(client.remote_errors(), 3u);

  // Inserts keep landing in the durable local rung while degraded.
  const auto run2 = sample_run(9, 99.0);
  client.insert(run2.fingerprint, run2.key, run2.result);
  EXPECT_EQ(store.run_count(), 2u);
}

TEST(RemoteCache, GarbageRepliesTripDegradationNotCrashes) {
  const std::string dir = temp_store("remote_garbage");
  ms::RunStore store(dir);
  ms::RunCache cache(store);
  const auto run = sample_run(4, 44.0);
  cache.insert(run.fingerprint, run.key, run.result);

  const std::string sock = temp_socket("garbage");
  ms::CacheServer server(cache, {.socket_path = sock});
  ASSERT_TRUE(server.start());

  // Every reply is corrupted: the frame arrives but the payload is garbage.
  auto plan = *maestro::resil::FaultPlan::parse("corrupt=1.0,seed=5,sites=store.server");
  maestro::resil::FaultInjector::install(plan);

  ms::RemoteCacheOptions opt;
  opt.socket_path = sock;
  opt.reconnect.max_attempts = 2;
  opt.reconnect.backoff_ms = 0.0;
  ms::RemoteRunCache client(opt, &cache);
  // Remote is useless, local rung still answers every time.
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(client.lookup(run.fingerprint).has_value());
  }
  EXPECT_GE(client.remote_errors(), 1u);
  maestro::resil::FaultInjector::clear();
  server.stop();
}

TEST(RemoteCache, ReconnectsAfterServerRestart) {
  const std::string dir = temp_store("remote_restart");
  ms::RunStore store(dir);
  ms::RunCache cache(store);
  const auto run = sample_run(6, 66.0);
  cache.insert(run.fingerprint, run.key, run.result);

  const std::string sock = temp_socket("restart");
  ms::RemoteCacheOptions opt;
  opt.socket_path = sock;
  opt.reconnect.max_attempts = 100;
  opt.reconnect.backoff_ms = 0.0;
  ms::RemoteRunCache client(opt, &cache);

  // Server not up yet: local answers, connection fails quietly.
  ASSERT_TRUE(client.lookup(run.fingerprint).has_value());
  EXPECT_FALSE(client.connected());

  ms::CacheServer server(cache, {.socket_path = sock});
  ASSERT_TRUE(server.start());
  client.reset_backoff();
  ASSERT_TRUE(client.lookup(run.fingerprint).has_value());
  EXPECT_TRUE(client.connected());
  EXPECT_GE(client.remote_hits(), 1u);
  server.stop();
}

TEST(RemoteCache, MabCampaignOverDegradedRemoteMatchesLocalBitwise) {
  // The acceptance bar: a campaign whose cache tier lost its server finishes
  // bitwise-identically to one that never had a server — the cache can only
  // skip work, never change results.
  const auto oracle = cliff_oracle(1.6);

  const std::string dir_local = temp_store("degraded_local");
  ms::RunStore store_local(dir_local);
  ms::RunCache cache_local(store_local);
  mc::MabOptions opt = mab_base_options();
  opt.cache = &cache_local;
  opt.cache_key.design = "degraded";
  Rng rng1{42};
  const auto plain = mc::MabScheduler(opt).run(oracle, rng1);

  const std::string dir_remote = temp_store("degraded_remote");
  ms::RunStore store_remote(dir_remote);
  ms::RunCache fallback(store_remote);
  ms::RemoteCacheOptions ropt;
  ropt.socket_path = "/tmp/maestro_no_such_server.sock";
  ropt.reconnect.max_attempts = 2;
  ropt.reconnect.backoff_ms = 0.0;
  ms::RemoteRunCache remote(ropt, &fallback);
  mc::MabOptions opt2 = mab_base_options();
  opt2.cache = &remote;
  opt2.cache_key.design = "degraded";
  Rng rng2{42};
  const auto degraded = mc::MabScheduler(opt2).run(oracle, rng2);

  expect_same_mab_result(plain, degraded);
  EXPECT_TRUE(remote.gave_up());
  EXPECT_EQ(store_remote.run_count(), store_local.run_count());
}
