// Fleet chaos tests for maestro::store — kill -9 real writer processes
// mid-append and mid-compaction, flip random bytes in WAL and snapshot
// files, run ≥4 concurrent writer processes over one store directory, serve
// a multi-process cache fleet, and show that campaigns finish
// bitwise-identically when the store or the cache server is degraded.
//
// This file builds as its own binary (maestro_store_fleet_tests) with its
// own main(): the binary doubles as every child process role
// (--fleet-writer, --fleet-killme, --fleet-compact, --fleet-cache-client),
// re-exec'd via /proc/self/exe. Labeled "store_chaos" so the suite can run
// in isolation and under -DMAESTRO_SANITIZE=thread:
//   ctest -L store_chaos

#include <gtest/gtest.h>
#include <signal.h>
#include <spawn.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "core/mab_scheduler.hpp"
#include "obs/registry.hpp"
#include "resil/fault.hpp"
#include "store/cache_server.hpp"
#include "store/remote_cache.hpp"
#include "store/run_cache.hpp"
#include "store/run_store.hpp"
#include "store/wal_frame.hpp"
#include "util/rng.hpp"

extern char** environ;

namespace fs = std::filesystem;
namespace mc = maestro::core;
namespace mf = maestro::flow;
namespace ms = maestro::store;
using maestro::util::Rng;

namespace {

std::string temp_store(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / "maestro_fleet_tests" / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

std::string temp_socket(const char* tag) {
  return "/tmp/maestro_fleet_" + std::string(tag) + "_" +
         std::to_string(::getpid()) + ".sock";
}

ms::StoredRun fleet_run(std::uint64_t seed, double area) {
  ms::StoredRun run;
  run.key.design = "fleet";
  run.key.seed = seed;
  run.key.set("place.effort", "high");
  run.fingerprint = run.key.fingerprint();
  run.result.completed = true;
  run.result.timing_met = true;
  run.result.drc_clean = true;
  run.result.constraints_met = true;
  run.result.area_um2 = area;
  run.result.tat_minutes = 1.0;
  return run;
}

/// Spawn this binary again as `argv` (argv[0] is a display name); returns pid.
pid_t spawn_self(const std::vector<std::string>& args) {
  std::vector<const char*> argv;
  argv.reserve(args.size() + 1);
  for (const auto& a : args) argv.push_back(a.c_str());
  argv.push_back(nullptr);
  pid_t pid = -1;
  const int rc = ::posix_spawn(&pid, "/proc/self/exe", nullptr, nullptr,
                               const_cast<char* const*>(argv.data()), environ);
  return rc == 0 ? pid : -1;
}

int wait_status(pid_t pid) {
  int status = -1;
  if (::waitpid(pid, &status, 0) != pid) return -1;
  return status;
}

/// Count intact framed payload lines across every WAL and snapshot file in
/// `dir` — ground truth for "zero complete records lost".
std::size_t intact_lines(const std::string& dir) {
  std::size_t n = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("wal-", 0) != 0 && name.rfind("snapshot-", 0) != 0) continue;
    std::ifstream in(entry.path(), std::ios::binary);
    std::string line;
    while (std::getline(in, line)) {
      if (ms::wal_frame::decode(line).has_value()) ++n;
    }
  }
  return n;
}

mc::FlowOracle cliff_oracle(double max_ghz, double noise = 0.03) {
  return [max_ghz, noise](double target_ghz, std::uint64_t seed) {
    Rng rng{seed};
    mf::FlowResult res;
    res.completed = true;
    const double margin = max_ghz + rng.gauss(0.0, noise) - target_ghz;
    res.timing_met = margin > 0.0;
    res.drc_clean = true;
    res.constraints_met = true;
    res.wns_ps = margin * 100.0;
    res.area_um2 = 1000.0;
    res.power_mw = target_ghz * 2.0;
    res.tat_minutes = 60.0;
    return res;
  };
}

mc::MabOptions mab_base_options() {
  mc::MabOptions opt;
  opt.frequency_arms_ghz = mc::frequency_arms(1.0, 2.0, 5);
  opt.iterations = 6;
  opt.concurrency = 3;
  opt.algorithm = mc::MabAlgorithm::Thompson;
  return opt;
}

void expect_same_mab_result(const mc::MabRunResult& a, const mc::MabRunResult& b) {
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    EXPECT_EQ(a.samples[i].iteration, b.samples[i].iteration);
    EXPECT_EQ(a.samples[i].frequency_ghz, b.samples[i].frequency_ghz);  // bitwise
    EXPECT_EQ(a.samples[i].success, b.samples[i].success);
    EXPECT_EQ(a.samples[i].reward, b.samples[i].reward);
  }
  EXPECT_EQ(a.best_per_iteration, b.best_per_iteration);
  EXPECT_EQ(a.best_feasible_ghz, b.best_feasible_ghz);
  EXPECT_EQ(a.total_runs, b.total_runs);
  EXPECT_EQ(a.successful_runs, b.successful_runs);
  EXPECT_EQ(a.total_regret, b.total_regret);
}

}  // namespace

// --------------------------------------------------------- kill -9 writers

TEST(FleetChaos, Kill9MidAppendLosesNoCompleteRecord) {
  const std::string dir = temp_store("kill9_append");
  const pid_t pid = spawn_self({"fleet-killme", "--fleet-killme", dir});
  ASSERT_GT(pid, 0);
  // Let it stream appends for a while, then SIGKILL mid-flight.
  ::usleep(150 * 1000);
  ASSERT_EQ(::kill(pid, SIGKILL), 0);
  const int status = wait_status(pid);
  ASSERT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(WTERMSIG(status), SIGKILL);

  const std::size_t complete = intact_lines(dir);
  ASSERT_GT(complete, 0u) << "child never got an append out";

  ms::RunStore store(dir);
  // Every complete record survives; at most a torn tail is dropped, and a
  // tear is the only damage a SIGKILL can leave.
  EXPECT_EQ(store.recovered_entries(), complete);
  EXPECT_EQ(store.run_count(), complete);
  EXPECT_EQ(store.corrupt_lines(), 0u);
  // The dead writer's lease is stale; a new writer takes over cleanly.
  store.append_run(fleet_run(1000000, 1.0));
  EXPECT_FALSE(store.degraded());
  ms::RunStore reopened(dir);
  EXPECT_EQ(reopened.run_count(), complete + 1);
}

TEST(FleetChaos, Kill9DuringCompactionPreRenameKeepsOldState) {
  const std::string dir = temp_store("kill9_pre_rename");
  const pid_t pid =
      spawn_self({"fleet-compact", "--fleet-compact", dir, "pre_rename"});
  ASSERT_GT(pid, 0);
  const int status = wait_status(pid);
  ASSERT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(WTERMSIG(status), SIGKILL);

  // Killed before the rename: the snapshot never appeared, the WAL is
  // intact, and the orphaned temp file is swept on reopen.
  ms::RunStore store(dir);
  EXPECT_EQ(store.run_count(), 6u);
  EXPECT_EQ(store.corrupt_lines(), 0u);
  for (const auto& entry : fs::directory_iterator(dir)) {
    EXPECT_TRUE(entry.path().filename().string().find(".tmp") == std::string::npos)
        << "leftover temp file: " << entry.path();
  }
  ASSERT_TRUE(store.get_state("phase").has_value());
  EXPECT_EQ(store.get_state("phase")->as_string(), "before-compact");
}

TEST(FleetChaos, Kill9DuringCompactionPreTruncateDeduplicates) {
  const std::string dir = temp_store("kill9_pre_truncate");
  const pid_t pid =
      spawn_self({"fleet-compact", "--fleet-compact", dir, "pre_truncate"});
  ASSERT_GT(pid, 0);
  const int status = wait_status(pid);
  ASSERT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(WTERMSIG(status), SIGKILL);

  // Killed after the rename, before the truncate: every entry now sits in
  // both the snapshot and the WAL. Replay must cancel the duplicates.
  ms::RunStore store(dir);
  EXPECT_EQ(store.run_count(), 6u);
  EXPECT_EQ(store.corrupt_lines(), 0u);
  std::set<std::uint64_t> fps;
  for (const auto& run : store.runs()) fps.insert(run.fingerprint);
  EXPECT_EQ(fps.size(), 6u);
  ASSERT_TRUE(store.get_state("phase").has_value());
  EXPECT_EQ(store.get_state("phase")->as_string(), "before-compact");
  // The next compaction completes the interrupted one.
  EXPECT_TRUE(store.compact());
  ms::RunStore reopened(dir);
  EXPECT_EQ(reopened.run_count(), 6u);
}

// -------------------------------------------------------- byte corruption

TEST(FleetChaos, RandomByteFlipsLoseOnlyTheDamagedLines) {
  const std::string dir = temp_store("byte_flips");
  ms::RunStoreOptions opt;
  opt.shards = 1;  // one WAL file: damage accounting is exact
  constexpr std::size_t kRuns = 50;
  {
    ms::RunStore store(dir, opt);
    for (std::uint64_t seed = 1; seed <= kRuns; ++seed) {
      store.append_run(fleet_run(seed, static_cast<double>(seed)));
    }
  }
  const fs::path wal = fs::path(dir) / "wal-00.jsonl";
  std::string bytes;
  {
    std::ifstream in(wal, std::ios::binary);
    bytes.assign((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  }
  // Map every byte offset to its line index so we can predict the damage.
  std::vector<std::size_t> line_of(bytes.size(), 0);
  std::size_t line = 0;
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    line_of[i] = line;
    if (bytes[i] == '\n') ++line;
  }
  Rng rng{2024};
  std::set<std::size_t> damaged;
  for (int k = 0; k < 5; ++k) {
    const std::size_t off = rng.next() % bytes.size();
    if (bytes[off] == '\n') {
      // Flipping the terminator merges this line into the next: both die
      // (the last line instead becomes a torn tail).
      damaged.insert(line_of[off]);
      if (line_of[off] + 1 < kRuns) damaged.insert(line_of[off] + 1);
    } else {
      damaged.insert(line_of[off]);
    }
    bytes[off] ^= 0x20;
  }
  {
    std::ofstream out(wal, std::ios::trunc | std::ios::binary);
    out << bytes;
  }

  ms::RunStore store(dir);
  // Exactly the damaged lines are gone; every untouched record survives.
  EXPECT_EQ(store.run_count(), kRuns - damaged.size());
  EXPECT_GE(store.corrupt_lines() + (store.dropped_tail_bytes() > 0 ? 1 : 0), 1u);
  std::set<std::uint64_t> surviving;
  for (const auto& run : store.runs()) surviving.insert(run.key.seed);
  for (std::uint64_t seed = 1; seed <= kRuns; ++seed) {
    if (damaged.count(seed - 1)) continue;  // line i holds seed i+1
    EXPECT_TRUE(surviving.count(seed)) << "undamaged seed " << seed << " lost";
  }
  // The store keeps working after surviving corruption.
  store.append_run(fleet_run(9999, 1.0));
  ms::RunStore reopened(dir);
  EXPECT_EQ(reopened.run_count(), kRuns - damaged.size() + 1);
}

TEST(FleetChaos, SnapshotCorruptionIsCountedAndSkipped) {
  const std::string dir = temp_store("snap_flip");
  ms::RunStoreOptions opt;
  opt.shards = 1;
  {
    ms::RunStore store(dir, opt);
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
      store.append_run(fleet_run(seed, static_cast<double>(seed)));
    }
    ASSERT_TRUE(store.compact());
  }
  const fs::path snap = fs::path(dir) / "snapshot-00.jsonl";
  std::string bytes;
  {
    std::ifstream in(snap, std::ios::binary);
    bytes.assign((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  }
  bytes[bytes.size() / 2] ^= 0x10;  // one flipped bit mid-snapshot
  {
    std::ofstream out(snap, std::ios::trunc | std::ios::binary);
    out << bytes;
  }
  ms::RunStore store(dir);
  EXPECT_EQ(store.run_count(), 9u);
  EXPECT_EQ(store.corrupt_lines(), 1u);
}

// -------------------------------------------------- concurrent writer fleet

TEST(FleetChaos, FourWriterProcessesShareOneStoreWithoutLoss) {
  const std::string dir = temp_store("four_writers");
  constexpr int kWriters = 4;
  constexpr std::uint64_t kPerWriter = 40;
  std::vector<pid_t> pids;
  for (int w = 0; w < kWriters; ++w) {
    const std::string base = std::to_string(1 + w * 1000);
    const pid_t pid = spawn_self({"fleet-writer", "--fleet-writer", dir, base,
                                  std::to_string(kPerWriter)});
    ASSERT_GT(pid, 0);
    pids.push_back(pid);
  }
  for (const pid_t pid : pids) {
    const int status = wait_status(pid);
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0) << "writer child failed";
  }

  ms::RunStore store(dir);
  EXPECT_EQ(store.run_count(), kWriters * kPerWriter);
  EXPECT_EQ(store.corrupt_lines(), 0u);
  EXPECT_EQ(store.dropped_tail_bytes(), 0u);
  std::set<std::uint64_t> seeds;
  for (const auto& run : store.runs()) seeds.insert(run.key.seed);
  EXPECT_EQ(seeds.size(), kWriters * kPerWriter);  // no entry lost, none doubled
}

// --------------------------------------------------- multi-process caching

TEST(FleetChaos, CacheServerServesChildProcessesWithAttribution) {
  const std::string dir = temp_store("xproc_cache");
  ms::RunStore store(dir);
  ms::RunCache cache(store);
  constexpr std::uint64_t kEntries = 20;
  for (std::uint64_t seed = 1; seed <= kEntries; ++seed) {
    const auto run = fleet_run(seed, static_cast<double>(seed));
    cache.insert(run.fingerprint, run.key, run.result);
  }
  const std::string sock = temp_socket("xproc");
  ms::CacheServer server(cache, {.socket_path = sock});
  ASSERT_TRUE(server.start());

  std::vector<pid_t> pids;
  for (const char* tenant : {"team-a", "team-b"}) {
    const pid_t pid = spawn_self({"fleet-cache-client", "--fleet-cache-client",
                                  sock, tenant, "1", std::to_string(kEntries)});
    ASSERT_GT(pid, 0);
    pids.push_back(pid);
  }
  for (const pid_t pid : pids) {
    const int status = wait_status(pid);
    ASSERT_TRUE(WIFEXITED(status));
    // Child exits with its hit count: every lookup must have been a hit.
    EXPECT_EQ(WEXITSTATUS(status), static_cast<int>(kEntries));
  }
  server.stop();
  const auto tenants = server.tenant_hits();
  ASSERT_TRUE(tenants.count("team-a"));
  ASSERT_TRUE(tenants.count("team-b"));
  EXPECT_EQ(tenants.at("team-a"), kEntries);
  EXPECT_EQ(tenants.at("team-b"), kEntries);
}

// ------------------------------------------- degraded-mode determinism

TEST(FleetChaos, CampaignOverFaultedShardedStoreMatchesCleanBitwise) {
  // 20% injected WAL crash rate, restricted to the store.wal sites: shards
  // degrade mid-campaign, but the campaign's *results* are bitwise those of
  // a clean run — the store is a cache/ledger, never an oracle.
  const auto oracle = cliff_oracle(1.6);

  const std::string dir_clean = temp_store("faulted_clean");
  ms::RunStore store_clean(dir_clean);
  ms::RunCache cache_clean(store_clean);
  mc::MabOptions opt = mab_base_options();
  opt.cache = &cache_clean;
  opt.cache_key.design = "faulted";
  opt.checkpoint = &store_clean;
  opt.campaign_id = "chaos";
  Rng rng1{7};
  const auto clean = mc::MabScheduler(opt).run(oracle, rng1);

  auto plan = *maestro::resil::FaultPlan::parse(
      "crash=0.2,corrupt=0.05,seed=11,sites=store.wal");
  maestro::resil::FaultInjector::install(plan);
  const std::string dir_chaos = temp_store("faulted_chaos");
  ms::RunStore store_chaos(dir_chaos);
  ms::RunCache cache_chaos(store_chaos);
  mc::MabOptions opt2 = mab_base_options();
  opt2.cache = &cache_chaos;
  opt2.cache_key.design = "faulted";
  opt2.checkpoint = &store_chaos;
  opt2.campaign_id = "chaos";
  Rng rng2{7};
  const auto chaotic = mc::MabScheduler(opt2).run(oracle, rng2);
  maestro::resil::FaultInjector::clear();

  expect_same_mab_result(clean, chaotic);
  EXPECT_TRUE(store_chaos.degraded());  // the faults really did land
  // A compaction heals every degraded shard and persists the full mirror.
  EXPECT_TRUE(store_chaos.compact());
  EXPECT_FALSE(store_chaos.degraded());
  ms::RunStore recovered(dir_chaos);
  EXPECT_EQ(recovered.run_count(), store_clean.run_count());
}

TEST(FleetChaos, CampaignOverPartitionedCacheServerMatchesCleanBitwise) {
  const auto oracle = cliff_oracle(1.6);

  // Clean: plain local cache, no server anywhere.
  const std::string dir_clean = temp_store("partition_clean");
  ms::RunStore store_clean(dir_clean);
  ms::RunCache cache_clean(store_clean);
  mc::MabOptions opt = mab_base_options();
  opt.cache = &cache_clean;
  opt.cache_key.design = "partition";
  Rng rng1{21};
  const auto clean = mc::MabScheduler(opt).run(oracle, rng1);

  // Partitioned: the campaign's remote tier points at a server that is
  // stopped (partitioned away) after start — every op fails fast and the
  // degradation ladder lands on the local store-backed cache.
  const std::string sock = temp_socket("partition");
  const std::string dir_part = temp_store("partition_chaos");
  ms::RunStore store_part(dir_part);
  ms::RunCache fallback(store_part);
  {
    ms::RunStore server_store(temp_store("partition_server"));
    ms::RunCache server_cache(server_store);
    ms::CacheServer server(server_cache, {.socket_path = sock});
    ASSERT_TRUE(server.start());
    server.stop();  // partition: socket path exists no more
  }
  ms::RemoteCacheOptions ropt;
  ropt.socket_path = sock;
  ropt.reconnect.max_attempts = 3;
  ropt.reconnect.backoff_ms = 0.0;
  ms::RemoteRunCache remote(ropt, &fallback);
  mc::MabOptions opt2 = mab_base_options();
  opt2.cache = &remote;
  opt2.cache_key.design = "partition";
  Rng rng2{21};
  const auto partitioned = mc::MabScheduler(opt2).run(oracle, rng2);

  expect_same_mab_result(clean, partitioned);
  EXPECT_TRUE(remote.gave_up());
  EXPECT_EQ(store_part.run_count(), store_clean.run_count());
}

// ------------------------------------------------------------ child roles

namespace {

/// Append `count` runs with seeds [base, base+count) and exit 0.
int run_fleet_writer(const char* dir, std::uint64_t base, std::uint64_t count) {
  ms::RunStoreOptions opt;
  opt.fsync = ms::FsyncMode::Off;  // speed; durability is not under test here
  ms::RunStore store(dir, opt);
  for (std::uint64_t i = 0; i < count; ++i) {
    store.append_run(fleet_run(base + i, static_cast<double>(base + i)));
  }
  return store.degraded() ? 3 : 0;
}

/// Append forever until SIGKILLed by the parent.
int run_fleet_killme(const char* dir) {
  ms::RunStoreOptions opt;
  opt.fsync = ms::FsyncMode::Off;
  ms::RunStore store(dir, opt);
  for (std::uint64_t seed = 1;; ++seed) {
    store.append_run(fleet_run(seed, static_cast<double>(seed)));
  }
}

/// Append 6 runs plus a state marker, then SIGKILL ourselves at the given
/// compaction phase — a real crashed compactor, not a simulation.
int run_fleet_compact(const char* dir, const char* phase) {
  const std::string want{phase};
  ms::RunStoreOptions opt;
  opt.shards = 1;
  opt.compact_hook = [&want](const char* at, std::size_t) {
    if (want == at) ::kill(::getpid(), SIGKILL);
  };
  ms::RunStore store(dir, opt);
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    store.append_run(fleet_run(seed, static_cast<double>(seed)));
  }
  store.put_state("phase", maestro::util::Json{"before-compact"});
  store.compact();
  return 7;  // unreachable when the hook fires
}

/// Look up `count` fingerprints starting at seed `base`; exit with the
/// number of remote hits (the parent expects all of them to hit).
int run_fleet_cache_client(const char* sock, const char* tenant,
                           std::uint64_t base, std::uint64_t count) {
  ms::RemoteCacheOptions opt;
  opt.socket_path = sock;
  opt.tenant = tenant;
  ms::RemoteRunCache client(opt);
  int hits = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    if (client.lookup(fleet_run(base + i, 0.0).fingerprint)) ++hits;
  }
  return hits;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 5 && std::strcmp(argv[1], "--fleet-writer") == 0) {
    return run_fleet_writer(argv[2], std::strtoull(argv[3], nullptr, 10),
                            std::strtoull(argv[4], nullptr, 10));
  }
  if (argc == 3 && std::strcmp(argv[1], "--fleet-killme") == 0) {
    return run_fleet_killme(argv[2]);
  }
  if (argc == 4 && std::strcmp(argv[1], "--fleet-compact") == 0) {
    return run_fleet_compact(argv[2], argv[3]);
  }
  if (argc == 6 && std::strcmp(argv[1], "--fleet-cache-client") == 0) {
    return run_fleet_cache_client(argv[2], argv[3],
                                  std::strtoull(argv[4], nullptr, 10),
                                  std::strtoull(argv[5], nullptr, 10));
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
