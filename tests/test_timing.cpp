// Unit tests for maestro::timing — clock tree synthesis and the two STA
// engines, including their deliberate GBA-vs-PBA miscorrelation.

#include <gtest/gtest.h>

#include <memory>

#include "netlist/generators.hpp"
#include "place/placer.hpp"
#include "route/global_router.hpp"
#include "timing/sta.hpp"

namespace mn = maestro::netlist;
namespace mp = maestro::place;
namespace mt = maestro::timing;
namespace mr = maestro::route;
using maestro::util::Rng;

namespace {
const mn::CellLibrary& lib() {
  static const mn::CellLibrary l = mn::make_default_library();
  return l;
}

struct Fixture {
  std::unique_ptr<mn::Netlist> nl;
  std::unique_ptr<mp::Floorplan> fp;
  std::unique_ptr<mp::Placement> pl;
  mt::ClockTree clock;
};

Fixture make_fixture(std::uint64_t seed, std::size_t gates = 400, double flop_ratio = 0.15) {
  Fixture f;
  mn::RandomLogicSpec spec;
  spec.gates = gates;
  spec.flop_ratio = flop_ratio;
  spec.seed = seed;
  f.nl = std::make_unique<mn::Netlist>(mn::make_random_logic(lib(), spec));
  f.fp = std::make_unique<mp::Floorplan>(mp::Floorplan::for_netlist(*f.nl, 0.7));
  Rng rng{seed};
  f.pl = std::make_unique<mp::Placement>(mp::random_placement(*f.nl, *f.fp, rng));
  mp::AnnealOptions ao;
  ao.moves_per_cell = 8.0;
  mp::anneal_placement(*f.pl, ao, rng);
  mp::legalize(*f.pl);
  f.clock = mt::build_clock_tree(*f.pl, mt::ClockTreeOptions{}, rng);
  return f;
}
}  // namespace

TEST(ClockTree, InsertionDelaysPositiveForFlops) {
  const auto f = make_fixture(1);
  for (const auto ff : f.nl->flops()) {
    EXPECT_GT(f.clock.insertion_of(ff), 0.0);
  }
  EXPECT_GT(f.clock.buffers, 0u);
  EXPECT_GE(f.clock.skew_ps(), 0.0);
  EXPECT_GT(f.clock.max_insertion_ps, f.clock.min_insertion_ps - 1e-9);
}

TEST(ClockTree, SkewBoundedRelativeToInsertion) {
  const auto f = make_fixture(2, 800, 0.2);
  // A tree should not have pathological skew: well under max insertion.
  EXPECT_LT(f.clock.skew_ps(), f.clock.max_insertion_ps);
}

TEST(ClockTree, NoFlopsMeansEmptyTree) {
  mn::RandomLogicSpec spec;
  spec.gates = 100;
  spec.flop_ratio = 0.0;
  spec.seed = 3;
  const auto nl = mn::make_random_logic(lib(), spec);
  const auto fp = mp::Floorplan::for_netlist(nl, 0.7);
  Rng rng{3};
  const auto pl = mp::random_placement(nl, fp, rng);
  const auto tree = mt::build_clock_tree(pl, mt::ClockTreeOptions{}, rng);
  EXPECT_EQ(tree.buffers, 0u);
  EXPECT_DOUBLE_EQ(tree.skew_ps(), 0.0);
}

TEST(Sta, ChainDelayMatchesHandComputation) {
  // Build a 3-inverter chain, place pads and gates at known positions.
  mn::Netlist nl = mn::make_chain(lib(), 3);
  const auto fp = mp::Floorplan::for_netlist(nl, 0.5);
  Rng rng{5};
  auto pl = mp::random_placement(nl, fp, rng);
  mp::legalize(pl);

  mt::StaOptions opt;
  opt.mode = mt::AnalysisMode::PathBased;  // exact engine
  opt.clock_period_ps = 10000.0;
  const auto rep = mt::run_sta(pl, mt::ClockTree{}, opt);
  ASSERT_EQ(rep.endpoints.size(), 1u);  // the PO

  // Hand computation: io_input_delay + 3 gate delays + wire delays.
  const auto inv = lib().smallest(mn::CellFunction::Inv);
  const auto& m = lib().master(inv);
  double expect = opt.io_input_delay_ps;
  // Stage loads: wire cap + sink pin cap; walk nets in order.
  for (std::size_t n = 0; n < nl.net_count(); ++n) {
    const auto id = static_cast<mn::NetId>(n);
    const auto& net = nl.net(id);
    if (net.sinks.empty()) continue;
    const double wl = static_cast<double>(pl.net_hpwl(id));
    const double sink_cap = nl.master_of(net.sinks[0].instance).input_cap_ff;
    const double load = opt.wire.cap_per_nm_ff * wl + sink_cap;
    const double rw = opt.wire.res_per_nm_kohm *
                      static_cast<double>(maestro::geom::manhattan(
                          pl.pin_of(net.driver), pl.pin_of(net.sinks[0].instance)));
    const double cw = opt.wire.cap_per_nm_ff * wl;
    const double wire_delay = rw * (0.5 * cw + sink_cap);
    const bool driver_is_gate = nl.master_of(net.driver).function == mn::CellFunction::Inv;
    if (driver_is_gate) expect += m.delay_ps(load);
    else expect += lib().master(nl.instance(net.driver).master).drive_res_kohm * 0.0;
    expect += wire_delay;
  }
  EXPECT_NEAR(rep.endpoints[0].arrival_ps, expect, 1e-6);
}

TEST(Sta, GbaIsPessimisticVsPba) {
  const auto f = make_fixture(7);
  mt::StaOptions gba;
  gba.mode = mt::AnalysisMode::GraphBased;
  mt::StaOptions pba;
  pba.mode = mt::AnalysisMode::PathBased;
  const auto rep_gba = mt::run_sta(*f.pl, f.clock, gba);
  const auto rep_pba = mt::run_sta(*f.pl, f.clock, pba);
  ASSERT_EQ(rep_gba.endpoints.size(), rep_pba.endpoints.size());
  // Every endpoint: GBA arrival >= PBA arrival (bbox + derate pessimism).
  std::size_t strictly_greater = 0;
  for (std::size_t i = 0; i < rep_gba.endpoints.size(); ++i) {
    EXPECT_GE(rep_gba.endpoints[i].arrival_ps, rep_pba.endpoints[i].arrival_ps - 1e-9);
    if (rep_gba.endpoints[i].arrival_ps > rep_pba.endpoints[i].arrival_ps + 1e-9) {
      ++strictly_greater;
    }
  }
  EXPECT_GT(strictly_greater, rep_gba.endpoints.size() / 2);
  EXPECT_LE(rep_gba.wns_ps, rep_pba.wns_ps + 1e-9);
}

TEST(Sta, SiModeAddsPessimismInCongestion) {
  const auto f = make_fixture(9, 600);
  mr::RouteOptions ro;
  ro.gcells_x = ro.gcells_y = 16;
  ro.h_capacity = ro.v_capacity = 8.0;  // force congestion
  mr::GridGraph grid;
  mr::global_route(*f.pl, ro, grid);

  mt::StaOptions plain;
  plain.mode = mt::AnalysisMode::PathBased;
  mt::StaOptions si = plain;
  si.with_si = true;
  const auto rep_plain = mt::run_sta(*f.pl, f.clock, plain, &grid);
  const auto rep_si = mt::run_sta(*f.pl, f.clock, si, &grid);
  ASSERT_EQ(rep_plain.endpoints.size(), rep_si.endpoints.size());
  double sum_delta = 0.0;
  for (std::size_t i = 0; i < rep_si.endpoints.size(); ++i) {
    EXPECT_GE(rep_si.endpoints[i].arrival_ps, rep_plain.endpoints[i].arrival_ps - 1e-9);
    sum_delta += rep_si.endpoints[i].arrival_ps - rep_plain.endpoints[i].arrival_ps;
  }
  EXPECT_GT(sum_delta, 0.0);
  EXPECT_GT(rep_si.analysis_cost, rep_plain.analysis_cost);
}

TEST(Sta, EndpointsAreFlopsAndOutputs) {
  const auto f = make_fixture(11);
  mt::StaOptions opt;
  const auto rep = mt::run_sta(*f.pl, f.clock, opt);
  EXPECT_EQ(rep.endpoints.size(), f.nl->flops().size() + f.nl->primary_outputs().size());
  std::size_t flop_eps = 0;
  for (const auto& ep : rep.endpoints) flop_eps += ep.is_flop ? 1 : 0;
  EXPECT_EQ(flop_eps, f.nl->flops().size());
}

TEST(Sta, SlackRespondsToClockPeriod) {
  const auto f = make_fixture(13);
  mt::StaOptions fast;
  fast.clock_period_ps = 300.0;
  mt::StaOptions slow;
  slow.clock_period_ps = 3000.0;
  const auto rep_fast = mt::run_sta(*f.pl, f.clock, fast);
  const auto rep_slow = mt::run_sta(*f.pl, f.clock, slow);
  EXPECT_LT(rep_fast.wns_ps, rep_slow.wns_ps);
  EXPECT_NEAR(rep_slow.wns_ps - rep_fast.wns_ps, 2700.0, 1e-6);
  EXPECT_LE(rep_fast.tns_ps, 0.0);
  EXPECT_GE(rep_fast.failing_endpoints,
            static_cast<std::size_t>(rep_slow.failing_endpoints));
}

TEST(Sta, WnsIsMinimumSlack) {
  const auto f = make_fixture(17);
  mt::StaOptions opt;
  opt.clock_period_ps = 600.0;
  const auto rep = mt::run_sta(*f.pl, f.clock, opt);
  double min_slack = 1e300;
  double tns = 0.0;
  for (const auto& ep : rep.endpoints) {
    min_slack = std::min(min_slack, ep.slack_ps);
    if (ep.slack_ps < 0) tns += ep.slack_ps;
  }
  EXPECT_DOUBLE_EQ(rep.wns_ps, min_slack);
  EXPECT_DOUBLE_EQ(rep.tns_ps, tns);
}

TEST(Sta, PbaCostsMoreThanGba) {
  const auto f = make_fixture(19);
  mt::StaOptions gba;
  gba.mode = mt::AnalysisMode::GraphBased;
  mt::StaOptions pba;
  pba.mode = mt::AnalysisMode::PathBased;
  const auto rep_gba = mt::run_sta(*f.pl, f.clock, gba);
  const auto rep_pba = mt::run_sta(*f.pl, f.clock, pba);
  EXPECT_GT(rep_pba.analysis_cost, rep_gba.analysis_cost);
}

TEST(Sta, EndpointFeaturesPopulated) {
  const auto f = make_fixture(23);
  mt::StaOptions opt;
  const auto rep = mt::run_sta(*f.pl, f.clock, opt);
  std::size_t with_stages = 0;
  std::size_t with_wire = 0;
  for (const auto& ep : rep.endpoints) {
    with_stages += ep.path_stages > 0 ? 1 : 0;
    with_wire += ep.path_wire_delay_ps > 0.0 ? 1 : 0;
  }
  EXPECT_GT(with_stages, rep.endpoints.size() / 2);
  EXPECT_GT(with_wire, rep.endpoints.size() / 2);
}

TEST(Sta, EndpointLookup) {
  const auto f = make_fixture(29);
  mt::StaOptions opt;
  const auto rep = mt::run_sta(*f.pl, f.clock, opt);
  ASSERT_FALSE(rep.endpoints.empty());
  const auto& first = rep.endpoints.front();
  const auto* found = rep.endpoint_of(first.endpoint);
  ASSERT_NE(found, nullptr);
  EXPECT_DOUBLE_EQ(found->slack_ps, first.slack_ps);
  EXPECT_EQ(rep.endpoint_of(static_cast<mn::InstanceId>(999999)), nullptr);
}
