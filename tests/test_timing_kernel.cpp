// Equivalence suite for timing::TimingGraph — the levelized STA kernel.
//
// The kernel's contract is *bit-identical* reports to the seed per-call
// engine. To keep that falsifiable forever, this file carries verbatim
// copies of the seed implementations (reference_sta below mirrors the
// original run_sta; reference_wireload mirrors flow::wireload_timing) and
// asserts exact (==, not near) equality across:
//   * GBA/PBA x SI x hold x all three standard corners,
//   * batched multi-corner propagation vs. per-corner runs,
//   * incremental re-propagation over random resize dirty sets vs. a fresh
//     full reference run (property test),
//   * structural ECO (hold-buffer insertion) + sync() + reanalyze(),
//   * wireload trial/undo loops (the gate-sizing access pattern),
//   * level-parallel propagation vs. the serial sweep (TSan-clean).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "netlist/generators.hpp"
#include "obs/registry.hpp"
#include "place/placer.hpp"
#include "route/global_router.hpp"
#include "timing/sta.hpp"
#include "timing/timing_graph.hpp"

namespace mn = maestro::netlist;
namespace mp = maestro::place;
namespace mt = maestro::timing;
namespace mr = maestro::route;
namespace mg = maestro::geom;
using maestro::util::Rng;

namespace {

const mn::CellLibrary& lib() {
  static const mn::CellLibrary l = mn::make_default_library();
  return l;
}

struct Fixture {
  std::unique_ptr<mn::Netlist> nl;
  std::unique_ptr<mp::Floorplan> fp;
  std::unique_ptr<mp::Placement> pl;
  mt::ClockTree clock;
};

Fixture make_fixture(std::uint64_t seed, std::size_t gates = 400, double flop_ratio = 0.15) {
  Fixture f;
  mn::RandomLogicSpec spec;
  spec.gates = gates;
  spec.flop_ratio = flop_ratio;
  spec.seed = seed;
  f.nl = std::make_unique<mn::Netlist>(mn::make_random_logic(lib(), spec));
  f.fp = std::make_unique<mp::Floorplan>(mp::Floorplan::for_netlist(*f.nl, 0.7));
  Rng rng{seed};
  f.pl = std::make_unique<mp::Placement>(mp::random_placement(*f.nl, *f.fp, rng));
  mp::AnnealOptions ao;
  ao.moves_per_cell = 8.0;
  mp::anneal_placement(*f.pl, ao, rng);
  mp::legalize(*f.pl);
  f.clock = mt::build_clock_tree(*f.pl, mt::ClockTreeOptions{}, rng);
  return f;
}

mr::GridGraph make_routed(const Fixture& f, std::uint64_t /*seed*/) {
  mr::RouteOptions ro;
  ro.gcells_x = ro.gcells_y = 16;
  ro.h_capacity = ro.v_capacity = 8.0;  // force congestion so SI actually bites
  mr::GridGraph grid;
  mr::global_route(*f.pl, ro, grid);
  return grid;
}

// ---------------------------------------------------------------------------
// Reference engine: verbatim copy of the seed run_sta (pre-kernel engine).
// ---------------------------------------------------------------------------

struct RefNodeState {
  double arrival = 0.0;
  std::size_t stages = 0;
  double wire_delay = 0.0;
  double gate_delay = 0.0;
  std::size_t max_fanout = 0;
};

double ref_si_utilization(const mr::GridGraph& g, const mg::Point& a, const mg::Point& b) {
  const auto [c0, r0] = g.indexer().cell_of(a);
  const auto [c1, r1] = g.indexer().cell_of(b);
  const std::size_t clo = std::min(c0, c1);
  const std::size_t chi = std::max(c0, c1);
  const std::size_t rlo = std::min(r0, r1);
  const std::size_t rhi = std::max(r0, r1);
  double worst = 0.0;
  for (std::size_t c = clo; c <= chi; ++c) {
    for (std::size_t r = rlo; r <= rhi; ++r) {
      const mt::GCellStats s = mt::gcell_stats(g, c, r);
      worst = std::max(worst, s.utilization);
    }
  }
  return worst;
}

mt::StaReport reference_sta(const mp::Placement& pl, const mt::ClockTree& clock,
                            const mt::StaOptions& opt, const mr::GridGraph* routed = nullptr) {
  using mn::CellFunction;
  using mn::InstanceId;
  using mn::NetId;
  const auto& nl = pl.netlist();
  mt::StaReport report;
  const auto order = nl.topo_order();

  std::vector<RefNodeState> state(nl.instance_count());
  const bool pba = opt.mode == mt::AnalysisMode::PathBased;
  const double derate = pba ? 1.0 : opt.gba_derate;
  double cost = 0.0;

  std::vector<double> net_load(nl.net_count(), 0.0);
  for (std::size_t n = 0; n < nl.net_count(); ++n) {
    const auto& net = nl.net(static_cast<NetId>(n));
    const double wire_len = static_cast<double>(pl.net_hpwl(static_cast<NetId>(n)));
    double load = opt.wire.cap_per_nm_ff * wire_len;
    for (const auto& sink : net.sinks) load += nl.master_of(sink.instance).input_cap_ff;
    net_load[n] = load;
  }

  auto wire_delay = [&](NetId n, InstanceId sink_inst) {
    const auto& net = nl.net(n);
    const mg::Point a = pl.pin_of(net.driver);
    const mg::Point b = pl.pin_of(sink_inst);
    const double len = pba ? static_cast<double>(mg::manhattan(a, b))
                           : static_cast<double>(pl.net_hpwl(n));
    const double rw = opt.wire.res_per_nm_kohm * len;
    const double cw = opt.wire.cap_per_nm_ff * len;
    const double sink_cap = nl.master_of(sink_inst).input_cap_ff;
    double d = rw * (0.5 * cw + sink_cap) * opt.corner.wire_factor;
    if (opt.with_si && routed != nullptr) {
      d *= 1.0 + opt.si_coupling_factor * ref_si_utilization(*routed, a, b);
      cost += 4.0;
    }
    cost += pba ? 2.0 : 1.0;
    return d;
  };

  auto wire_delay_early = [&](NetId n, InstanceId sink_inst) {
    const auto& net = nl.net(n);
    const mg::Point a = pl.pin_of(net.driver);
    const mg::Point b = pl.pin_of(sink_inst);
    const double len = static_cast<double>(mg::manhattan(a, b));
    const double rw = opt.wire.res_per_nm_kohm * len;
    const double cw = opt.wire.cap_per_nm_ff * len;
    const double sink_cap = nl.master_of(sink_inst).input_cap_ff;
    cost += 1.0;
    return rw * (0.5 * cw + sink_cap) * opt.corner.wire_factor;
  };

  for (const InstanceId u : order) {
    const auto& m = nl.master_of(u);
    RefNodeState& su = state[u] = RefNodeState{};
    cost += 1.0;

    if (m.function == CellFunction::Input) {
      su.arrival = opt.io_input_delay_ps;
    } else if (m.function == CellFunction::Dff) {
      su.arrival = clock.insertion_of(u) + m.clk_to_q_ps * opt.corner.gate_factor;
    } else if (m.function == CellFunction::Output) {
      // Terminal; handled at endpoint collection below.
    } else {
      double worst_in = 0.0;
      RefNodeState best_src{};
      for (const NetId in : nl.instance(u).input_nets) {
        if (in == mn::kNoNet) continue;
        const auto& net = nl.net(in);
        const double wd = wire_delay(in, u);
        const double cand = state[net.driver].arrival + wd * derate;
        if (cand >= worst_in) {
          worst_in = cand;
          best_src = state[net.driver];
          best_src.wire_delay += wd;
          best_src.max_fanout = std::max(best_src.max_fanout, net.sinks.size());
        }
      }
      const NetId out = nl.instance(u).output_net;
      const double load = out != mn::kNoNet ? net_load[out] : 0.0;
      const double gd = m.delay_ps(load) * derate * opt.corner.gate_factor;
      su = best_src;
      su.arrival = worst_in + gd;
      su.stages += 1;
      su.gate_delay += gd;
    }
  }

  auto arrival_at_pin = [&](InstanceId inst, NetId in) {
    const auto& net = nl.net(in);
    const double wd = wire_delay(in, inst);
    RefNodeState s = state[net.driver];
    s.arrival += wd * derate;
    s.wire_delay += wd;
    s.max_fanout = std::max(s.max_fanout, net.sinks.size());
    return s;
  };

  std::vector<double> early(nl.instance_count(), 0.0);
  if (opt.with_hold) {
    const double early_derate = pba ? 1.0 : opt.gba_early_derate;
    for (const InstanceId u : order) {
      const auto& m = nl.master_of(u);
      cost += 1.0;
      if (m.function == CellFunction::Input) {
        early[u] = opt.io_input_delay_ps + clock.min_insertion_ps;
      } else if (m.function == CellFunction::Dff) {
        early[u] = clock.insertion_of(u) + m.clk_to_q_ps * opt.corner.gate_factor;
      } else if (m.function == CellFunction::Output) {
        // terminal
      } else {
        double best_in = std::numeric_limits<double>::infinity();
        for (const NetId in : nl.instance(u).input_nets) {
          if (in == mn::kNoNet) continue;
          const double wd = wire_delay_early(in, u);
          best_in = std::min(best_in, early[nl.net(in).driver] + wd * early_derate);
        }
        if (!std::isfinite(best_in)) best_in = 0.0;
        const NetId out_net = nl.instance(u).output_net;
        const double load = out_net != mn::kNoNet ? net_load[out_net] : 0.0;
        early[u] = best_in + m.delay_ps(load) * early_derate * opt.corner.gate_factor;
      }
    }
  }

  double wns = std::numeric_limits<double>::infinity();
  double whs = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < nl.instance_count(); ++i) {
    const auto id = static_cast<InstanceId>(i);
    const auto& m = nl.master_of(id);
    mt::EndpointTiming ep;
    if (m.function == CellFunction::Dff) {
      const NetId in = nl.instance(id).input_nets[0];
      if (in == mn::kNoNet) continue;
      const RefNodeState s = arrival_at_pin(id, in);
      ep.endpoint = id;
      ep.is_flop = true;
      ep.arrival_ps = s.arrival;
      ep.required_ps =
          opt.clock_period_ps + clock.insertion_of(id) - m.setup_ps * opt.corner.setup_factor;
      ep.path_stages = s.stages;
      ep.path_wire_delay_ps = s.wire_delay;
      ep.path_gate_delay_ps = s.gate_delay;
      ep.max_fanout_on_path = s.max_fanout;
      if (opt.with_hold) {
        const double early_derate = pba ? 1.0 : opt.gba_early_derate;
        const double wd = wire_delay_early(in, id);
        const double early_at_d = early[nl.net(in).driver] + wd * early_derate;
        ep.hold_slack_ps = early_at_d -
                           (clock.insertion_of(id) + m.hold_ps * opt.corner.setup_factor);
        whs = std::min(whs, ep.hold_slack_ps);
        if (ep.hold_slack_ps < 0.0) ++report.hold_violations;
      }
    } else if (m.function == CellFunction::Output) {
      const NetId in = nl.instance(id).input_nets[0];
      if (in == mn::kNoNet) continue;
      const RefNodeState s = arrival_at_pin(id, in);
      ep.endpoint = id;
      ep.is_flop = false;
      ep.arrival_ps = s.arrival;
      ep.required_ps = opt.clock_period_ps - opt.io_output_margin_ps;
      ep.path_stages = s.stages;
      ep.path_wire_delay_ps = s.wire_delay;
      ep.path_gate_delay_ps = s.gate_delay;
      ep.max_fanout_on_path = s.max_fanout;
    } else {
      continue;
    }
    ep.slack_ps = ep.required_ps - ep.arrival_ps;
    if (ep.slack_ps < 0.0) {
      report.tns_ps += ep.slack_ps;
      ++report.failing_endpoints;
    }
    wns = std::min(wns, ep.slack_ps);
    report.endpoints.push_back(ep);
  }
  report.wns_ps = report.endpoints.empty() ? 0.0 : wns;
  report.whs_ps = std::isfinite(whs) ? whs : 0.0;
  report.analysis_cost = cost;
  return report;
}

// Verbatim copy of the seed flow::wireload_timing (pre-kernel engine).
struct RefWireload {
  double critical = 0.0;
  std::vector<double> arrival;
};

RefWireload reference_wireload(const mn::Netlist& nl, double wireload_factor,
                               double clk_to_q_margin_ps = 0.0) {
  using mn::CellFunction;
  using mn::InstanceId;
  using mn::NetId;
  RefWireload wt;
  wt.arrival.assign(nl.instance_count(), 0.0);
  const auto order = nl.topo_order();
  for (const InstanceId u : order) {
    const auto& m = nl.master_of(u);
    double arr = 0.0;
    if (m.function == CellFunction::Input) {
      arr = 0.0;
    } else if (m.function == CellFunction::Dff) {
      arr = m.clk_to_q_ps + clk_to_q_margin_ps;
    } else if (m.function == CellFunction::Output) {
      continue;
    } else {
      double worst = 0.0;
      for (const NetId in : nl.instance(u).input_nets) {
        if (in == mn::kNoNet) continue;
        worst = std::max(worst, wt.arrival[nl.net(in).driver]);
      }
      const NetId out = nl.instance(u).output_net;
      double load = 0.0;
      if (out != mn::kNoNet) {
        for (const auto& sink : nl.net(out).sinks) {
          load += nl.master_of(sink.instance).input_cap_ff;
        }
      }
      arr = worst + m.delay_ps(load * wireload_factor);
    }
    wt.arrival[u] = arr;
  }
  for (std::size_t i = 0; i < nl.instance_count(); ++i) {
    const auto id = static_cast<InstanceId>(i);
    const auto& m = nl.master_of(id);
    if (m.function != CellFunction::Dff && m.function != CellFunction::Output) continue;
    for (const NetId in : nl.instance(id).input_nets) {
      if (in == mn::kNoNet) continue;
      const double arr = wt.arrival[nl.net(in).driver];
      const double setup = m.function == CellFunction::Dff ? m.setup_ps : 0.0;
      wt.critical = std::max(wt.critical, arr + setup);
    }
  }
  return wt;
}

// ---------------------------------------------------------------------------
// Exact-equality assertions (== on doubles: bitwise contract, not "near").
// ---------------------------------------------------------------------------

void expect_report_eq(const mt::StaReport& got, const mt::StaReport& want,
                      bool check_cost = true) {
  ASSERT_EQ(got.endpoints.size(), want.endpoints.size());
  for (std::size_t i = 0; i < want.endpoints.size(); ++i) {
    const auto& g = got.endpoints[i];
    const auto& w = want.endpoints[i];
    EXPECT_EQ(g.endpoint, w.endpoint) << "endpoint " << i;
    EXPECT_EQ(g.is_flop, w.is_flop) << "endpoint " << i;
    EXPECT_EQ(g.arrival_ps, w.arrival_ps) << "endpoint " << i;
    EXPECT_EQ(g.required_ps, w.required_ps) << "endpoint " << i;
    EXPECT_EQ(g.slack_ps, w.slack_ps) << "endpoint " << i;
    EXPECT_EQ(g.path_stages, w.path_stages) << "endpoint " << i;
    EXPECT_EQ(g.path_wire_delay_ps, w.path_wire_delay_ps) << "endpoint " << i;
    EXPECT_EQ(g.path_gate_delay_ps, w.path_gate_delay_ps) << "endpoint " << i;
    EXPECT_EQ(g.max_fanout_on_path, w.max_fanout_on_path) << "endpoint " << i;
    EXPECT_EQ(g.hold_slack_ps, w.hold_slack_ps) << "endpoint " << i;
  }
  EXPECT_EQ(got.wns_ps, want.wns_ps);
  EXPECT_EQ(got.tns_ps, want.tns_ps);
  EXPECT_EQ(got.whs_ps, want.whs_ps);
  EXPECT_EQ(got.failing_endpoints, want.failing_endpoints);
  EXPECT_EQ(got.hold_violations, want.hold_violations);
  if (check_cost) {
    EXPECT_EQ(got.analysis_cost, want.analysis_cost);
  }
}

/// All option combinations the seed engine supported.
std::vector<mt::StaOptions> all_option_combos() {
  std::vector<mt::StaOptions> combos;
  for (const auto& corner : mt::standard_corners()) {
    for (const bool pba : {false, true}) {
      for (const bool si : {false, true}) {
        for (const bool hold : {false, true}) {
          mt::StaOptions opt;
          opt.mode = pba ? mt::AnalysisMode::PathBased : mt::AnalysisMode::GraphBased;
          opt.with_si = si;
          opt.with_hold = hold;
          opt.corner = corner;
          opt.clock_period_ps = 700.0;
          combos.push_back(opt);
        }
      }
    }
  }
  return combos;
}

/// Resize a random combinational instance to a different drive variant;
/// returns its id (kNoInstance when nothing is resizable). When
/// `prev_master` is non-null it receives the master index before the resize.
mn::InstanceId resize_random(mn::Netlist& nl, Rng& rng, std::size_t* prev_master = nullptr) {
  for (int attempt = 0; attempt < 64; ++attempt) {
    const auto id =
        static_cast<mn::InstanceId>(rng.below(nl.instance_count()));
    const auto f = nl.master_of(id).function;
    if (f == mn::CellFunction::Input || f == mn::CellFunction::Output ||
        f == mn::CellFunction::Dff) {
      continue;
    }
    const auto vars = lib().variants(f);
    if (vars.size() < 2) continue;
    const std::size_t cur = nl.instance(id).master;
    std::size_t pick = vars[rng.below(vars.size())];
    if (pick == cur) pick = vars[0] == cur ? vars[1] : vars[0];
    if (prev_master != nullptr) *prev_master = cur;
    nl.resize_instance(id, pick);
    return id;
  }
  return mn::kNoInstance;
}

}  // namespace

// ---------------------------------------------------------------------------
// Full-analysis equivalence
// ---------------------------------------------------------------------------

TEST(KernelEquivalence, MatchesSeedAcrossModesCornersSiHold) {
  const auto f = make_fixture(31, 500, 0.18);
  const auto grid = make_routed(f, 31);
  for (const auto& opt : all_option_combos()) {
    SCOPED_TRACE(opt.corner.name + (opt.mode == mt::AnalysisMode::PathBased ? "/pba" : "/gba") +
                 (opt.with_si ? "/si" : "") + (opt.with_hold ? "/hold" : ""));
    const auto want = reference_sta(*f.pl, f.clock, opt, &grid);
    const auto got = mt::run_sta(*f.pl, f.clock, opt, &grid);
    expect_report_eq(got, want);
  }
}

TEST(KernelEquivalence, GraphReuseAcrossOptionChanges) {
  // One long-lived graph answering heterogeneous queries must match a fresh
  // seed run for each — no state from the previous query may leak.
  const auto f = make_fixture(37);
  const auto grid = make_routed(f, 37);
  mt::TimingGraph graph(*f.pl, f.clock);
  for (const auto& opt : all_option_combos()) {
    SCOPED_TRACE(opt.corner.name + (opt.mode == mt::AnalysisMode::PathBased ? "/pba" : "/gba") +
                 (opt.with_si ? "/si" : "") + (opt.with_hold ? "/hold" : ""));
    expect_report_eq(graph.analyze(opt, &grid), reference_sta(*f.pl, f.clock, opt, &grid));
  }
}

TEST(KernelEquivalence, BatchedCornersMatchPerCornerRuns) {
  const auto f = make_fixture(41, 500);
  const auto grid = make_routed(f, 41);
  mt::StaOptions base;
  base.mode = mt::AnalysisMode::PathBased;
  base.with_si = true;
  base.with_hold = true;
  base.clock_period_ps = 650.0;
  mt::TimingGraph graph(*f.pl, f.clock);
  const auto& corners = mt::standard_corners();
  const auto reports = graph.analyze_corners(base, corners, &grid);
  ASSERT_EQ(reports.size(), corners.size());
  for (std::size_t i = 0; i < corners.size(); ++i) {
    SCOPED_TRACE(corners[i].name);
    mt::StaOptions opt = base;
    opt.corner = corners[i];
    expect_report_eq(reports[i], reference_sta(*f.pl, f.clock, opt, &grid));
  }
}

// ---------------------------------------------------------------------------
// Incremental re-propagation (property tests over random dirty sets)
// ---------------------------------------------------------------------------

TEST(Incremental, RandomResizeDirtySetsMatchFullGbaHold) {
  auto f = make_fixture(43, 600, 0.18);
  mt::StaOptions opt;
  opt.with_hold = true;
  opt.clock_period_ps = 800.0;
  mt::TimingGraph graph(*f.pl, f.clock);
  graph.analyze(opt);
  Rng rng{77};
  std::size_t total_reprop = 0;
  const int rounds = 10;
  for (int round = 0; round < rounds; ++round) {
    SCOPED_TRACE(round);
    std::vector<mn::InstanceId> dirty;
    const int k = static_cast<int>(rng.range(1, 4));
    for (int j = 0; j < k; ++j) {
      const auto id = resize_random(*f.nl, rng);
      if (id != mn::kNoInstance) dirty.push_back(id);
    }
    ASSERT_FALSE(dirty.empty());
    const auto inc = graph.reanalyze(dirty, opt);
    const auto want = reference_sta(*f.pl, f.clock, opt);
    expect_report_eq(inc, want, /*check_cost=*/false);
    EXPECT_LE(graph.last_repropagated(), graph.node_count());
    total_reprop += graph.last_repropagated();
  }
  // The whole point: small dirty sets must not re-propagate the whole graph.
  EXPECT_LT(total_reprop, rounds * graph.node_count());
}

TEST(Incremental, RandomResizeDirtySetsMatchFullPbaSiHold) {
  auto f = make_fixture(47, 600, 0.18);
  const auto grid = make_routed(f, 47);
  mt::StaOptions opt;
  opt.mode = mt::AnalysisMode::PathBased;
  opt.with_si = true;
  opt.with_hold = true;
  opt.clock_period_ps = 800.0;
  mt::TimingGraph graph(*f.pl, f.clock);
  graph.analyze(opt, &grid);
  Rng rng{101};
  for (int round = 0; round < 8; ++round) {
    SCOPED_TRACE(round);
    std::vector<mn::InstanceId> dirty;
    const int k = static_cast<int>(rng.range(1, 3));
    for (int j = 0; j < k; ++j) {
      const auto id = resize_random(*f.nl, rng);
      if (id != mn::kNoInstance) dirty.push_back(id);
    }
    ASSERT_FALSE(dirty.empty());
    const auto inc = graph.reanalyze(dirty, opt, &grid);
    const auto want = reference_sta(*f.pl, f.clock, opt, &grid);
    expect_report_eq(inc, want, /*check_cost=*/false);
  }
}

TEST(Incremental, EmptyDirtySetReturnsCachedReport) {
  const auto f = make_fixture(53);
  mt::StaOptions opt;
  opt.with_hold = true;
  mt::TimingGraph graph(*f.pl, f.clock);
  const auto full = graph.analyze(opt);
  const auto inc = graph.reanalyze({}, opt);
  expect_report_eq(inc, full, /*check_cost=*/false);
  EXPECT_EQ(graph.last_repropagated(), 0u);
}

TEST(Incremental, OptionChangeFallsBackToFullAnalyze) {
  auto f = make_fixture(59);
  mt::StaOptions gba;
  mt::TimingGraph graph(*f.pl, f.clock);
  graph.analyze(gba);
  Rng rng{7};
  const auto id = resize_random(*f.nl, rng);
  ASSERT_NE(id, mn::kNoInstance);
  mt::StaOptions pba;
  pba.mode = mt::AnalysisMode::PathBased;
  // Incompatible cached propagation: must transparently run (and charge) a
  // full analysis, bit-identical to the seed engine.
  const auto got = graph.reanalyze({id}, pba);
  expect_report_eq(got, reference_sta(*f.pl, f.clock, pba));
}

TEST(Incremental, StructuralEcoBufferInsertMatchesFull) {
  // The hold-ECO access pattern: insert a buffer in front of a flop D pin,
  // sync placement + graph, re-analyze only the touched instances.
  auto f = make_fixture(61, 500, 0.2);
  mt::StaOptions opt;
  opt.with_hold = true;
  mt::TimingGraph graph(*f.pl, f.clock);
  graph.analyze(opt);

  const auto flops = f.nl->flops();
  ASSERT_FALSE(flops.empty());
  for (int k = 0; k < 3; ++k) {
    SCOPED_TRACE(k);
    const auto flop = flops[static_cast<std::size_t>(k) * (flops.size() / 3)];
    const auto d_net = f.nl->instance(flop).input_nets[0];
    ASSERT_NE(d_net, mn::kNoNet);
    const auto buf = f.nl->add_instance("eco_buf" + std::to_string(k),
                                        lib().smallest(mn::CellFunction::Buf));
    const auto buf_net = f.nl->add_net("eco_net" + std::to_string(k), buf);
    f.nl->reconnect(buf_net, flop, 0);
    f.nl->connect(d_net, buf, 0);
    f.pl->sync_with_netlist();
    f.pl->set_loc(buf, f.pl->loc(flop));

    graph.sync();
    const auto inc = graph.reanalyze({buf}, opt);
    const auto want = reference_sta(*f.pl, f.clock, opt);
    expect_report_eq(inc, want, /*check_cost=*/false);
    EXPECT_LT(graph.last_repropagated(), graph.node_count());
  }
}

// ---------------------------------------------------------------------------
// Wireload mode (synthesis-time sizing loops)
// ---------------------------------------------------------------------------

TEST(Wireload, FullPropagationMatchesSeed) {
  mn::RandomLogicSpec spec;
  spec.gates = 500;
  spec.seed = 67;
  auto nl = mn::make_random_logic(lib(), spec);
  mt::TimingGraph graph(nl);
  for (const double factor : {1.0, 1.35, 1.72}) {
    for (const double margin : {0.0, 30.0}) {
      SCOPED_TRACE(factor);
      const auto want = reference_wireload(nl, factor, margin);
      const double cp = graph.wireload_propagate(factor, margin);
      EXPECT_EQ(cp, want.critical);
      ASSERT_EQ(graph.wireload_arrivals().size(), want.arrival.size());
      for (std::size_t i = 0; i < want.arrival.size(); ++i) {
        EXPECT_EQ(graph.wireload_arrivals()[i], want.arrival[i]) << "node " << i;
      }
    }
  }
}

TEST(Wireload, IncrementalTrialUndoMatchesSeed) {
  // The TILOS sizing access pattern: resize -> re-time -> undo -> re-time.
  mn::RandomLogicSpec spec;
  spec.gates = 600;
  spec.seed = 71;
  auto nl = mn::make_random_logic(lib(), spec);
  mt::TimingGraph graph(nl);
  const double factor = 1.72;
  graph.wireload_propagate(factor);
  Rng rng{13};
  for (int round = 0; round < 12; ++round) {
    SCOPED_TRACE(round);
    std::size_t prev_master = 0;
    const auto id = resize_random(nl, rng, &prev_master);
    ASSERT_NE(id, mn::kNoInstance);

    // Trial: incremental re-time must match a fresh seed run.
    const double cp_trial = graph.wireload_repropagate({id}, factor);
    const auto want_trial = reference_wireload(nl, factor);
    EXPECT_EQ(cp_trial, want_trial.critical);
    for (std::size_t i = 0; i < want_trial.arrival.size(); ++i) {
      EXPECT_EQ(graph.wireload_arrivals()[i], want_trial.arrival[i]) << "node " << i;
    }

    if (round % 2 == 0) {
      // Undo: restoring the master and re-timing must return bitwise to the
      // pre-trial state.
      nl.resize_instance(id, prev_master);
      const double cp_undo = graph.wireload_repropagate({id}, factor);
      const auto want_undo = reference_wireload(nl, factor);
      EXPECT_EQ(cp_undo, want_undo.critical);
      for (std::size_t i = 0; i < want_undo.arrival.size(); ++i) {
        EXPECT_EQ(graph.wireload_arrivals()[i], want_undo.arrival[i]) << "node " << i;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Level-parallel propagation
// ---------------------------------------------------------------------------

TEST(Parallel, LevelParallelMatchesSerialBitwise) {
  const auto f = make_fixture(79, 2500, 0.15);
  const auto grid = make_routed(f, 79);
  mt::StaOptions opt;
  opt.mode = mt::AnalysisMode::PathBased;
  opt.with_si = true;
  opt.with_hold = true;
  mt::TimingGraph serial(*f.pl, f.clock);
  mt::TimingGraph parallel(*f.pl, f.clock);
  parallel.enable_parallel(/*min_nodes=*/1);
  expect_report_eq(parallel.analyze(opt, &grid), serial.analyze(opt, &grid));

  const auto batched_p = parallel.analyze_corners(opt, mt::standard_corners(), &grid);
  const auto batched_s = serial.analyze_corners(opt, mt::standard_corners(), &grid);
  ASSERT_EQ(batched_p.size(), batched_s.size());
  for (std::size_t i = 0; i < batched_s.size(); ++i) {
    SCOPED_TRACE(i);
    expect_report_eq(batched_p[i], batched_s[i]);
  }
  parallel.disable_parallel();
  expect_report_eq(parallel.analyze(opt, &grid), serial.analyze(opt, &grid));
}

// ---------------------------------------------------------------------------
// SI congestion map
// ---------------------------------------------------------------------------

TEST(SiMapSnapshot, MatchesBruteForceScan) {
  const auto f = make_fixture(83, 500);
  auto grid = make_routed(f, 83);
  const auto m = mt::build_si_map(grid);
  ASSERT_EQ(m.cols, grid.cols());
  ASSERT_EQ(m.rows, grid.rows());
  for (std::size_t r = 0; r < m.rows; ++r) {
    for (std::size_t c = 0; c < m.cols; ++c) {
      EXPECT_EQ(m.at(c, r), mt::gcell_stats(grid, c, r).utilization);
    }
  }
  // Window max == the seed's nested gcell_stats re-scan.
  Rng rng{19};
  for (int k = 0; k < 50; ++k) {
    const auto c0 = static_cast<std::size_t>(static_cast<int>(rng.below(m.cols)));
    const auto c1 = static_cast<std::size_t>(static_cast<int>(rng.below(m.cols)));
    const auto r0 = static_cast<std::size_t>(static_cast<int>(rng.below(m.rows)));
    const auto r1 = static_cast<std::size_t>(static_cast<int>(rng.below(m.rows)));
    const auto clo = std::min(c0, c1), chi = std::max(c0, c1);
    const auto rlo = std::min(r0, r1), rhi = std::max(r0, r1);
    double brute = 0.0;
    for (std::size_t c = clo; c <= chi; ++c) {
      for (std::size_t r = rlo; r <= rhi; ++r) {
        brute = std::max(brute, mt::gcell_stats(grid, c, r).utilization);
      }
    }
    EXPECT_EQ(m.max_in_window(clo, rlo, chi, rhi), brute);
  }
}

TEST(SiMapSnapshot, RevisionTracksUsageMutation) {
  const auto f = make_fixture(89, 400);
  auto grid = make_routed(f, 89);
  const auto m = mt::build_si_map(grid);
  EXPECT_EQ(m.revision, grid.revision());
  grid.add_usage(0, 2.0);
  EXPECT_NE(m.revision, grid.revision());

  // A cached graph must notice the mutation: SI analysis after add_usage has
  // to match a fresh reference run on the mutated grid, not the stale map.
  mt::StaOptions opt;
  opt.with_si = true;
  mt::TimingGraph graph(*f.pl, f.clock);
  graph.analyze(opt, &grid);
  for (std::size_t e = 0; e < grid.edge_count(); e += 7) grid.add_usage(e, 3.0);
  expect_report_eq(graph.analyze(opt, &grid), reference_sta(*f.pl, f.clock, opt, &grid));
  grid.reset_usage();
  expect_report_eq(graph.analyze(opt, &grid), reference_sta(*f.pl, f.clock, opt, &grid));
}

// ---------------------------------------------------------------------------
// Corner registry
// ---------------------------------------------------------------------------

TEST(Corners, StandardSetIsStaticAndLookupIsExact) {
  const auto& a = mt::standard_corners();
  const auto& b = mt::standard_corners();
  EXPECT_EQ(&a, &b);  // built once, stable reference
  ASSERT_EQ(a.size(), 3u);
  EXPECT_EQ(a[0].name, "ss");
  EXPECT_EQ(a[1].name, "tt");
  EXPECT_EQ(a[2].name, "ff");
  for (const auto& c : a) {
    const auto& found = mt::corner_by_name(c.name);
    EXPECT_EQ(&found, &a[&c - a.data()]);
    EXPECT_EQ(found.gate_factor, c.gate_factor);
    EXPECT_EQ(found.wire_factor, c.wire_factor);
    EXPECT_EQ(found.setup_factor, c.setup_factor);
  }
  EXPECT_EQ(mt::corner_by_name("ss").gate_factor, 1.18);
  EXPECT_EQ(mt::corner_by_name("tt").gate_factor, 1.00);
  EXPECT_EQ(mt::corner_by_name("ff").wire_factor, 0.95);
}

// ---------------------------------------------------------------------------
// Observability
// ---------------------------------------------------------------------------

TEST(Observability, TimingCountersAdvance) {
  auto& reg = maestro::obs::Registry::global();
  const auto full0 = reg.counter("timing.full_props").value();
  const auto incr0 = reg.counter("timing.incr_props").value();
  const auto nodes0 = reg.counter("timing.nodes_repropagated").value();

  auto f = make_fixture(97);
  mt::StaOptions opt;
  mt::TimingGraph graph(*f.pl, f.clock);
  graph.analyze(opt);
  EXPECT_GT(reg.counter("timing.full_props").value(), full0);

  Rng rng{23};
  const auto id = resize_random(*f.nl, rng);
  ASSERT_NE(id, mn::kNoInstance);
  graph.reanalyze({id}, opt);
  EXPECT_GT(reg.counter("timing.incr_props").value(), incr0);
  EXPECT_GE(reg.counter("timing.nodes_repropagated").value(),
            nodes0 + graph.last_repropagated());
}
