// Tests for maestro::tune — the multi-stage flow tuner: FlowTune-style
// per-dimension bandits chained into end-to-end trajectories, FIST-style
// feature-importance focusing, content-addressed memoization of repeat
// trajectories, checkpoint/resume bitwise discipline, and METRICS warm
// starts.
//
// This file builds as its own binary (maestro_tune_tests) labeled "tune" so
// it can run in isolation under -DMAESTRO_SANITIZE=thread:
//   ctest -L tune

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "exec/executor.hpp"
#include "flow/knobs.hpp"
#include "metrics/server.hpp"
#include "obs/registry.hpp"
#include "store/run_cache.hpp"
#include "store/run_store.hpp"
#include "tune/flow_tuner.hpp"

namespace fs = std::filesystem;
namespace mf = maestro::flow;
namespace mm = maestro::metrics;
namespace ms = maestro::store;
namespace mt = maestro::tune;
namespace mx = maestro::exec;
using maestro::obs::Registry;
using maestro::util::Rng;

namespace {

std::uint64_t counter(const std::string& name) {
  return Registry::global().counter(name).value();
}

std::string temp_store(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / "maestro_tune_tests" / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

/// A small 6-dimension knob space (3 values each) so campaigns stay fast.
std::vector<mf::KnobSpace> tune_spaces() {
  std::vector<mf::KnobSpace> spaces(2);
  spaces[0].step = mf::FlowStep::Synthesis;
  spaces[0].knobs = {{"a", {"a0", "a1", "a2"}},
                     {"b", {"b0", "b1", "b2"}},
                     {"c", {"c0", "c1", "c2"}}};
  spaces[1].step = mf::FlowStep::Place;
  spaces[1].knobs = {{"d", {"d0", "d1", "d2"}},
                     {"e", {"e0", "e1", "e2"}},
                     {"f", {"f0", "f1", "f2"}}};
  return spaces;
}

/// Synthetic oracle, pure in (trajectory, seed): only synthesis.a (strong,
/// monotone) and place.d (weak, interior optimum d1) matter; the other four
/// dimensions are noise-free no-ops. Smaller area = higher default objective.
mt::TuneOracle area_oracle() {
  return [](const mf::FlowTrajectory& t, std::uint64_t seed) {
    mf::FlowResult fr;
    fr.completed = fr.timing_met = fr.drc_clean = fr.constraints_met = true;
    const std::string& a = t.value(mf::FlowStep::Synthesis, "a", "a0");
    const std::string& d = t.value(mf::FlowStep::Place, "d", "d0");
    const double ia = static_cast<double>(a.back() - '0');
    double area = 1000.0 - 300.0 * ia;
    if (d == "d1") area -= 120.0;
    area += static_cast<double>(seed % 7) * 0.01;  // sub-point tool noise
    fr.area_um2 = area;
    fr.wns_ps = 5.0;
    fr.power_mw = 1.0;
    return fr;
  };
}

mt::TuneOptions base_options() {
  mt::TuneOptions opt;
  opt.spaces = tune_spaces();
  opt.design = "tune_test";
  opt.rounds = 10;
  opt.batch = 4;
  opt.warmup_rounds = 4;
  opt.focus_dims = 2;
  opt.refit_every = 2;
  opt.min_surrogate_rows = 8;
  opt.forest.trees = 32;
  opt.forest.max_depth = 5;
  return opt;
}

void expect_same_tune_result(const mt::TuneResult& x, const mt::TuneResult& y) {
  ASSERT_EQ(x.samples.size(), y.samples.size());
  for (std::size_t i = 0; i < x.samples.size(); ++i) {
    EXPECT_EQ(x.samples[i].round, y.samples[i].round);
    EXPECT_EQ(x.samples[i].choice, y.samples[i].choice);
    EXPECT_EQ(x.samples[i].score, y.samples[i].score);  // bitwise
    EXPECT_EQ(x.samples[i].success, y.samples[i].success);
  }
  EXPECT_EQ(x.best_per_round, y.best_per_round);
  EXPECT_EQ(x.best_score, y.best_score);
  EXPECT_EQ(x.best_choice, y.best_choice);
  EXPECT_EQ(x.total_runs, y.total_runs);
  EXPECT_EQ(x.distinct_runs, y.distinct_runs);
  EXPECT_EQ(x.importance, y.importance);
  EXPECT_EQ(x.focus, y.focus);
}

}  // namespace

TEST(Tuner, FindsStrongTrajectoryAndIsDeterministic) {
  const mt::FlowTuner tuner{base_options()};
  ASSERT_EQ(tuner.dimensions().size(), 6u);

  Rng rng1{42};
  const auto r1 = tuner.run(area_oracle(), rng1);
  EXPECT_EQ(r1.total_runs, 10u * 4u);
  EXPECT_EQ(r1.best_per_round.size(), 10u);
  // The best trajectory must have found the dominant arm a=a2; d=d1 is worth
  // another 120 um^2 and a well-mixed campaign finds it too.
  const auto& best = r1.best_trajectory;
  EXPECT_EQ(best.value(mf::FlowStep::Synthesis, "a", "?"), "a2");
  EXPECT_GT(r1.best_score, 1.0);  // a successful run

  Rng rng2{42};
  const auto r2 = tuner.run(area_oracle(), rng2);
  expect_same_tune_result(r1, r2);
}

TEST(Tuner, SerialAndParallelCampaignsBitwiseIdentical) {
  mt::TuneOptions opt = base_options();

  const std::string dir1 = temp_store("serial");
  ms::RunStore store1(dir1);
  ms::RunCache cache1(store1);
  opt.cache = &cache1;
  mx::RunExecutor serial{{.threads = 1}};
  Rng rng1{7};
  const auto r1 = mt::FlowTuner{opt}.run(area_oracle(), rng1, serial);

  const std::string dir2 = temp_store("parallel");
  ms::RunStore store2(dir2);
  ms::RunCache cache2(store2);
  opt.cache = &cache2;
  mx::RunExecutor parallel{{.threads = 8}};
  Rng rng2{7};
  const auto r2 = mt::FlowTuner{opt}.run(area_oracle(), rng2, parallel);

  expect_same_tune_result(r1, r2);
}

TEST(Tuner, FistFocusesOnImportantDimensions) {
  const mt::FlowTuner tuner{base_options()};
  Rng rng{11};
  const auto res = tuner.run(area_oracle(), rng);

  // After warmup the forest surrogate must have refit at least once and
  // focused the campaign on focus_dims dimensions.
  ASSERT_EQ(res.importance.size(), 6u);
  ASSERT_EQ(res.focus.size(), 2u);
  // synthesis.a is dimension 0 — the dominant effect — and must be focused
  // with the lion's share of the importance mass.
  EXPECT_EQ(res.focus[0], 0u);
  EXPECT_GT(res.importance[0], 0.5);
  // The four no-op dimensions together matter less than place.d.
  double noop = 0.0;
  for (const std::size_t d : {1u, 2u, 4u, 5u}) noop += res.importance[d];
  EXPECT_LT(noop, res.importance[0]);
}

TEST(Tuner, RepeatTrajectoriesAreServedFromTheMemoLayer) {
  const std::string dir = temp_store("memo");
  ms::RunStore store(dir);
  ms::RunCache cache(store);
  mt::TuneOptions opt = base_options();
  opt.cache = &cache;

  const std::uint64_t hits0 = counter("exec.cache_hits");
  const std::uint64_t joins0 = counter("exec.inflight_joins");
  Rng rng{5};
  const auto res = mt::FlowTuner{opt}.run(area_oracle(), rng);

  // Focusing collapses the reachable trajectory set (2 free dims x 3 values
  // = 9 configurations), so later rounds repeat earlier fingerprints.
  EXPECT_LT(res.distinct_runs, res.total_runs);
  EXPECT_GE(res.total_runs - res.distinct_runs, 8u);
  // Every repeat dispatch is answered by the memo layer — a cache hit when
  // the twin already completed, an in-flight join when it is still running —
  // and the store holds exactly one run per distinct fingerprint.
  const std::uint64_t served =
      (counter("exec.cache_hits") - hits0) + (counter("exec.inflight_joins") - joins0);
  EXPECT_EQ(served, res.total_runs - res.distinct_runs);
  EXPECT_EQ(store.run_count(), res.distinct_runs);
}

// ------------------------------------------------ checkpoint/resume discipline

TEST(TuneResume, InterruptedCampaignMatchesUninterruptedBitwise) {
  Rng rng_full{99};
  const auto full = mt::FlowTuner{base_options()}.run(area_oracle(), rng_full);

  const std::string dir = temp_store("resume");
  ms::RunStore store(dir);

  // First half: dies (returns) after 5 of 10 rounds, checkpointing as it
  // goes — including mid-campaign focus state and the surrogate dataset.
  mt::TuneOptions half = base_options();
  half.rounds = 5;
  half.checkpoint = &store;
  half.campaign_id = "campaign-T";
  Rng rng_half{99};
  const auto partial = mt::FlowTuner{half}.run(area_oracle(), rng_half);
  EXPECT_EQ(partial.samples.size(), 5u * half.batch);
  ASSERT_TRUE(store.get_state("tune:campaign-T").has_value());

  // Resume with the full budget; the initial rng is irrelevant — the
  // checkpoint restores the campaign's own random stream.
  mt::TuneOptions resumed = base_options();
  resumed.checkpoint = &store;
  resumed.campaign_id = "campaign-T";
  const std::uint64_t resumes0 = counter("store.campaign_resumed");
  Rng rng_resume{123456};
  const auto cont = mt::FlowTuner{resumed}.run(area_oracle(), rng_resume);
  EXPECT_EQ(counter("store.campaign_resumed"), resumes0 + 1);
  EXPECT_TRUE(cont.resumed);

  expect_same_tune_result(full, cont);
}

TEST(TuneResume, FinishedCampaignShortCircuits) {
  const std::string dir = temp_store("finished");
  ms::RunStore store(dir);
  ms::RunCache cache(store);

  mt::TuneOptions opt = base_options();
  opt.cache = &cache;
  opt.checkpoint = &store;
  opt.campaign_id = "done";
  Rng rng{7};
  const auto first = mt::FlowTuner{opt}.run(area_oracle(), rng);

  const std::size_t runs_before = store.run_count();
  Rng rng2{8};
  const auto again = mt::FlowTuner{opt}.run(area_oracle(), rng2);
  expect_same_tune_result(first, again);
  EXPECT_TRUE(again.resumed);
  EXPECT_EQ(store.run_count(), runs_before);  // nothing re-executed
}

TEST(TuneResume, MismatchedOptionsStartFresh) {
  const std::string dir = temp_store("mismatch");
  ms::RunStore store(dir);

  mt::TuneOptions opt = base_options();
  opt.rounds = 4;
  opt.checkpoint = &store;
  opt.campaign_id = "shape";
  Rng rng{7};
  (void)mt::FlowTuner{opt}.run(area_oracle(), rng);

  // A different focus schedule invalidates the persisted campaign: the
  // posteriors and focus state no longer describe the same search.
  mt::TuneOptions changed = base_options();
  changed.rounds = 4;
  changed.focus_dims = 3;
  changed.checkpoint = &store;
  changed.campaign_id = "shape";
  Rng rng2{7};
  const auto fresh = mt::FlowTuner{changed}.run(area_oracle(), rng2);
  EXPECT_FALSE(fresh.resumed);
  EXPECT_EQ(fresh.total_runs, changed.rounds * changed.batch);
  EXPECT_EQ(fresh.samples.front().round, 0u);
}

// ---------------------------------------------------------- METRICS warm start

TEST(TuneWarmStart, MinesTuneHistoryFromMetricsServer) {
  mm::Server server;

  // Campaign A transmits every observed run as a step="tune" record.
  mt::TuneOptions a = base_options();
  a.rounds = 6;
  a.metrics = &server;
  Rng rng_a{3};
  const auto first = mt::FlowTuner{a}.run(area_oracle(), rng_a);
  EXPECT_EQ(first.mined_rows, 0u);  // nothing to mine yet
  EXPECT_EQ(server.for_step("tune").size(), first.total_runs);

  // Campaign B over the same server warm-starts from A's full history: its
  // surrogate dataset and posteriors are seeded before the first round.
  mt::TuneOptions b = base_options();
  b.rounds = 4;
  b.metrics = &server;
  Rng rng_b{4};
  const auto second = mt::FlowTuner{b}.run(area_oracle(), rng_b);
  EXPECT_EQ(second.mined_rows, first.total_runs);
  // Warm posteriors already know a2 dominates; the very first round's best
  // must be a strong trajectory.
  EXPECT_GT(second.best_per_round.front(), 1.0);

  // Records from foreign designs or steps are ignored.
  mm::Record foreign;
  foreign.design = "other";
  foreign.step = "tune";
  foreign.values["tune_score"] = 1.0;
  server.submit(std::move(foreign));
  mt::TuneOptions c = base_options();
  c.rounds = 1;
  c.metrics = &server;
  Rng rng_c{5};
  const auto third = mt::FlowTuner{c}.run(area_oracle(), rng_c);
  EXPECT_EQ(third.mined_rows, first.total_runs + second.total_runs);
}
