// Unit tests for maestro::util — RNG determinism and distribution sanity,
// summary statistics, JSON round-trips, CSV formatting, tool logs.

#include <gtest/gtest.h>

#include <cmath>

#include "util/csv.hpp"
#include "util/json.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace mu = maestro::util;

TEST(Rng, DeterministicAcrossInstances) {
  mu::Rng a{123};
  mu::Rng b{123};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  mu::Rng a{1};
  mu::Rng b{2};
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next() == b.next() ? 1 : 0;
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval) {
  mu::Rng rng{7};
  mu::RunningStats s;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    s.add(u);
  }
  EXPECT_NEAR(s.mean(), 0.5, 0.01);
  EXPECT_NEAR(s.variance(), 1.0 / 12.0, 0.01);
}

TEST(Rng, BelowIsUnbiasedOverSmallRange) {
  mu::Rng rng{11};
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 50000; ++i) ++counts[rng.below(5)];
  for (const int c : counts) EXPECT_NEAR(c, 10000, 500);
}

TEST(Rng, RangeInclusive) {
  mu::Rng rng{3};
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.range(-2, 2);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 2);
    saw_lo = saw_lo || v == -2;
    saw_hi = saw_hi || v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, GaussMoments) {
  mu::Rng rng{5};
  mu::RunningStats s;
  for (int i = 0; i < 50000; ++i) s.add(rng.gauss());
  EXPECT_NEAR(s.mean(), 0.0, 0.02);
  EXPECT_NEAR(s.stddev(), 1.0, 0.02);
}

TEST(Rng, GaussShifted) {
  mu::Rng rng{5};
  mu::RunningStats s;
  for (int i = 0; i < 20000; ++i) s.add(rng.gauss(10.0, 2.0));
  EXPECT_NEAR(s.mean(), 10.0, 0.1);
  EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

TEST(Rng, ExponentialMean) {
  mu::Rng rng{9};
  mu::RunningStats s;
  for (int i = 0; i < 30000; ++i) s.add(rng.exponential(2.0));
  EXPECT_NEAR(s.mean(), 0.5, 0.02);
}

TEST(Rng, GammaMeanMatchesShape) {
  mu::Rng rng{13};
  for (const double shape : {0.5, 1.0, 3.0, 9.0}) {
    mu::RunningStats s;
    for (int i = 0; i < 20000; ++i) s.add(rng.gamma(shape));
    EXPECT_NEAR(s.mean(), shape, shape * 0.05) << "shape=" << shape;
  }
}

TEST(Rng, BetaMean) {
  mu::Rng rng{17};
  mu::RunningStats s;
  for (int i = 0; i < 20000; ++i) s.add(rng.beta(2.0, 6.0));
  EXPECT_NEAR(s.mean(), 0.25, 0.01);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  mu::Rng rng{21};
  const std::vector<double> w = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 40000; ++i) {
    const auto idx = rng.weighted_index(w);
    ASSERT_LT(idx, w.size());
    ++counts[idx];
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.2);
}

TEST(Rng, WeightedIndexAllZeroReturnsSize) {
  mu::Rng rng{1};
  EXPECT_EQ(rng.weighted_index({0.0, 0.0}), 2u);
  EXPECT_EQ(rng.weighted_index({}), 0u);
}

TEST(Rng, ShufflePreservesElements) {
  mu::Rng rng{2};
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  auto w = v;
  rng.shuffle(w);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Rng, SplitProducesIndependentStream) {
  mu::Rng rng{4};
  mu::Rng child = rng.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += rng.next() == child.next() ? 1 : 0;
  EXPECT_LT(same, 3);
}

TEST(RunningStats, BasicMoments) {
  mu::RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeMatchesCombined) {
  mu::Rng rng{31};
  mu::RunningStats a;
  mu::RunningStats b;
  mu::RunningStats all;
  for (int i = 0; i < 100; ++i) {
    const double x = rng.gauss(3.0, 2.0);
    (i % 2 == 0 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(Stats, PercentileAndMedian) {
  const std::vector<double> xs = {5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(mu::median(xs), 3.0);
  EXPECT_DOUBLE_EQ(mu::percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(mu::percentile(xs, 100.0), 5.0);
  EXPECT_DOUBLE_EQ(mu::percentile(xs, 50.0), 3.0);
}

TEST(Stats, PearsonPerfectCorrelation) {
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  const std::vector<double> ys = {2, 4, 6, 8, 10};
  EXPECT_NEAR(mu::pearson(xs, ys), 1.0, 1e-12);
  const std::vector<double> zs = {10, 8, 6, 4, 2};
  EXPECT_NEAR(mu::pearson(xs, zs), -1.0, 1e-12);
}

TEST(Stats, PearsonConstantIsZero) {
  const std::vector<double> xs = {1, 2, 3};
  const std::vector<double> ys = {5, 5, 5};
  EXPECT_DOUBLE_EQ(mu::pearson(xs, ys), 0.0);
}

TEST(Stats, HistogramCountsAndRange) {
  const std::vector<double> xs = {0.1, 0.2, 0.5, 0.9};
  const auto h = mu::make_histogram(xs, 2, 0.0, 1.0);
  EXPECT_EQ(h.counts.size(), 2u);
  // Half-open bins: 0.5 belongs to the upper bin.
  EXPECT_EQ(h.counts[0], 2u);
  EXPECT_EQ(h.counts[1], 2u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.bin_width(), 0.5);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 0.25);
}

TEST(Stats, NormalCdfKnownValues) {
  EXPECT_NEAR(mu::normal_cdf(0.0), 0.5, 1e-9);
  EXPECT_NEAR(mu::normal_cdf(1.96), 0.975, 1e-3);
  EXPECT_NEAR(mu::normal_cdf(-1.96), 0.025, 1e-3);
}

TEST(Stats, GaussianFitAcceptsGaussianData) {
  mu::Rng rng{41};
  std::vector<double> xs;
  for (int i = 0; i < 2000; ++i) xs.push_back(rng.gauss(5.0, 1.5));
  const auto fit = mu::fit_gaussian(xs);
  EXPECT_NEAR(fit.mean, 5.0, 0.1);
  EXPECT_NEAR(fit.sigma, 1.5, 0.1);
  EXPECT_GT(fit.ks_pvalue, 0.01);  // should not reject normality
}

TEST(Stats, GaussianFitRejectsHeavyBimodal) {
  mu::Rng rng{43};
  std::vector<double> xs;
  for (int i = 0; i < 2000; ++i) xs.push_back(rng.chance(0.5) ? rng.gauss(-6, 0.3) : rng.gauss(6, 0.3));
  const auto fit = mu::fit_gaussian(xs);
  EXPECT_LT(fit.ks_pvalue, 0.001);  // strongly non-normal
}

TEST(Stats, LineFitRecoversLine) {
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 50; ++i) {
    xs.push_back(i);
    ys.push_back(3.0 + 2.0 * i);
  }
  const auto f = mu::fit_line(xs, ys);
  EXPECT_NEAR(f.intercept, 3.0, 1e-9);
  EXPECT_NEAR(f.slope, 2.0, 1e-9);
  EXPECT_NEAR(f.r2, 1.0, 1e-12);
}

TEST(Json, ScalarRoundTrips) {
  EXPECT_EQ(mu::Json{42}.dump(), "42");
  EXPECT_EQ(mu::Json{true}.dump(), "true");
  EXPECT_EQ(mu::Json{nullptr}.dump(), "null");
  EXPECT_EQ(mu::Json{"hi"}.dump(), "\"hi\"");
}

TEST(Json, ObjectRoundTrip) {
  mu::JsonObject obj;
  obj["name"] = mu::Json{"x"};
  obj["v"] = mu::Json{1.5};
  obj["list"] = mu::Json{mu::JsonArray{mu::Json{1}, mu::Json{2}}};
  const std::string text = mu::Json{obj}.dump();
  const auto parsed = mu::Json::parse(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->at("name").as_string(), "x");
  EXPECT_DOUBLE_EQ(parsed->at("v").as_number(), 1.5);
  EXPECT_EQ(parsed->at("list").as_array().size(), 2u);
}

TEST(Json, EscapesSpecialCharacters) {
  const mu::Json j{std::string("a\"b\\c\nd")};
  const auto parsed = mu::Json::parse(j.dump());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->as_string(), "a\"b\\c\nd");
}

TEST(Json, ParseRejectsMalformed) {
  EXPECT_FALSE(mu::Json::parse("{").has_value());
  EXPECT_FALSE(mu::Json::parse("[1,]").has_value());
  EXPECT_FALSE(mu::Json::parse("tru").has_value());
  EXPECT_FALSE(mu::Json::parse("{\"a\":1} extra").has_value());
  EXPECT_FALSE(mu::Json::parse("").has_value());
}

TEST(Json, MissingKeyIsNull) {
  const auto parsed = mu::Json::parse("{\"a\":1}");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->at("b").is_null());
}

TEST(Json, ParsesNestedStructures) {
  const auto parsed = mu::Json::parse(R"({"a":{"b":[1,2,{"c":true}]},"d":null})");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->at("a").at("b").as_array()[2].at("c").as_bool());
  EXPECT_TRUE(parsed->at("d").is_null());
}

TEST(Csv, BuildsTable) {
  mu::CsvTable t{{"a", "b"}};
  t.new_row().add(1).add(2.5, 1);
  t.new_row().add("x").add("y");
  EXPECT_EQ(t.rows(), 2u);
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("a,b"), std::string::npos);
  EXPECT_NE(csv.find("1,2.5"), std::string::npos);
  EXPECT_NE(csv.find("x,y"), std::string::npos);
  EXPECT_FALSE(t.to_pretty().empty());
}

TEST(ToolLog, SeriesAndFinalValue) {
  mu::ToolLog log;
  log.tool = "t";
  for (int i = 0; i < 3; ++i) {
    mu::LogIteration it;
    it.iteration = i;
    it.values["drvs"] = 100.0 - i * 10;
    log.iterations.push_back(it);
  }
  const auto s = log.series("drvs");
  EXPECT_EQ(s.size(), 3u);
  EXPECT_DOUBLE_EQ(s[2], 80.0);
  ASSERT_TRUE(log.final_value("drvs").has_value());
  EXPECT_DOUBLE_EQ(*log.final_value("drvs"), 80.0);
  EXPECT_FALSE(log.final_value("nope").has_value());
}

TEST(ToolLog, JsonRoundTrip) {
  mu::ToolLog log;
  log.tool = "route";
  log.design = "cpu1";
  log.seed = 77;
  log.completed = true;
  log.metadata["knob"] = "fast";
  mu::LogIteration it;
  it.iteration = 0;
  it.values["drvs"] = 123.0;
  log.iterations.push_back(it);

  const auto parsed = mu::ToolLog::from_json(log.to_json());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->tool, "route");
  EXPECT_EQ(parsed->design, "cpu1");
  EXPECT_EQ(parsed->seed, 77u);
  EXPECT_TRUE(parsed->completed);
  EXPECT_EQ(parsed->metadata.at("knob"), "fast");
  ASSERT_EQ(parsed->iterations.size(), 1u);
  EXPECT_DOUBLE_EQ(parsed->iterations[0].values.at("drvs"), 123.0);
}

// Property-style sweep: percentile is monotone in p for any data.
class PercentileProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PercentileProperty, MonotoneInP) {
  mu::Rng rng{GetParam()};
  std::vector<double> xs;
  for (int i = 0; i < 200; ++i) xs.push_back(rng.gauss(0, 10));
  double prev = -1e300;
  for (double p = 0.0; p <= 100.0; p += 5.0) {
    const double v = mu::percentile(xs, p);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PercentileProperty, ::testing::Values(1, 2, 3, 4, 5));

// Property: histogram total never exceeds sample count, and equals it when
// the range covers all samples.
class HistogramProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(HistogramProperty, TotalPreserved) {
  mu::Rng rng{99};
  std::vector<double> xs;
  for (std::size_t i = 0; i < 500; ++i) xs.push_back(rng.uniform(-3, 3));
  const auto h = mu::make_histogram(xs, GetParam());
  EXPECT_EQ(h.total(), xs.size());
}

INSTANTIATE_TEST_SUITE_P(Bins, HistogramProperty, ::testing::Values(1, 2, 5, 10, 50));
